//! Offline stand-in for the `rand_chacha` crate (vendor/README.md).
//!
//! Provides a deterministic generator behind the `ChaCha8Rng` name. It is
//! **not** real ChaCha8 output — it is the same xoshiro256++ core as the
//! vendored `SmallRng`, on a distinct stream so the two names never emit
//! identical sequences for the same seed.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (stand-in for ChaCha8).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    inner: SmallRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // A distinct stream constant keeps this generator's output disjoint
        // from SmallRng::seed_from_u64 for every seed.
        ChaCha8Rng {
            inner: SmallRng::from_state(state, 0xC8AC_8A00_5EED_57EE),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_and_distinct_from_smallrng() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut s = SmallRng::seed_from_u64(42);
        let (x, y, z) = (a.random::<u64>(), b.random::<u64>(), s.random::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}

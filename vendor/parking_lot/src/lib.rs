//! Offline stand-in for the `parking_lot` crate (vendor/README.md).
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! non-poisoning API (`lock()` returns the guard directly).

use std::sync::PoisonError;

/// Mutex whose `lock` never returns a `Result` (poisoning is ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RwLock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}

//! Offline stand-in for the `rand` crate (vendor/README.md).
//!
//! Implements the subset of the rand 0.10 API this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::{random, random_range}`]. The generator behind `SmallRng` is
//! xoshiro256++ (seeded through SplitMix64) — deterministic and
//! statistically strong, but not bit-compatible with upstream `rand`.

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`random::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "random_range: empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "random_range: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (span + 1))
    }
}

/// Convenience sampling methods (the rand 0.10 `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the classic `Rng` name.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Seed with an extra stream constant (used by the vendored
        /// `rand_chacha` to stay disjoint from `seed_from_u64` output).
        #[doc(hidden)]
        pub fn from_state(seed: u64, stream: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut sm = seed ^ stream;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng::from_state(state, 0)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}

//! Offline stand-in for the `criterion` crate (vendor/README.md).
//!
//! Keeps the bench harness compiling and runnable without the registry:
//! each benchmark runs `sample_size` timed iterations and prints the mean
//! per-iteration time. No warmup calibration, outlier analysis, plots, or
//! saved baselines — numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the closure under test and records total time + iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// The closure measures itself and returns the total for `iters` runs.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let per_iter = run_bench(self.sample_size as u64, f);
        report(&id.id, per_iter);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let per_iter = run_bench(self.criterion.sample_size as u64, f);
        report(&label, per_iter);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(iters: u64, mut f: F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
        .checked_div(iters as u32)
        .unwrap_or(Duration::ZERO)
}

fn report(label: &str, per_iter: Duration) {
    println!("bench: {label:<50} {per_iter:>12.3?}/iter");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default().without_plots().sample_size(3);
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1));
            g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
        c.bench_function("plain", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
    }
}

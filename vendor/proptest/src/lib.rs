//! Offline stand-in for the `proptest` crate (vendor/README.md).
//!
//! Supports the combinator surface this workspace's property tests use:
//! `proptest!` with `#![proptest_config(..)]`, range / tuple / `Just` /
//! `any::<T>()` / `prop::collection::vec` strategies, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`, and `prop_assert*`.
//!
//! Differences from upstream: case generation is deterministic (fixed
//! per-case seeds, same inputs every run), there is **no shrinking** —
//! a failure reports the case index and seed instead of a minimal
//! counterexample — and `.proptest-regressions` files are ignored.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert*`; carries the formatted message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case seed (no wall-clock entropy, no regression
    /// files: rerunning a failed case number always reproduces it).
    pub fn case_seed(case: u32) -> u64 {
        0x5EED_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Random source handed to strategies while generating one case.
    pub struct TestRng(SmallRng);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.0.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value generator. Unlike upstream there is no value tree: a strategy
    /// produces final values directly and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives (backs `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi as u64 - lo as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bound for [`vec`] — a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors upstream's `prelude::prop` shorthand (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(__case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1,
                        __config.cases,
                        __seed,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u32),
        B(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u32..9, (a, b) in (0u64..5, 0usize..4), f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(a < 5);
            prop_assert!(b < 4);
            prop_assert!((0.25..0.75).contains(&f));
            let _ = (a, b);
        }

        #[test]
        fn vec_flat_map_and_oneof(
            xs in (1usize..8).prop_flat_map(|n| prop::collection::vec(0u32..10, n..n + 1)),
            p in prop_oneof![(0u32..5).prop_map(Pick::A), (5u32..10).prop_map(Pick::B)],
            j in Just(42u32),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 10));
            match p {
                Pick::A(v) => prop_assert!(v < 5),
                Pick::B(v) => prop_assert!((5..10).contains(&v)),
            }
            prop_assert_eq!(j, 42);
            let _ = flag;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, prop::collection::vec(0u32..50, 0..10));
        let a = strat.generate(&mut TestRng::from_seed(9));
        let b = strat.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }
}

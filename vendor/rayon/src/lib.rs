//! Offline stand-in for the `rayon` crate (vendor/README.md).
//!
//! Unlike the original sequential stub, this version genuinely executes on
//! multiple OS threads (`std::thread::scope`) while keeping every adapter's
//! *observable results identical to sequential execution*:
//!
//! - items are processed in disjoint contiguous index chunks;
//! - `collect` concatenates per-chunk outputs in chunk order, so element
//!   order matches the sequential order exactly;
//! - `reduce` folds each chunk from the identity and combines chunk results
//!   left-to-right, which equals the sequential fold for the associative
//!   operations rayon (and this workspace) require.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream rayon) or
//! `std::thread::available_parallelism()`. With one thread — or inputs below
//! the splitting threshold — everything runs inline on the calling thread
//! with no spawn overhead, preserving the old stub's wall-clock profile on
//! single-core hosts.

use std::marker::PhantomData;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Inputs shorter than this are never split across threads: the spawn cost
/// would dwarf the per-item work this workspace does.
const MIN_SPLIT_LEN: usize = 2048;

/// Effective worker count: `RAYON_NUM_THREADS` override (upstream rayon's
/// env var) or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Near-even split of `0..len` into `chunks` contiguous ranges.
fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let hi = lo + base + usize::from(c < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// How many chunks to split `len` items into (1 = run inline).
fn split_factor(len: usize) -> usize {
    if len < MIN_SPLIT_LEN {
        return 1;
    }
    current_num_threads().min(len / (MIN_SPLIT_LEN / 2)).max(1)
}

/// Run `f` over each range on scoped threads; results in range order. The
/// first range runs on the calling thread.
fn run_ranges<R: Send>(
    ranges: &[(usize, usize)],
    f: &(impl Fn(usize, usize) -> R + Sync),
) -> Vec<R> {
    if ranges.len() == 1 {
        let (lo, hi) = ranges[0];
        return vec![f(lo, hi)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges[1..]
            .iter()
            .map(|&(lo, hi)| s.spawn(move || f(lo, hi)))
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(ranges[0].0, ranges[0].1));
        out.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
        out
    })
}

// ---------------------------------------------------------------------------
// Sources: index-addressable item producers.
// ---------------------------------------------------------------------------

/// An index-addressable parallel source.
///
/// # Safety
/// `visit(lo, hi, ..)` may be called concurrently from several threads, but
/// only with pairwise-disjoint ranges; implementations yielding `&mut`
/// references rely on that disjointness for soundness.
#[allow(clippy::len_without_is_empty)] // internal trait; only len is consumed
pub unsafe trait ParSource: Sync + Sized {
    type Item;
    fn len(&self) -> usize;
    /// Visit items of `[lo, hi)` in ascending index order. `f` receives the
    /// absolute index and the item.
    ///
    /// # Safety
    /// Concurrent calls must use disjoint ranges (see trait docs).
    unsafe fn visit<F: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, f: F);
}

/// Shared-slice source (`par_iter`).
pub struct ParSlice<'d, T> {
    data: &'d [T],
}

unsafe impl<'d, T: Sync> ParSource for ParSlice<'d, T> {
    type Item = &'d T;
    fn len(&self) -> usize {
        self.data.len()
    }
    unsafe fn visit<F: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut f: F) {
        for (i, item) in self.data[lo..hi].iter().enumerate() {
            f(lo + i, item);
        }
    }
}

/// Mutable-slice source (`par_iter_mut`). Stored as raw parts so disjoint
/// ranges can be visited from several threads.
pub struct ParSliceMut<'d, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'d mut [T]>,
}

// Sound: `visit` hands out `&mut T` only inside the caller-guaranteed
// disjoint ranges, so no two threads alias an element.
unsafe impl<'d, T: Send> Sync for ParSliceMut<'d, T> {}

unsafe impl<'d, T: Send> ParSource for ParSliceMut<'d, T> {
    type Item = &'d mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn visit<F: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut f: F) {
        debug_assert!(lo <= hi && hi <= self.len);
        for i in lo..hi {
            f(i, &mut *self.ptr.add(i));
        }
    }
}

/// Integer-range source (`(lo..hi).into_par_iter()`).
pub struct ParRange {
    start: u64,
    len: usize,
}

unsafe impl ParSource for ParRange {
    type Item = u64;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn visit<F: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut f: F) {
        for i in lo..hi {
            f(i, self.start + i as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// `.enumerate()` — pairs each item with its index.
pub struct Enumerated<S> {
    inner: S,
}

unsafe impl<S: ParSource> ParSource for Enumerated<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn visit<F: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut f: F) {
        self.inner.visit(lo, hi, |i, item| f(i, (i, item)));
    }
}

/// `.map(f)`.
pub struct Mapped<S, F> {
    inner: S,
    f: F,
}

unsafe impl<S: ParSource, B, F: Fn(S::Item) -> B + Sync> ParSource for Mapped<S, F> {
    type Item = B;
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn visit<G: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut g: G) {
        self.inner.visit(lo, hi, |i, item| g(i, (self.f)(item)));
    }
}

/// `.filter_map(f)` — visited items whose mapping is `None` are dropped.
pub struct FilterMapped<S, F> {
    inner: S,
    f: F,
}

unsafe impl<S: ParSource, B, F: Fn(S::Item) -> Option<B> + Sync> ParSource for FilterMapped<S, F> {
    type Item = B;
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn visit<G: FnMut(usize, Self::Item)>(&self, lo: usize, hi: usize, mut g: G) {
        self.inner.visit(lo, hi, |i, item| {
            if let Some(b) = (self.f)(item) {
                g(i, b);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator interface (terminal operations).
// ---------------------------------------------------------------------------

/// Rayon-style adapter + terminal surface over any [`ParSource`].
pub trait ParallelIterator: ParSource {
    fn enumerate(self) -> Enumerated<Self> {
        Enumerated { inner: self }
    }

    fn map<B, F: Fn(Self::Item) -> B + Sync>(self, f: F) -> Mapped<Self, F> {
        Mapped { inner: self, f }
    }

    fn filter_map<B, F: Fn(Self::Item) -> Option<B> + Sync>(self, f: F) -> FilterMapped<Self, F> {
        FilterMapped { inner: self, f }
    }

    /// rayon-style reduce: identity closure + associative op.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        Self::Item: Send,
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let ranges = chunk_ranges(self.len(), split_factor(self.len()));
        let fold = |lo: usize, hi: usize| {
            let mut acc = identity();
            // SAFETY: chunk_ranges yields disjoint ranges.
            unsafe {
                self.visit(lo, hi, |_, item| {
                    acc = op(take_replace(&mut acc, &identity), item)
                })
            };
            acc
        };
        run_ranges(&ranges, &fold).into_iter().fold(identity(), &op)
    }

    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let ranges = chunk_ranges(self.len(), split_factor(self.len()));
        let body = |lo: usize, hi: usize| {
            // SAFETY: chunk_ranges yields disjoint ranges.
            unsafe { self.visit(lo, hi, |_, item| f(item)) };
        };
        run_ranges(&ranges, &body);
    }

    fn sum<S>(self) -> S
    where
        Self::Item: Send,
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let ranges = chunk_ranges(self.len(), split_factor(self.len()));
        let fold = |lo: usize, hi: usize| {
            let mut part = Vec::new();
            // SAFETY: chunk_ranges yields disjoint ranges.
            unsafe { self.visit(lo, hi, |_, item| part.push(item)) };
            part.into_iter().sum::<S>()
        };
        run_ranges(&ranges, &fold).into_iter().sum()
    }

    /// Collect into any `FromIterator`, preserving sequential order (chunk
    /// outputs are concatenated in chunk order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C
    where
        Self::Item: Send,
    {
        let ranges = chunk_ranges(self.len(), split_factor(self.len()));
        let fold = |lo: usize, hi: usize| {
            let mut part = Vec::new();
            // SAFETY: chunk_ranges yields disjoint ranges.
            unsafe { self.visit(lo, hi, |_, item| part.push(item)) };
            part
        };
        run_ranges(&ranges, &fold).into_iter().flatten().collect()
    }
}

impl<S: ParSource> ParallelIterator for S {}

/// `op` consumes the accumulator by value; swap a fresh identity in while
/// the fold runs (avoids requiring `Self::Item: Default`).
fn take_replace<T>(slot: &mut T, identity: &impl Fn() -> T) -> T {
    std::mem::replace(slot, identity())
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// `slice.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: ParallelIterator;
    fn par_iter(&'a self) -> Self::Iter;
}

/// `slice.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: ParallelIterator;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// `range.into_par_iter()`.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator;
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { data: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { data: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start as u64,
            len: self.end.saturating_sub(self.start) as usize,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            len: usize::try_from(self.end.saturating_sub(self.start)).expect("range too long"),
        }
    }
}

// ---------------------------------------------------------------------------
// Scoped task spawning (`rayon::scope`).
// ---------------------------------------------------------------------------

/// Scope handle: `s.spawn(|s| ...)` runs tasks concurrently; all complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    parallel: bool,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        if self.parallel {
            let child = Scope {
                scope: self.scope,
                parallel: true,
            };
            self.scope.spawn(move || f(&child));
        } else {
            f(self);
        }
    }
}

/// Run `op` with a scope whose spawned tasks all finish before `scope`
/// returns. With one worker thread, tasks run inline at their spawn site
/// (sequential order) instead of paying thread spawns.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let parallel = current_num_threads() > 1;
    std::thread::scope(|s| {
        let root = Scope { scope: s, parallel };
        op(&root)
    })
}

/// Run two closures, potentially in parallel; returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("join worker panicked"))
        })
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate `RAYON_NUM_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = ENV_LOCK.lock().unwrap();
        let old = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        let r = f();
        match old {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        r
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let total = v
            .par_iter()
            .map(|&x| (x, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(total, (10, 4));
    }

    #[test]
    fn filter_map_collect_preserves_order() {
        let mut v = vec![1u32, 2, 3, 4, 5];
        let odd: Vec<u32> = v
            .par_iter_mut()
            .enumerate()
            .filter_map(|(i, x)| (*x % 2 == 1).then_some(i as u32))
            .collect();
        assert_eq!(odd, vec![0, 2, 4]);
    }

    #[test]
    fn large_parallel_collect_matches_sequential_order() {
        // Big enough to split; must still come out in index order.
        for threads in [1usize, 2, 4, 8] {
            with_threads(threads, || {
                let mut v: Vec<u64> = (0..100_000).collect();
                let picked: Vec<u64> = v
                    .par_iter_mut()
                    .enumerate()
                    .filter_map(|(i, x)| {
                        *x += 1;
                        (*x % 3 == 0).then_some(i as u64)
                    })
                    .collect();
                let want: Vec<u64> = (0..100_000u64).filter(|i| (i + 1) % 3 == 0).collect();
                assert_eq!(picked, want, "threads={threads}");
                assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
            });
        }
    }

    #[test]
    fn large_parallel_reduce_matches_sequential() {
        for threads in [1usize, 3, 7] {
            with_threads(threads, || {
                let v: Vec<u64> = (0..250_000).collect();
                let (s, c) = v
                    .par_iter()
                    .map(|&x| (x, 1u64))
                    .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
                assert_eq!(s, 250_000u64 * 249_999 / 2, "threads={threads}");
                assert_eq!(c, 250_000);
            });
        }
    }

    #[test]
    fn par_iter_mut_writes_every_element() {
        with_threads(4, || {
            let mut v = vec![0u32; 70_000];
            v.par_iter_mut()
                .enumerate()
                .map(|(i, x)| {
                    *x = i as u32 * 2;
                    1u64
                })
                .reduce(|| 0, |a, b| a + b);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 2));
        });
    }

    #[test]
    fn range_into_par_iter_sums() {
        with_threads(4, || {
            let n: u64 = (0u64..100_000).into_par_iter().map(|x| x % 7).sum();
            let want: u64 = (0u64..100_000).map(|x| x % 7).sum();
            assert_eq!(n, want);
        });
    }

    #[test]
    fn scope_runs_all_tasks() {
        for threads in [1usize, 4] {
            with_threads(threads, || {
                let mut out = vec![0u32; 8];
                super::scope(|s| {
                    for (i, slot) in out.iter_mut().enumerate() {
                        s.spawn(move |_| *slot = i as u32 + 1);
                    }
                });
                assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
            });
        }
    }

    #[test]
    fn join_returns_both() {
        for threads in [1usize, 2] {
            with_threads(threads, || {
                let (a, b) = super::join(|| 2 + 2, || "ok");
                assert_eq!((a, b), (4, "ok"));
            });
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let total: u32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 0);
        let collected: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(collected.is_empty());
    }
}

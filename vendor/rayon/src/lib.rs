//! Offline stand-in for the `rayon` crate (vendor/README.md).
//!
//! Exposes the `par_iter`/`par_iter_mut` adapter surface this workspace
//! uses, executing **sequentially**. Results are identical to rayon's
//! (the iteration order of every adapter matches the sequential order);
//! only the parallel speedup is absent.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter};
}

/// Sequential stand-in for a parallel iterator. Wraps any std iterator and
/// mirrors the rayon adapter names (`map`, `filter_map`, `enumerate`,
/// `reduce`, `collect`, `for_each`, `sum`).
pub struct ParIter<I>(I);

/// `slice.par_iter()` — sequential fallback.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

/// `slice.par_iter_mut()` — sequential fallback.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter(self.iter_mut())
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter(self.iter_mut())
    }
}

impl<I: Iterator> ParIter<I> {
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// rayon-style reduce: identity closure + associative op.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let total = v
            .par_iter()
            .map(|&x| (x, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(total, (10, 4));
    }

    #[test]
    fn filter_map_collect_preserves_order() {
        let mut v = vec![1u32, 2, 3, 4, 5];
        let odd: Vec<u32> = v
            .par_iter_mut()
            .enumerate()
            .filter_map(|(i, x)| (*x % 2 == 1).then_some(i as u32))
            .collect();
        assert_eq!(odd, vec![0, 2, 4]);
    }
}

//! Cross-crate integration: every engine (GraphReduce + all four baselines)
//! must produce identical results on every (dataset, algorithm) cell of the
//! paper's evaluation matrix, at test scale, and agree with the independent
//! classical references.

use graphreduce_repro::algorithms::{reference, Bfs, Cc, PageRank, Sssp};
use graphreduce_repro::baselines::{CuSha, GraphChi, MapGraph, XStream};
use graphreduce_repro::core::{GraphReduce, Options};
use graphreduce_repro::graph::{Dataset, GraphLayout};
use graphreduce_repro::sim::Platform;

const SCALE: u64 = 2048;

fn source(layout: &GraphLayout) -> u32 {
    (0..layout.num_vertices())
        .max_by_key(|&v| layout.csr.degree(v))
        .unwrap_or(0)
}

/// All datasets at a scale small enough for exhaustive checking.
fn all_datasets() -> Vec<Dataset> {
    Dataset::IN_MEMORY
        .into_iter()
        .chain(Dataset::OUT_OF_MEMORY)
        .collect()
}

#[test]
fn bfs_agrees_across_all_engines_and_datasets() {
    let plat = Platform::paper_node();
    let host = &plat.host;
    for ds in all_datasets() {
        let layout = GraphLayout::build(&ds.generate(SCALE));
        let src = source(&layout);
        let want = reference::bfs(&layout, src);
        let gr = GraphReduce::new(Bfs::new(src), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        assert_eq!(gr.vertex_values, want, "GR bfs on {}", ds.name());
        let chi = GraphChi::scaled(SCALE).run(&Bfs::new(src), &layout, host);
        assert_eq!(chi.vertex_values, want, "GraphChi bfs on {}", ds.name());
        let xs = XStream::default().run(&Bfs::new(src), &layout, host);
        assert_eq!(xs.vertex_values, want, "X-Stream bfs on {}", ds.name());
        let cu = CuSha::default()
            .run(&Bfs::new(src), &layout, &plat)
            .unwrap();
        assert_eq!(cu.vertex_values, want, "CuSha bfs on {}", ds.name());
        let mg = MapGraph::default()
            .run(&Bfs::new(src), &layout, &plat)
            .unwrap();
        assert_eq!(mg.vertex_values, want, "MapGraph bfs on {}", ds.name());
    }
}

#[test]
fn sssp_agrees_with_bellman_ford_on_every_dataset() {
    let plat = Platform::paper_node();
    for ds in all_datasets() {
        let layout = GraphLayout::build(&ds.generate_weighted(SCALE));
        let src = source(&layout);
        let want = reference::sssp(&layout, src);
        let gr = GraphReduce::new(Sssp::new(src), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        assert_eq!(gr.vertex_values, want, "GR sssp on {}", ds.name());
        let xs = XStream::default().run(&Sssp::new(src), &layout, &plat.host);
        assert_eq!(xs.vertex_values, want, "X-Stream sssp on {}", ds.name());
    }
}

#[test]
fn cc_labels_are_component_minima_on_every_dataset() {
    let plat = Platform::paper_node();
    for ds in all_datasets() {
        let layout = GraphLayout::build(&ds.generate(SCALE).symmetrize());
        let gr = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        reference::check_cc_labels(&layout, &gr.vertex_values);
        let cu = CuSha::default().run(&Cc, &layout, &plat).unwrap();
        assert_eq!(
            cu.vertex_values,
            gr.vertex_values,
            "CuSha cc on {}",
            ds.name()
        );
    }
}

#[test]
fn pagerank_is_bit_identical_across_every_engine() {
    let plat = Platform::paper_node();
    let pr = PageRank {
        epsilon: 1e-3,
        max_iters: 40,
        ..Default::default()
    };
    for ds in [Dataset::KronLogn20, Dataset::Orkut, Dataset::BelgiumOsm] {
        let layout = GraphLayout::build(&ds.generate(SCALE));
        let gr = GraphReduce::new(pr, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let want = reference::pagerank_frontier(&layout, pr.damping, pr.epsilon, pr.max_iters);
        let got: Vec<f32> = gr.vertex_values.iter().map(|v| v.rank).collect();
        assert_eq!(got, want, "GR pr on {}", ds.name());
        let chi = GraphChi::scaled(SCALE).run(&pr, &layout, &plat.host);
        let chi_ranks: Vec<f32> = chi.vertex_values.iter().map(|v| v.rank).collect();
        assert_eq!(chi_ranks, want, "GraphChi pr on {}", ds.name());
        let mg = MapGraph::default().run(&pr, &layout, &plat).unwrap();
        let mg_ranks: Vec<f32> = mg.vertex_values.iter().map(|v| v.rank).collect();
        assert_eq!(mg_ranks, want, "MapGraph pr on {}", ds.name());
    }
}

#[test]
fn out_of_core_execution_changes_timing_not_results() {
    // The same workload on a full-size device (resident) and on a tiny
    // device (heavy sharding + streaming) must agree exactly while moving
    // very different byte volumes.
    let layout = GraphLayout::build(&Dataset::Orkut.generate(SCALE).symmetrize());
    let resident = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
        .run()
        .unwrap();
    let streamed = GraphReduce::new(
        Cc,
        &layout,
        Platform::paper_node_scaled(SCALE * 2),
        Options::optimized(),
    )
    .run()
    .unwrap();
    assert_eq!(resident.vertex_values, streamed.vertex_values);
    assert!(resident.stats.all_resident);
    assert!(!streamed.stats.all_resident);
    assert!(streamed.stats.num_shards > resident.stats.num_shards);
    assert!(streamed.stats.bytes_h2d > resident.stats.bytes_h2d);
}

#[test]
fn whole_pipeline_is_deterministic_end_to_end() {
    let run = || {
        let layout = GraphLayout::build(&Dataset::Uk2002.generate(SCALE));
        let src = source(&layout);
        let out = GraphReduce::new(
            Bfs::new(src),
            &layout,
            Platform::paper_node_scaled(SCALE),
            Options::optimized(),
        )
        .run()
        .unwrap();
        (
            out.vertex_values,
            out.stats.elapsed,
            out.stats.bytes_h2d,
            out.stats.frontier_sizes(),
        )
    };
    assert_eq!(run(), run());
}

//! End-to-end acceptance tests for the gr-observe layer: one engine run
//! with a recording sink must yield (a) phase spans for every processed
//! shard, exportable as JSONL; (b) a decision log whose shard-skip count
//! equals the run's `shards_skipped` total; (c) a Perfetto-loadable
//! unified trace carrying both the sim-resource and engine-iteration
//! tracks.

use std::collections::BTreeSet;

use graphreduce_repro::core::{report, GraphReduce, Options, RunStats, WallProfiler};
use graphreduce_repro::graph::{gen, EdgeList, GraphLayout};
use graphreduce_repro::observe::{export, FieldValue, Observer, Recorded};
use graphreduce_repro::sim::Platform;
use graphreduce_repro::{Bfs, Heat};

/// A run that exercises all five GAS phases (Heat defines gather *and*
/// scatter) over many shards on a shrunken device.
fn heat_run() -> (RunStats, Recorded) {
    let layout = GraphLayout::build(&gen::rmat_g500(12, 40_000, 7).symmetrize());
    let (observer, sink) = Observer::recording();
    let out = GraphReduce::new(
        Heat::default(),
        &layout,
        Platform::paper_node_scaled(1 << 13),
        Options::optimized(),
    )
    .with_observer(observer)
    .run()
    .unwrap();
    (out.stats, sink.recorded())
}

fn field_u64(fields: &[(&'static str, FieldValue)], key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| match v {
            FieldValue::U64(n) => *n,
            other => panic!("{key} is not a u64: {other:?}"),
        })
}

/// Distinct shard ids with a span named `phase` in iteration `iter`.
fn shards_with_phase(rec: &Recorded, phase: &str, iter: u64) -> BTreeSet<u64> {
    rec.spans
        .iter()
        .filter(|s| {
            s.track == "engine"
                && s.name == phase
                && field_u64(&s.fields, "iteration") == Some(iter)
        })
        .map(|s| field_u64(&s.fields, "shard").expect("shard field"))
        .collect()
}

#[test]
fn every_processed_shard_gets_its_phase_spans() {
    let (stats, rec) = heat_run();
    assert!(stats.num_shards > 1, "need an out-of-core run");
    for (i, it) in stats.per_iteration.iter().enumerate() {
        // gatherMap / gatherReduce / apply run for exactly the shards the
        // frontier kept active this iteration.
        for phase in ["gatherMap", "gatherReduce", "apply"] {
            let shards = shards_with_phase(&rec, phase, i as u64);
            assert_eq!(
                shards.len() as u32,
                it.shards_processed,
                "iteration {i}: {phase} spans vs shards_processed"
            );
        }
    }
    // Scatter + FrontierActivate run for shards with changed out-edges —
    // present in the capture, labeled with iteration and shard.
    for phase in ["scatter", "frontierActivate"] {
        assert!(
            rec.spans
                .iter()
                .any(|s| s.track == "engine" && s.name == phase),
            "no {phase} span recorded"
        );
    }

    // The JSONL export carries all five phases, one object per line.
    let jsonl = export::jsonl(&rec);
    for phase in [
        "gatherMap",
        "gatherReduce",
        "apply",
        "scatter",
        "frontierActivate",
    ] {
        assert!(
            jsonl.contains(&format!("\"name\":\"{phase}\"")),
            "JSONL lacks {phase}"
        );
    }
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
    }
}

#[test]
fn decision_log_skips_match_iteration_stats() {
    // The long-path BFS setup: most shards are inactive most iterations,
    // so frontier management skips aggressively.
    let n = 2048u32;
    let el =
        EdgeList::from_edges(n, (0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>()).symmetrize();
    let layout = GraphLayout::build(&el);
    let (observer, sink) = Observer::recording();
    let out = GraphReduce::new(
        Bfs::new(0),
        &layout,
        Platform::paper_node_scaled(1 << 16),
        Options::optimized(),
    )
    .with_observer(observer)
    .run()
    .unwrap();
    let rec = sink.recorded();
    let skipped: u64 = out
        .stats
        .per_iteration
        .iter()
        .map(|it| it.shards_skipped as u64)
        .sum();
    assert!(skipped > 0, "setup must skip shards");
    assert_eq!(
        rec.shard_skips() as u64,
        skipped,
        "one ShardSkip decision per skipped shard per iteration"
    );
}

#[test]
fn armed_wall_profiler_attributes_real_time_without_changing_results() {
    let layout = GraphLayout::build(&gen::rmat_g500(12, 40_000, 7).symmetrize());
    let plat = Platform::paper_node_scaled(1 << 13);
    let base = GraphReduce::new(Heat::default(), &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    assert!(base.stats.wall.is_none(), "no profiler, no wall section");
    assert!(!base.stats.to_string().contains("host wall:"));

    let wall = WallProfiler::armed();
    let (observer, sink) = Observer::recording();
    let out = GraphReduce::new(Heat::default(), &layout, plat, Options::optimized())
        .with_wall_profiler(wall.clone())
        .with_observer(observer)
        .run()
        .unwrap();
    // Profiling is read-only: results and every simulated number are
    // untouched.
    assert_eq!(out.vertex_values, base.vertex_values);
    assert_eq!(out.stats.elapsed, base.stats.elapsed);
    assert_eq!(out.stats.bytes_h2d, base.stats.bytes_h2d);

    let summary = out.stats.wall.clone().expect("armed profiler fills wall");
    assert!(summary.total_ns > 0, "real time must accumulate");
    assert!(summary.kernel_ns > 0 && summary.kernel_ns <= summary.total_ns);
    assert!(summary.threads >= 1);
    assert!(summary.imbalance >= 1.0);
    assert!(out.stats.to_string().contains("host wall:"));

    // The profile tree attributes every GAS phase of this all-phase
    // program, labeled with the algorithm.
    let profile = wall.profile();
    assert_eq!(profile.algorithm, out.stats.algorithm);
    let phases: BTreeSet<&str> = profile.rows.iter().map(|r| r.key.phase).collect();
    for p in ["gather", "apply", "scatter", "activate", "setup"] {
        assert!(phases.contains(p), "profile lacks phase {p}");
    }

    // The run report grows a wall section; the baseline report has none.
    let rec = sink.recorded();
    let rep = report::run_report(&out.stats, &rec);
    assert!(rep.contains("\"wall\": {\"total_ns\":"));
    let base_rep = report::run_report(&base.stats, &rec);
    assert!(!base_rep.contains("\"wall\""));

    // And the unified trace gains a wall-clock track beside sim/engine.
    let trace = export::chrome_trace_with_wall(&rec, Some(&profile));
    assert!(trace.contains("\"args\":{\"name\":\"wall\"}"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
}

#[test]
fn unified_trace_has_sim_and_engine_tracks() {
    let (_, rec) = heat_run();
    let trace = export::chrome_trace(&rec);
    // Perfetto-loadable shape: a single traceEvents array object.
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("]}"));
    assert!(!trace.contains(",]") && !trace.contains(",}"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    // Both tracks present as named processes.
    assert!(trace.contains("\"name\":\"process_name\""));
    for track in ["sim", "engine"] {
        assert!(
            trace.contains(&format!("\"args\":{{\"name\":\"{track}\"}}")),
            "trace lacks the {track} track"
        );
    }
    // Sim lanes (copy/kernel engines) and engine lanes (shards,
    // iterations) both carry events.
    assert!(trace.contains("\"name\":\"h2d\"") || trace.contains("\"name\":\"kernel"));
    assert!(trace.contains("iteration 0"));
}

//! Integration tests pinning the paper's headline *claims* (the shapes the
//! benchmark harness regenerates) at test scale, so regressions in the cost
//! models or the engines fail CI rather than silently bending the figures.

use graphreduce_repro::algorithms::{Bfs, Cc};
use graphreduce_repro::baselines::{CuSha, GraphChi, XStream};
use graphreduce_repro::core::{GraphReduce, Options};
use graphreduce_repro::graph::{Dataset, GraphLayout};
use graphreduce_repro::sim::xfer::{transfer_access_time, AccessPattern, TransferMode};
use graphreduce_repro::sim::Platform;

fn source(layout: &GraphLayout) -> u32 {
    (0..layout.num_vertices())
        .max_by_key(|&v| layout.csr.degree(v))
        .unwrap_or(0)
}

/// Section 1 / Table 3: GR beats the CPU out-of-memory frameworks on
/// out-of-memory graphs.
#[test]
fn gr_outperforms_cpu_frameworks_out_of_core() {
    let scale = 512;
    let plat = Platform::paper_node_scaled(scale);
    for ds in [Dataset::KronLogn21, Dataset::Orkut] {
        let layout = GraphLayout::build(&ds.generate(scale));
        let src = source(&layout);
        let gr = GraphReduce::new(Bfs::new(src), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        assert!(!gr.stats.all_resident, "{} must stream", ds.name());
        let chi = GraphChi::scaled(scale).run(&Bfs::new(src), &layout, &plat.host);
        let xs = XStream::default().run(&Bfs::new(src), &layout, &plat.host);
        let s_chi = chi.stats.elapsed.as_secs_f64() / gr.stats.elapsed.as_secs_f64();
        let s_xs = xs.stats.elapsed.as_secs_f64() / gr.stats.elapsed.as_secs_f64();
        assert!(
            s_chi > 2.0,
            "{}: GR vs GraphChi only {s_chi:.2}x",
            ds.name()
        );
        assert!(s_xs > 1.5, "{}: GR vs X-Stream only {s_xs:.2}x", ds.name());
        assert!(s_chi > s_xs, "GraphChi must trail X-Stream (Table 3)");
    }
}

/// Section 6.2.3: memcpy dominates unoptimized execution and the Section 5
/// optimizations cut it substantially; BFS benefits the most.
#[test]
fn optimizations_cut_memcpy_time() {
    let scale = 256;
    let plat = Platform::paper_node_scaled(scale);
    let layout = GraphLayout::build(&Dataset::Cage15.generate(scale));
    let src = source(&layout);

    let unopt = GraphReduce::new(Bfs::new(src), &layout, plat.clone(), Options::unoptimized())
        .run()
        .unwrap();
    let opt = GraphReduce::new(Bfs::new(src), &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    assert!(
        unopt.stats.memcpy_share() > 0.85,
        "memcpy must dominate the unoptimized run ({:.1}%)",
        100.0 * unopt.stats.memcpy_share()
    );
    let reduction =
        1.0 - opt.stats.memcpy_time.as_secs_f64() / unopt.stats.memcpy_time.as_secs_f64();
    assert!(
        reduction > 0.4,
        "BFS memcpy reduction only {:.1}%",
        100.0 * reduction
    );

    // CC (gather + dense start) improves less than BFS.
    let sym = GraphLayout::build(&Dataset::Cage15.generate(scale).symmetrize());
    let unopt_cc = GraphReduce::new(Cc, &sym, plat.clone(), Options::unoptimized())
        .run()
        .unwrap();
    let opt_cc = GraphReduce::new(Cc, &sym, plat, Options::optimized())
        .run()
        .unwrap();
    let cc_reduction =
        1.0 - opt_cc.stats.memcpy_time.as_secs_f64() / unopt_cc.stats.memcpy_time.as_secs_f64();
    assert!(
        reduction > cc_reduction,
        "BFS ({:.1}%) must improve more than CC ({:.1}%)",
        100.0 * reduction,
        100.0 * cc_reduction
    );
}

/// Table 1: the in-/out-of-memory split is preserved at every power-of-two
/// scale the harness supports.
#[test]
fn memory_split_is_scale_invariant() {
    for scale in [16u64, 64, 256, 1024] {
        let cap = graphreduce_repro::sim::DeviceConfig::k20c_scaled(scale).mem_capacity;
        for ds in Dataset::IN_MEMORY {
            assert!(
                graphreduce_repro::graph::dataset_bytes(ds, scale) <= cap,
                "{} at /{scale} should fit",
                ds.name()
            );
        }
        for ds in Dataset::OUT_OF_MEMORY {
            assert!(
                graphreduce_repro::graph::dataset_bytes(ds, scale) > cap,
                "{} at /{scale} should exceed device memory",
                ds.name()
            );
        }
    }
}

/// Figure 4: the transfer-technique asymmetry that justifies explicit
/// copies with sorted layouts (Section 3.2).
#[test]
fn transfer_technique_asymmetry() {
    let p = Platform::paper_node();
    let n = 10_000_000u64;
    let t = |m, a| transfer_access_time(&p.pcie, &p.device, m, a, n * 8, n, 8);
    assert!(
        t(TransferMode::PinnedUva, AccessPattern::Sequential)
            < t(TransferMode::Explicit, AccessPattern::Sequential)
    );
    assert!(
        t(TransferMode::Explicit, AccessPattern::Random)
            < t(TransferMode::Managed, AccessPattern::Random)
    );
    assert!(
        t(TransferMode::Managed, AccessPattern::Random)
            < t(TransferMode::PinnedUva, AccessPattern::Random)
    );
}

/// Section 2.2 / Table 2 motivation: the GPU engines refuse out-of-memory
/// graphs (GraphReduce exists precisely to lift this restriction).
#[test]
fn in_memory_engines_refuse_large_graphs() {
    let scale = 512;
    let plat = Platform::paper_node_scaled(scale);
    let layout = GraphLayout::build(&Dataset::Nlpkkt160.generate(scale));
    assert!(CuSha::default().run(&Cc, &layout, &plat).is_err());
    // GraphReduce handles the same graph on the same device.
    let gr = GraphReduce::new(Cc, &layout, plat, Options::optimized()).run();
    assert!(gr.is_ok());
}

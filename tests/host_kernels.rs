//! Differential tests for the sparse/dense/serial/parallel host kernels.
//!
//! The contract under test: every [`HostKernels`] mode — and the threaded
//! paths inside them — produces **bit-identical** results and identical
//! `ShardWork` counts. `Serial` is the oracle (the pre-adaptive reference
//! kernels); `Dense`, `Sparse`, and `Adaptive` must match it exactly, at
//! phase level (fixed frontier densities from 0.1% to 100%) and across
//! whole engine runs for all four evaluated algorithms.

use gr_algorithms::{Bfs, Cc, PageRank, Sssp};
use gr_graph::{build_shards, gen, Bitmap, GraphLayout, Interval, Shard, TopoView};
use gr_sim::Platform;
use graphreduce::phases::{activate_shard, apply_shard, gather_shard, scatter_shard};
use graphreduce::{GasProgram, GraphReduce, HostKernels, Options};

/// Force a multi-thread worker pool so the parallel dense paths (and the
/// cross-shard engine fan-out) actually run threaded even on single-CPU
/// machines. Every test in this binary wants the same value, so a
/// process-wide set-once is race-free.
fn force_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

const DENSITIES: [f64; 4] = [0.001, 0.01, 0.5, 1.0];

/// Deterministic pseudo-random frontier at roughly `density` (always at
/// least one active vertex, so every phase has work).
fn random_frontier(n: u32, density: f64, seed: u64) -> Bitmap {
    if density >= 1.0 {
        return Bitmap::full(n);
    }
    let mut b = Bitmap::new(n);
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let thresh = (density * f64::from(u32::MAX)) as u64;
    for v in 0..n {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (s >> 32) < thresh {
            b.set(v);
        }
    }
    if b.count() == 0 && n > 0 {
        b.set(seed as u32 % n);
    }
    b
}

/// Everything one GAS iteration produces, phase by phase.
#[derive(Debug, PartialEq)]
struct PhaseOutcome<V, E, G> {
    gather: Vec<(u64, u64)>,
    changed_ids: Vec<Vec<u32>>,
    scattered: Vec<u64>,
    activate: Vec<(u64, u64)>,
    values: Vec<V>,
    edge_values: Vec<E>,
    gather_temp: Vec<G>,
    next_frontier: Vec<u32>,
}

/// Run one full GAS iteration under `mode` from freshly initialized state.
fn run_phases<P: GasProgram>(
    program: &P,
    layout: &GraphLayout,
    shards: &[Shard],
    frontier: &Bitmap,
    mode: HostKernels,
) -> PhaseOutcome<P::VertexValue, P::EdgeValue, P::Gather> {
    let n = layout.num_vertices();
    let mut values: Vec<P::VertexValue> = (0..n)
        .map(|v| program.init_vertex(v, layout.csr.degree(v) as u32))
        .collect();
    let mut edge_values = vec![P::EdgeValue::default(); layout.num_edges() as usize];
    let mut gather_temp = vec![program.gather_identity(); n as usize];

    let mut gather = Vec::new();
    if program.has_gather() {
        for sh in shards {
            let (lo, hi) = (sh.interval.start as usize, sh.interval.end as usize);
            // Split per shard so slices mirror the engine's carve-up.
            let slice = &mut gather_temp[lo..hi];
            gather.push(gather_shard(
                program,
                TopoView::raw(layout),
                sh,
                &values,
                &edge_values,
                &layout.weights,
                frontier,
                slice,
                mode,
            ));
        }
    }

    let mut changed_ids = Vec::new();
    let mut changed = Bitmap::new(n);
    for sh in shards {
        let (lo, hi) = (sh.interval.start as usize, sh.interval.end as usize);
        let ids = apply_shard(
            program,
            sh,
            &mut values[lo..hi],
            &gather_temp[lo..hi],
            frontier,
            0,
            mode,
        );
        for &v in &ids {
            changed.set(v);
        }
        changed_ids.push(ids);
    }

    // Scatter is exercised unconditionally: even with a no-op scatter
    // function the sparse/dense/parallel iteration machinery (and its
    // work count) must agree across modes.
    let scattered = shards
        .iter()
        .map(|sh| {
            scatter_shard(
                program,
                TopoView::raw(layout),
                sh,
                &values,
                &mut edge_values,
                &changed,
                mode,
            )
        })
        .collect();

    let mut next = Bitmap::new(n);
    let activate = shards
        .iter()
        .map(|sh| activate_shard(TopoView::raw(layout), sh, &changed, &mut next, mode))
        .collect();

    PhaseOutcome {
        gather,
        changed_ids,
        scattered,
        activate,
        values,
        edge_values,
        gather_temp,
        next_frontier: next.iter_set().collect(),
    }
}

fn phase_graph() -> (GraphLayout, Vec<Shard>) {
    // Big enough that the dense parallel paths actually split (>4096 per
    // shard), with weights so SSSP has real distances.
    let el = gen::with_random_weights(gen::uniform(20_000, 120_000, 7), 1.0, 8).symmetrize();
    let layout = GraphLayout::build(&el);
    let shards = build_shards(
        &layout,
        &[
            Interval {
                start: 0,
                end: 9_000,
            },
            Interval {
                start: 9_000,
                end: 20_000,
            },
        ],
    );
    (layout, shards)
}

fn assert_phases_agree<P: GasProgram>(program: P)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
    P::EdgeValue: PartialEq + std::fmt::Debug,
    P::Gather: PartialEq + std::fmt::Debug,
{
    force_threads();
    let (layout, shards) = phase_graph();
    for (di, &density) in DENSITIES.iter().enumerate() {
        let frontier = random_frontier(layout.num_vertices(), density, 11 + di as u64);
        let oracle = run_phases(&program, &layout, &shards, &frontier, HostKernels::Serial);
        assert!(
            oracle.gather.iter().map(|g| g.0).sum::<u64>() > 0 || !program.has_gather(),
            "density {density} frontier produced no gather work"
        );
        for mode in [
            HostKernels::Dense,
            HostKernels::Sparse,
            HostKernels::Adaptive,
        ] {
            let got = run_phases(&program, &layout, &shards, &frontier, mode);
            assert_eq!(
                got,
                oracle,
                "{} differs from Serial under {mode:?} at density {density}",
                program.name()
            );
        }
    }
}

#[test]
fn bfs_phases_agree_across_modes_and_densities() {
    assert_phases_agree(Bfs::new(0));
}

#[test]
fn sssp_phases_agree_across_modes_and_densities() {
    assert_phases_agree(Sssp::new(0));
}

#[test]
fn pagerank_phases_agree_across_modes_and_densities() {
    assert_phases_agree(PageRank::default());
}

#[test]
fn cc_phases_agree_across_modes_and_densities() {
    assert_phases_agree(Cc);
}

// ---------------------------------------------------------------------------
// Whole-run agreement: every mode, multi-shard engine, threaded fan-out.
// ---------------------------------------------------------------------------

fn engine_graph() -> GraphLayout {
    GraphLayout::build(
        &gen::with_random_weights(gen::rmat_g500(12, 40_000, 5), 1.0, 6).symmetrize(),
    )
}

fn assert_runs_agree<P: GasProgram + Clone>(program: P)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
    P::EdgeValue: PartialEq + std::fmt::Debug,
{
    force_threads();
    let layout = engine_graph();
    // Scaled-down device: the run streams multiple shards, so the engine's
    // cross-shard parallel fan-out engages alongside the kernel modes.
    let plat = Platform::paper_node_scaled(8_192);
    let oracle = GraphReduce::new(
        program.clone(),
        &layout,
        plat.clone(),
        Options::optimized().with_host_kernels(HostKernels::Serial),
    )
    .run()
    .unwrap();
    assert!(
        oracle.stats.num_shards > 1,
        "setup must stream multiple shards"
    );
    for mode in [
        HostKernels::Dense,
        HostKernels::Sparse,
        HostKernels::Adaptive,
    ] {
        let got = GraphReduce::new(
            program.clone(),
            &layout,
            plat.clone(),
            Options::optimized().with_host_kernels(mode),
        )
        .run()
        .unwrap();
        assert_eq!(got.vertex_values, oracle.vertex_values, "{mode:?}");
        assert_eq!(got.edge_values, oracle.edge_values, "{mode:?}");
        // Identical ShardWork counts ⇒ identical simulated timeline.
        assert_eq!(
            got.stats.per_iteration, oracle.stats.per_iteration,
            "{mode:?}"
        );
        assert_eq!(got.stats.elapsed, oracle.stats.elapsed, "{mode:?}");
        assert_eq!(got.stats.bytes_h2d, oracle.stats.bytes_h2d, "{mode:?}");
        assert_eq!(
            got.stats.kernel_launches, oracle.stats.kernel_launches,
            "{mode:?}"
        );
    }
}

#[test]
fn bfs_runs_agree_across_modes() {
    assert_runs_agree(Bfs::new(0));
}

#[test]
fn sssp_runs_agree_across_modes() {
    assert_runs_agree(Sssp::new(0));
}

#[test]
fn pagerank_runs_agree_across_modes() {
    assert_runs_agree(PageRank::default());
}

#[test]
fn cc_runs_agree_across_modes() {
    assert_runs_agree(Cc);
}

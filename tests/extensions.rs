//! Facade-level integration tests for the Section 8 future-work
//! extensions: multi-GPU, SSD-backed out-of-host-core, incremental
//! processing — plus the Totem-style hybrid comparator.

use graphreduce_repro::algorithms::{reference, Cc, PageRank};
use graphreduce_repro::baselines::Totem;
use graphreduce_repro::core::{GraphReduce, MultiGraphReduce, Options, WarmStart};
use graphreduce_repro::graph::{Dataset, EdgeList, GraphLayout};
use graphreduce_repro::sim::Platform;

const SCALE: u64 = 1024;

#[test]
fn multi_gpu_agrees_with_single_gpu_and_scales() {
    let layout = GraphLayout::build(&Dataset::Orkut.generate(SCALE).symmetrize());
    let plat = Platform::paper_node_scaled(SCALE);
    let single = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    let mut last = None;
    for n in [1u32, 2, 4] {
        let multi = MultiGraphReduce::new(Cc, &layout, plat.clone(), n)
            .run()
            .unwrap();
        assert_eq!(multi.vertex_values, single.vertex_values, "{n} GPUs");
        if let Some(prev) = last {
            assert!(
                multi.stats.elapsed <= prev,
                "{n} GPUs should not be slower than {}",
                n / 2
            );
        }
        last = Some(multi.stats.elapsed);
    }
}

#[test]
fn ssd_tier_changes_time_not_results() {
    let layout = GraphLayout::build(&Dataset::Cage15.generate(SCALE));
    let pr = PageRank {
        epsilon: 1e-3,
        max_iters: 20,
        ..Default::default()
    };
    let mut plat = Platform::paper_node_scaled(SCALE);
    let in_ram = GraphReduce::new(pr, &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    plat.host.mem_capacity = 1 << 20; // force the storage tier
    let from_ssd = GraphReduce::new(pr, &layout, plat, Options::optimized())
        .run()
        .unwrap();
    assert_eq!(in_ram.vertex_values, from_ssd.vertex_values);
    assert_eq!(in_ram.stats.bytes_h2d, from_ssd.stats.bytes_h2d);
    assert!(from_ssd.stats.elapsed > in_ram.stats.elapsed);
}

#[test]
fn incremental_cc_tracks_edge_insertions() {
    let mut el = Dataset::CoAuthorsDblp.generate(SCALE).symmetrize();
    let plat = Platform::paper_node_scaled(SCALE);
    let layout = GraphLayout::build(&el);
    let mut state = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();

    for step in 0..3 {
        let u = (step * 37) % el.num_vertices;
        let v = (step * 113 + el.num_vertices / 2) % el.num_vertices;
        if u == v {
            continue;
        }
        el.edges.push((u, v));
        el.edges.push((v, u));
        let layout = GraphLayout::build(&el);
        let gr = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized());
        let warm = gr
            .run_warm(WarmStart {
                vertex_values: state.vertex_values,
                frontier: vec![u, v],
            })
            .unwrap();
        // Incremental result must equal recomputation and the union-find
        // ground truth.
        reference::check_cc_labels(&layout, &warm.vertex_values);
        let cold = gr.run().unwrap();
        assert_eq!(warm.vertex_values, cold.vertex_values, "step {step}");
        state = warm;
    }
}

#[test]
fn totem_handles_out_of_memory_graphs_but_underutilizes() {
    let layout = GraphLayout::build(&Dataset::Nlpkkt160.generate(SCALE));
    let plat = Platform::paper_node_scaled(SCALE);
    let (run, split) = Totem::default().run(&Cc, &layout, &plat);
    // Never refuses — but the device holds only part of the edge set.
    assert!(
        split.gpu_fraction() < 1.0,
        "share {:.2}",
        split.gpu_fraction()
    );
    assert!(split.boundary_edges > 0);
    // Same results as GraphReduce on the same graph.
    let gr = GraphReduce::new(Cc, &layout, plat, Options::optimized())
        .run()
        .unwrap();
    assert_eq!(run.vertex_values, gr.vertex_values);
}

#[test]
fn warm_start_noop_converges_immediately() {
    // Re-running warm with no mutation and an empty seed set terminates in
    // zero iterations and moves almost nothing.
    let el = EdgeList::from_edges(64, (0..63).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let layout = GraphLayout::build(&el);
    let plat = Platform::paper_node();
    let gr = GraphReduce::new(Cc, &layout, plat, Options::optimized());
    let first = gr.run().unwrap();
    let warm = gr
        .run_warm(WarmStart {
            vertex_values: first.vertex_values.clone(),
            frontier: vec![],
        })
        .unwrap();
    assert_eq!(warm.stats.iterations, 0);
    assert_eq!(warm.vertex_values, first.vertex_values);
}

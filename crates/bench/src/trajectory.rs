//! Benchmark trajectory: parse, append, and compare wall-clock results.
//!
//! The `wallclock` bin emits one `BENCH_wallclock.json` per invocation
//! (schema `gr-wallclock-v2`, with `gr-wallclock-v1` still readable) and
//! appends one line per run to `results/bench_trajectory.jsonl`, keyed by
//! the git commit it measured. This module owns both formats:
//!
//! - [`Value`] — a minimal JSON reader (the workspace vendors no serde);
//! - [`BenchRow`] — one (algorithm, kernel mode, thread count) timing row;
//! - [`TrajectoryEntry`] — one JSONL line: commit + context + rows;
//! - [`baseline_rows`] — rows from *either* format, for `--compare`;
//! - [`compare`] — the regression gate: current rows vs a baseline,
//!   matched on (algo, mode, threads); the run regressed when the median
//!   of the per-row `median_ms` deltas exceeds [`REGRESSION_PCT`].
//!
//! Wall time is noisy, so the gate is deliberately coarse: per-row medians
//! (not minima, which hide steady-state slowdowns), a median across rows
//! (one outlier row cannot fail the gate alone), and a 10% threshold.

use std::collections::BTreeMap;

/// Median regression (percent) beyond which [`compare`] fails the gate.
pub const REGRESSION_PCT: f64 = 10.0;

/// Default trajectory path, relative to the working directory.
pub const TRAJECTORY_PATH: &str = "results/bench_trajectory.jsonl";

// ---------------------------------------------------------------------------
// Minimal JSON reader.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` (every number the bench formats
/// fits exactly or is a measurement where 53 bits dwarf the noise floor).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogates never appear in the bench formats
                        // (ASCII identifiers and git hashes throughout).
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let start = *pos - 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8 in string")?,
                );
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

// ---------------------------------------------------------------------------
// Rows and trajectory entries.
// ---------------------------------------------------------------------------

/// One timing row: an algorithm under one kernel mode at one host thread
/// count. The unit every comparison works in.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// What the row measures: `"wallclock"` (ms per engine run — the
    /// original row kind, and the default when a row carries no tag) or
    /// `"serve"` (serving-latency rows from the `serve` bin, where
    /// `median_ms`/`p95_ms` are per-query latencies from an open-loop
    /// arrival trace). Rows only ever compare within their own kind.
    pub kind: String,
    pub algo: String,
    pub mode: String,
    pub threads: u64,
    pub iterations: u64,
    pub median_ms: f64,
    pub p95_ms: f64,
    pub min_ms: f64,
}

impl BenchRow {
    /// The identity rows are matched on across runs.
    pub fn key(&self) -> (String, String, String, u64) {
        (
            self.kind.clone(),
            self.algo.clone(),
            self.mode.clone(),
            self.threads,
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"algo\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"iterations\": {}, \"median_ms\": {:.4}, \"p95_ms\": {:.4}, \"min_ms\": {:.4}}}",
            self.kind,
            self.algo,
            self.mode,
            self.threads,
            self.iterations,
            self.median_ms,
            self.p95_ms,
            self.min_ms
        )
    }

    fn from_json(v: &Value, default_threads: u64) -> Result<BenchRow, String> {
        let f = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("run row lacks numeric {k:?}"))
        };
        Ok(BenchRow {
            // Rows predating the serve bench carry no kind tag.
            kind: v
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("wallclock")
                .to_string(),
            algo: v
                .get("algo")
                .and_then(Value::as_str)
                .ok_or("run row lacks \"algo\"")?
                .to_string(),
            mode: v
                .get("mode")
                .and_then(Value::as_str)
                .ok_or("run row lacks \"mode\"")?
                .to_string(),
            // v1 rows carry no thread count; the file-level host_threads
            // applies to every row.
            threads: v
                .get("threads")
                .and_then(Value::as_u64)
                .unwrap_or(default_threads),
            iterations: v.get("iterations").and_then(Value::as_u64).unwrap_or(0),
            median_ms: f("median_ms")?,
            p95_ms: f("p95_ms")?,
            min_ms: f("min_ms")?,
        })
    }
}

/// One trajectory line: every row of one `wallclock` invocation, keyed by
/// the commit and graph scale it measured (comparisons only ever match
/// rows measured on the same graph).
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryEntry {
    pub commit: String,
    pub schema: String,
    /// RMAT scale of the benched graph (log2 vertices).
    pub scale: u64,
    pub rows: Vec<BenchRow>,
}

impl TrajectoryEntry {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(BenchRow::to_json).collect();
        format!(
            "{{\"commit\": \"{}\", \"schema\": \"{}\", \"scale\": {}, \"rows\": [{}]}}",
            self.commit,
            self.schema,
            self.scale,
            rows.join(", ")
        )
    }

    pub fn from_line(line: &str) -> Result<TrajectoryEntry, String> {
        let v = Value::parse(line)?;
        let rows = v
            .get("rows")
            .and_then(Value::as_arr)
            .ok_or("trajectory line lacks \"rows\"")?
            .iter()
            .map(|r| BenchRow::from_json(r, 1))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TrajectoryEntry {
            commit: v
                .get("commit")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            schema: v
                .get("schema")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            scale: v.get("scale").and_then(Value::as_u64).unwrap_or(0),
            rows,
        })
    }
}

/// Rows of one `BENCH_wallclock.json` report, v1 or v2. Returns the rows
/// and the graph scale they were measured at.
pub fn report_rows(text: &str) -> Result<(Vec<BenchRow>, u64), String> {
    let v = Value::parse(text)?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
    if !schema.starts_with("gr-wallclock-v") {
        return Err(format!("not a wallclock report (schema {schema:?})"));
    }
    let host_threads = v.get("host_threads").and_then(Value::as_u64).unwrap_or(1);
    let scale = v
        .get("graph")
        .and_then(|g| g.get("scale"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let rows = v
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("report lacks \"runs\"")?
        .iter()
        .map(|r| BenchRow::from_json(r, host_threads))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((rows, scale))
}

/// Baseline rows for `--compare <path>`: the file is either a wallclock
/// report (a single JSON object) or a trajectory JSONL. From a trajectory,
/// the baseline is the union of all entries at the matching `scale`,
/// later entries overriding earlier ones per row key — so a file holding
/// 1-thread and 2-thread entries gates both CI configurations.
pub fn baseline_rows(text: &str, scale: u64) -> Result<Vec<BenchRow>, String> {
    let trimmed = text.trim();
    if let Ok((rows, base_scale)) = report_rows(trimmed) {
        if base_scale != scale {
            return Err(format!(
                "baseline measured at scale {base_scale}, current run at scale {scale}"
            ));
        }
        return Ok(rows);
    }
    let mut pool: BTreeMap<(String, String, String, u64), BenchRow> = BTreeMap::new();
    let mut entries = 0usize;
    for line in trimmed.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let entry = TrajectoryEntry::from_line(line)?;
        if entry.scale != scale {
            continue;
        }
        entries += 1;
        for row in entry.rows {
            pool.insert(row.key(), row);
        }
    }
    if entries == 0 {
        return Err(format!("baseline holds no entries at scale {scale}"));
    }
    Ok(pool.into_values().collect())
}

// ---------------------------------------------------------------------------
// The comparison gate.
// ---------------------------------------------------------------------------

/// One matched row's delta.
#[derive(Clone, Debug)]
pub struct RowDelta {
    pub kind: String,
    pub algo: String,
    pub mode: String,
    pub threads: u64,
    pub baseline_ms: f64,
    pub current_ms: f64,
    /// Signed percent change of `median_ms` (positive = slower).
    pub delta_pct: f64,
}

/// Outcome of [`compare`].
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-row deltas, in baseline row order.
    pub deltas: Vec<RowDelta>,
    /// Current rows with no baseline counterpart (new configurations —
    /// reported, never gated on).
    pub unmatched: Vec<(String, String, String, u64)>,
    /// Median of the per-row `delta_pct` values.
    pub median_delta_pct: f64,
}

impl Comparison {
    /// The gate: true when the median delta exceeds [`REGRESSION_PCT`].
    pub fn regressed(&self) -> bool {
        self.median_delta_pct > REGRESSION_PCT
    }
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Compare current rows against a baseline, matching on (kind, algo,
/// mode, threads). Errs when no row matches — a gate with nothing to gate
/// on is a configuration mistake, not a pass.
pub fn compare(baseline: &[BenchRow], current: &[BenchRow]) -> Result<Comparison, String> {
    let pool: BTreeMap<(String, String, String, u64), &BenchRow> =
        current.iter().map(|r| (r.key(), r)).collect();
    let mut deltas = Vec::new();
    for base in baseline {
        if let Some(cur) = pool.get(&base.key()) {
            let delta_pct = if base.median_ms > 0.0 {
                100.0 * (cur.median_ms - base.median_ms) / base.median_ms
            } else {
                0.0
            };
            deltas.push(RowDelta {
                kind: base.kind.clone(),
                algo: base.algo.clone(),
                mode: base.mode.clone(),
                threads: base.threads,
                baseline_ms: base.median_ms,
                current_ms: cur.median_ms,
                delta_pct,
            });
        }
    }
    if deltas.is_empty() {
        return Err(format!(
            "no current row matches any of the {} baseline rows (kind/algo/mode/threads)",
            baseline.len()
        ));
    }
    let matched: std::collections::BTreeSet<_> = deltas
        .iter()
        .map(|d| (d.kind.clone(), d.algo.clone(), d.mode.clone(), d.threads))
        .collect();
    let unmatched = current
        .iter()
        .map(BenchRow::key)
        .filter(|k| !matched.contains(k))
        .collect();
    let median_delta_pct = median_of(deltas.iter().map(|d| d.delta_pct).collect());
    Ok(Comparison {
        deltas,
        unmatched,
        median_delta_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(algo: &str, mode: &str, threads: u64, median_ms: f64) -> BenchRow {
        BenchRow {
            kind: "wallclock".into(),
            algo: algo.into(),
            mode: mode.into(),
            threads,
            iterations: 3,
            median_ms,
            p95_ms: median_ms * 1.2,
            min_ms: median_ms * 0.9,
        }
    }

    #[test]
    fn json_reader_handles_the_bench_shapes() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3e2], "s": "x\"y\\z", "t": true, "n": null, "o": {}}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\\z"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("o"), Some(&Value::Obj(vec![])));
        assert!(Value::parse("{\"a\": 1} trailing").is_err());
        assert!(Value::parse("{\"a\"").is_err());
    }

    #[test]
    fn committed_report_still_parses() {
        // Backward-compat contract: the baseline committed at the repo
        // root stays readable across schema growth (v1 -> v2 -> the
        // compression rows).
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_wallclock.json"
        ))
        .expect("committed baseline exists");
        let (rows, scale) = report_rows(&text).expect("committed report parses");
        assert_eq!(scale, 16);
        assert_eq!(
            rows.len(),
            12,
            "4 algorithms x serial/adaptive + 2 graphs x raw/zeta3"
        );
        for r in &rows {
            assert_eq!(r.threads, 1, "rows inherit host_threads");
            assert!(r.median_ms > 0.0 && r.min_ms <= r.median_ms);
            assert!(r.iterations > 0);
        }
        let modes: std::collections::BTreeSet<_> = rows.iter().map(|r| r.mode.as_str()).collect();
        assert_eq!(
            modes.into_iter().collect::<Vec<_>>(),
            ["adaptive", "raw", "serial", "zeta3"]
        );
    }

    #[test]
    fn trajectory_lines_round_trip() {
        let entry = TrajectoryEntry {
            commit: "abc123".into(),
            schema: "gr-wallclock-v2".into(),
            scale: 10,
            rows: vec![
                row("bfs", "serial", 1, 12.5),
                row("bfs", "adaptive", 2, 4.25),
            ],
        };
        let line = entry.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(TrajectoryEntry::from_line(&line).unwrap(), entry);
    }

    #[test]
    fn baseline_pools_trajectory_entries_by_scale() {
        let lines = [
            TrajectoryEntry {
                commit: "old".into(),
                schema: "gr-wallclock-v2".into(),
                scale: 10,
                rows: vec![row("bfs", "serial", 1, 20.0), row("cc", "serial", 1, 9.0)],
            },
            TrajectoryEntry {
                commit: "other-scale".into(),
                schema: "gr-wallclock-v2".into(),
                scale: 16,
                rows: vec![row("bfs", "serial", 1, 999.0)],
            },
            TrajectoryEntry {
                commit: "new".into(),
                schema: "gr-wallclock-v2".into(),
                scale: 10,
                rows: vec![row("bfs", "serial", 1, 10.0), row("bfs", "serial", 2, 6.0)],
            },
        ]
        .iter()
        .map(TrajectoryEntry::to_line)
        .collect::<Vec<_>>()
        .join("\n");
        let pool = baseline_rows(&lines, 10).unwrap();
        // Later entries override per key; the scale-16 entry is ignored.
        assert_eq!(pool.len(), 3);
        let bfs1 = pool
            .iter()
            .find(|r| r.key() == row("bfs", "serial", 1, 0.0).key());
        assert_eq!(bfs1.unwrap().median_ms, 10.0);
        assert!(baseline_rows(&lines, 12).is_err(), "no entry at scale 12");
    }

    #[test]
    fn serve_rows_stay_isolated_from_wallclock_rows() {
        let mut serve = row("bfs", "batched", 1, 2.0);
        serve.kind = "serve".into();
        let line = TrajectoryEntry {
            commit: "c".into(),
            schema: "gr-serve-v1".into(),
            scale: 14,
            rows: vec![serve.clone()],
        }
        .to_line();
        let parsed = TrajectoryEntry::from_line(&line).unwrap();
        assert_eq!(parsed.rows[0].kind, "serve");
        // A wallclock row never gates a serve row (and vice versa), even
        // with matching algo/mode/threads.
        let wallclock = row("bfs", "batched", 1, 1.0);
        assert!(compare(&[wallclock], &[serve]).is_err());
    }

    #[test]
    fn compare_gates_on_the_median_row_delta() {
        let base = vec![
            row("bfs", "serial", 1, 10.0),
            row("bfs", "adaptive", 1, 5.0),
            row("cc", "serial", 1, 8.0),
        ];
        // One row 50% slower, two unchanged: median delta 0 — no gate.
        let mut cur = base.clone();
        cur[0].median_ms = 15.0;
        let cmp = compare(&base, &cur).unwrap();
        assert_eq!(cmp.deltas.len(), 3);
        assert!(cmp.median_delta_pct.abs() < 1e-9);
        assert!(!cmp.regressed(), "one outlier row must not fail the gate");

        // Every row 20% slower: median delta 20% > 10% — regression.
        let slower: Vec<BenchRow> = base
            .iter()
            .cloned()
            .map(|mut r| {
                r.median_ms *= 1.2;
                r
            })
            .collect();
        let cmp = compare(&base, &slower).unwrap();
        assert!((cmp.median_delta_pct - 20.0).abs() < 1e-9);
        assert!(cmp.regressed());

        // Uniformly faster: negative median, no regression.
        let faster: Vec<BenchRow> = base
            .iter()
            .cloned()
            .map(|mut r| {
                r.median_ms *= 0.5;
                r
            })
            .collect();
        assert!(!compare(&base, &faster).unwrap().regressed());
    }

    #[test]
    fn compare_refuses_an_unmatchable_baseline() {
        let base = vec![row("bfs", "serial", 1, 10.0)];
        let cur = vec![row("bfs", "serial", 4, 3.0)];
        assert!(compare(&base, &cur).is_err(), "thread counts differ");
        let cmp = compare(&base, &[row("bfs", "serial", 1, 10.0), cur[0].clone()]).unwrap();
        assert_eq!(
            cmp.unmatched,
            vec![(
                "wallclock".to_string(),
                "bfs".to_string(),
                "serial".to_string(),
                4
            )]
        );
    }
}

//! Out-of-core matrix multiplication on the virtual accelerator —
//! the Figure 5 motivation experiment.
//!
//! `C = A · B` where `A` streams to the device in stripes of contiguous
//! rows (the paper uses stripe = 50) and `B` is device-resident. Three
//! schemes:
//!
//! * **Unoptimized** — one stream, synchronize after every operation: every
//!   stripe's transfer serializes with its kernel.
//! * **Compute-transfer** — double buffering on two streams: stripe `i+1`
//!   uploads while stripe `i` computes.
//! * **Compute-compute (+transfer)** — additionally splits each stripe's
//!   kernel in half across two streams, filling idle SMs when a single
//!   stripe cannot occupy the device.

use gr_sim::{Gpu, KernelSpec, Platform, SimDuration};

/// Overlap scheme for [`run_matmul`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    Unoptimized,
    ComputeTransfer,
    ComputeCompute,
}

impl Scheme {
    pub const ALL: [Scheme; 3] = [
        Scheme::Unoptimized,
        Scheme::ComputeTransfer,
        Scheme::ComputeCompute,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Scheme::Unoptimized => "unoptimized",
            Scheme::ComputeTransfer => "compute-transfer",
            Scheme::ComputeCompute => "compute-compute+transfer",
        }
    }
}

/// Simulated time to multiply two `n x n` f32 matrices with `stripe`-row
/// chunks of `A` streamed to the device under `scheme`.
pub fn run_matmul(platform: &Platform, n: u64, stripe: u64, scheme: Scheme) -> SimDuration {
    let mut gpu = Gpu::new(platform);
    let elem = 4u64;
    let b_bytes = n * n * elem;

    let streams: Vec<_> = (0..4).map(|_| gpu.create_stream()).collect();
    // B (and the C output region) resident for the whole run.
    gpu.h2d(streams[0], b_bytes, "matmul.B");
    gpu.synchronize();

    let stripes = n.div_ceil(stripe);
    for i in 0..stripes {
        let rows = stripe.min(n - i * stripe);
        let stripe_bytes = rows * n * elem;
        // One stripe kernel: 2*n flops per output element; reads the stripe
        // + all of B, writes the stripe of C.
        let spec = |frac_rows: u64, label: &'static str| {
            KernelSpec::balanced(
                label,
                frac_rows * n,
                2.0 * n as f64,
                (frac_rows * n + n * n + frac_rows * n) * elem,
                0,
            )
        };
        match scheme {
            Scheme::Unoptimized => {
                let s = streams[0];
                gpu.h2d(s, stripe_bytes, "matmul.stripe");
                gpu.synchronize(); // no overlap at all
                gpu.launch(s, &spec(rows, "matmul.kernel"));
                gpu.synchronize();
                gpu.d2h(s, stripe_bytes, "matmul.C");
                gpu.synchronize();
            }
            Scheme::ComputeTransfer => {
                let s = streams[(i % 2) as usize];
                gpu.h2d(s, stripe_bytes, "matmul.stripe");
                gpu.launch(s, &spec(rows, "matmul.kernel"));
                gpu.d2h(s, stripe_bytes, "matmul.C");
            }
            Scheme::ComputeCompute => {
                // Double-buffered transfer + the stripe kernel split across
                // two concurrent streams.
                let s = streams[(i % 2) as usize];
                let s2 = streams[2 + (i % 2) as usize];
                gpu.h2d(s, stripe_bytes, "matmul.stripe");
                let ev = gpu.record_event(s);
                gpu.wait_event(s2, ev);
                let half = rows / 2;
                gpu.launch(s, &spec(rows - half, "matmul.kernel.a"));
                gpu.launch(s2, &spec(half, "matmul.kernel.b"));
                let done = gpu.record_event(s2);
                gpu.wait_event(s, done);
                gpu.d2h(s, stripe_bytes, "matmul.C");
            }
        }
    }
    gpu.synchronize();
    gpu.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_schemes_are_strictly_faster() {
        let p = Platform::paper_node();
        let n = 2048;
        let unopt = run_matmul(&p, n, 50, Scheme::Unoptimized);
        let ct = run_matmul(&p, n, 50, Scheme::ComputeTransfer);
        let cc = run_matmul(&p, n, 50, Scheme::ComputeCompute);
        assert!(ct < unopt, "compute-transfer {ct} !< unoptimized {unopt}");
        assert!(cc <= ct, "compute-compute {cc} !<= compute-transfer {ct}");
    }

    #[test]
    fn benefit_grows_with_matrix_size() {
        // Figure 5's trend: larger inputs gain more from overlap.
        let p = Platform::paper_node();
        let gain = |n| {
            let u = run_matmul(&p, n, 50, Scheme::Unoptimized).as_secs_f64();
            let c = run_matmul(&p, n, 50, Scheme::ComputeTransfer).as_secs_f64();
            u / c
        };
        assert!(gain(4096) >= gain(512) * 0.9);
    }

    #[test]
    fn ragged_last_stripe_is_handled() {
        let p = Platform::paper_node();
        // n not divisible by stripe.
        let t = run_matmul(&p, 130, 50, Scheme::ComputeTransfer);
        assert!(t > SimDuration::ZERO);
    }
}

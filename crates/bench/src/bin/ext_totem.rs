//! Supplementary experiment for the Section 2.2 motivation: hybrid static
//! partitioning (Totem-style) "is only able to process a fixed sub-graph
//! that can fit into GPU memory ... which results in underutilization of
//! GPU's fullest processing power".
//!
//! Sweeps graph size against a fixed device: Totem's GPU share collapses
//! and its runtime degenerates toward CPU speed, while GraphReduce keeps
//! the whole graph flowing through the device. (The paper never times
//! Totem; this experiment quantifies its Section 2.2 narrative.)

use gr_baselines::Totem;
use gr_bench::{default_source, layout_for, run_gr, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let base_scale = scale_from_args();
    // Fixed device: the one matched to `base_scale` datasets.
    let platform = Platform::paper_node_scaled(base_scale);
    println!(
        "== Extension: Totem-style hybrid vs GraphReduce (device fixed at 1/{base_scale} K20c) =="
    );
    println!(
        "{:>22} {:>10} {:>12} {:>14} {:>14} {:>9}",
        "kron edges", "GPU share", "boundary", "totem", "graphreduce", "GR gain"
    );
    // Grow the graph past the fixed device: 1/4x, 1x, 2x, 4x the matched size.
    for div in [
        base_scale * 4,
        base_scale,
        (base_scale / 2).max(1),
        (base_scale / 4).max(1),
    ] {
        let ds = Dataset::KronLogn21;
        let layout = layout_for(ds, Algo::Bfs, div.max(1));
        let src = default_source(&layout);
        let (totem_run, split) =
            Totem::default().run(&gr_algorithms::Bfs::new(src), &layout, &platform);
        let gr = run_gr(Algo::Bfs, &layout, &platform, Options::optimized())
            .expect("GR streams any size");
        println!(
            "{:>22} {:>9.1}% {:>12} {:>14} {:>14} {:>8.2}x",
            layout.num_edges(),
            100.0 * split.gpu_fraction(),
            split.boundary_edges,
            format!("{}", totem_run.stats.elapsed),
            format!("{}", gr.elapsed),
            totem_run.stats.elapsed.as_secs_f64() / gr.elapsed.as_secs_f64()
        );
    }
    println!(
        "\nshape: while the graph fits, the static split wins (one load, no streaming). As the \
         graph outgrows the fixed device, Totem's GPU share collapses, its boundary traffic and \
         CPU partition balloon, and the GR-to-Totem ratio climbs back toward (and past) parity — \
         Section 2.2's underutilization argument, measured."
    );
}

//! Figure 5 — benefits of compute-transfer and compute-compute overlap for
//! out-of-core matrix multiplication (stripe size 50), across input sizes.
//!
//! Paper shape: both overlap schemes beat the unoptimized scheme, and the
//! benefit grows with the input.

use gr_bench::matmul::{run_matmul, Scheme};
use gr_sim::Platform;

fn main() {
    let p = Platform::paper_node();
    println!("== Figure 5: out-of-core matmul, stripe=50 rows ==");
    println!(
        "{:>6} {:>16} {:>18} {:>26} {:>9}",
        "n", "unoptimized(ms)", "compute-transfer", "compute-compute+transfer", "best gain"
    );
    for n in [512u64, 1024, 2048, 4096, 8192] {
        let u = run_matmul(&p, n, 50, Scheme::Unoptimized);
        let ct = run_matmul(&p, n, 50, Scheme::ComputeTransfer);
        let cc = run_matmul(&p, n, 50, Scheme::ComputeCompute);
        assert!(ct < u && cc <= ct, "overlap must help at n={n}");
        println!(
            "{:>6} {:>16.3} {:>18.3} {:>26.3} {:>8.2}x",
            n,
            u.as_millis_f64(),
            ct.as_millis_f64(),
            cc.as_millis_f64(),
            u.as_secs_f64() / cc.as_secs_f64()
        );
    }
    println!("\nshape check passed: compute-transfer < unoptimized, compute-compute <= compute-transfer.");
}

//! Figure 3 — frontier size changes across iterations under the GAS model,
//! four cases: (a) cage15–PageRank, (b) nlpkkt160–PageRank, (c) cage15–BFS,
//! (d) orkut–CC.
//!
//! Paper shape: PageRank/CC start with every vertex active and decay
//! (sharply for the regular nlpkkt mesh, slowly for cage15); BFS starts at
//! one vertex, swells, peaks, and collapses.

use gr_bench::{frontier_trace, layout_for, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;

fn print_series(tag: &str, sizes: &[u64]) {
    println!("\n-- {tag}: {} iterations --", sizes.len());
    println!("iteration,frontier_size");
    for (i, s) in sizes.iter().enumerate() {
        println!("{i},{s}");
    }
}

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Figure 3: frontier size vs iteration (--scale {scale}) ==");

    let cases = [
        ("(a) cage15 - PageRank", Dataset::Cage15, Algo::Pagerank),
        (
            "(b) nlpkkt160 - PageRank",
            Dataset::Nlpkkt160,
            Algo::Pagerank,
        ),
        ("(c) cage15 - BFS", Dataset::Cage15, Algo::Bfs),
        ("(d) orkut - CC", Dataset::Orkut, Algo::Cc),
    ];
    for (tag, ds, algo) in cases {
        let layout = layout_for(ds, algo, scale);
        let sizes = frontier_trace(algo, &layout, &platform);
        print_series(tag, &sizes);
    }

    // Shape checks mirroring the paper's observations.
    let bfs = frontier_trace(
        Algo::Bfs,
        &layout_for(Dataset::Cage15, Algo::Bfs, scale),
        &platform,
    );
    assert_eq!(bfs[0], 1, "BFS starts with a single active vertex");
    let peak = bfs.iter().copied().max().unwrap();
    assert!(
        peak > bfs[0] && peak > *bfs.last().unwrap(),
        "BFS frontier must rise then fall"
    );

    let nlp = frontier_trace(
        Algo::Pagerank,
        &layout_for(Dataset::Nlpkkt160, Algo::Pagerank, scale),
        &platform,
    );
    assert_eq!(
        nlp[0],
        nlp.iter().copied().max().unwrap(),
        "PR starts at the peak"
    );
    println!("\nshape check passed: BFS rises-then-falls; PageRank/CC decay from full frontier.");
}

//! Wall-clock serving benchmark: batched MS-BFS serving vs serial
//! one-query-at-a-time on the **same** shared [`graphreduce::GraphSession`].
//!
//! ```sh
//! cargo run --release -p gr-bench --bin serve              # scale-16 RMAT
//! cargo run --release -p gr-bench --bin serve -- --tiny    # CI smoke
//! ```
//!
//! Three measurements per invocation:
//!
//! - **serial** — every BFS query runs standalone on the shared session,
//!   one at a time (the pre-serving lifecycle). Per-query latency is the
//!   run's own wall time; saturation throughput is `queries / total`.
//! - **batched** — the same queries drain through [`gr_serve::GraphServe`],
//!   which folds up to `--batch` of them into one MS-BFS sweep. Every
//!   demuxed depth vector is asserted bit-identical to the serial run's.
//! - **open-loop trace** — queries arrive on a fixed synthetic schedule
//!   (rate set above serial saturation, so batching must absorb the
//!   excess); the server drains whatever has arrived, each batch timed
//!   for real. Reported p50/p99 latency includes queueing delay.
//!
//! The run fails (exit 1) when batched throughput is below `--require`
//! times serial throughput. Output: a `BENCH_serve.json` report, one
//! `kind: "serve"` row per mode appended to `results/bench_trajectory.jsonl`
//! (`--compare` gates against either format, serve rows only ever
//! matching serve rows).

use std::time::Instant;

use gr_algorithms::MsBfsLevels;
use gr_bench::trajectory::{self, BenchRow, TrajectoryEntry};
use gr_bench::{effective_host_threads, set_host_threads};
use gr_graph::{gen, GraphLayout};
use gr_serve::{standalone_bfs, GraphServe, QueryOutput, QuerySpec, ServeConfig};
use gr_sim::Platform;
use graphreduce::{GraphSession, Options};

struct Args {
    scale: u32,
    edges: u64,
    queries: usize,
    batch: usize,
    require: f64,
    threads: Option<usize>,
    out: String,
    compare: Option<String>,
    trajectory: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 16,
        edges: 1 << 20,
        queries: 64,
        batch: 64,
        require: 3.0,
        threads: None,
        out: "BENCH_serve.json".to_string(),
        compare: None,
        trajectory: Some(trajectory::TRAJECTORY_PATH.to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => {
                // The quickstart graph: small enough for CI smoke, large
                // enough that a BFS sweep dominates per-query overhead.
                args.scale = 14;
                args.edges = 150_000;
                args.queries = 32;
            }
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage),
            "--edges" => args.edges = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage),
            "--queries" => {
                args.queries = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage)
            }
            "--batch" => args.batch = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage),
            "--require" => {
                args.require = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage)
            }
            "--threads" => {
                args.threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage))
            }
            "--out" => args.out = it.next().unwrap_or_else(usage),
            "--compare" => args.compare = Some(it.next().unwrap_or_else(usage)),
            "--trajectory" => args.trajectory = Some(it.next().unwrap_or_else(usage)),
            "--no-trajectory" => args.trajectory = None,
            _ => usage(),
        }
    }
    args.queries = args.queries.max(1);
    args.batch = args.batch.clamp(1, 64);
    args
}

fn usage<T>() -> T {
    eprintln!(
        "usage: serve [--tiny] [--scale N] [--edges N] [--queries N] [--batch K] \
         [--require X] [--threads N] [--out path.json] \
         [--compare baseline.json|trajectory.jsonl] \
         [--trajectory path.jsonl | --no-trajectory]"
    );
    std::process::exit(2);
}

/// Deterministic source spread across the vertex range (duplicates kept —
/// a server must tolerate them).
fn sources(n: usize, vertices: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(2654435761) ^ 0x9e37) % vertices)
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

fn row(mode: &str, queries: usize, latencies: &mut [f64]) -> BenchRow {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    BenchRow {
        kind: "serve".to_string(),
        algo: "bfs".to_string(),
        mode: mode.to_string(),
        threads: effective_host_threads() as u64,
        iterations: queries as u64,
        median_ms: percentile(latencies, 0.50),
        p95_ms: percentile(latencies, 0.95),
        min_ms: latencies[0],
    }
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn append_trajectory(path: &str, entry: &TrajectoryEntry) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    use std::io::Write;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", entry.to_line()));
    match result {
        Ok(()) => eprintln!("appended trajectory entry ({}) to {path}", entry.commit),
        Err(e) => eprintln!("warning: cannot append trajectory to {path}: {e}"),
    }
}

fn run_compare(baseline_path: &str, rows: &[BenchRow], scale: u64) -> ! {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = trajectory::baseline_rows(&text, scale).unwrap_or_else(|e| {
        eprintln!("error: unusable baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let cmp = trajectory::compare(&baseline, rows).unwrap_or_else(|e| {
        eprintln!("error: cannot compare against {baseline_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("comparison against {baseline_path}:");
    for d in &cmp.deltas {
        eprintln!(
            "  {:>9} {:>8} {:>8} @{} thread(s): {:.3} -> {:.3} ms ({:+.1}%)",
            d.kind, d.algo, d.mode, d.threads, d.baseline_ms, d.current_ms, d.delta_pct
        );
    }
    for (kind, algo, mode, threads) in &cmp.unmatched {
        eprintln!(
            "  {kind:>9} {algo:>8} {mode:>8} @{threads} thread(s): no baseline row (not gated)"
        );
    }
    eprintln!(
        "  median delta {:+.1}% (gate: > +{:.0}% fails)",
        cmp.median_delta_pct,
        trajectory::REGRESSION_PCT
    );
    if cmp.regressed() {
        eprintln!("REGRESSION: median serving latency is more than 10% above the baseline");
        std::process::exit(1);
    }
    eprintln!("ok: within the regression budget");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        set_host_threads(n);
    }
    eprintln!(
        "graph: rmat_g500 scale {} ({} edges requested), {} quer{} (batch width {}), \
         {} host thread(s)",
        args.scale,
        args.edges,
        args.queries,
        if args.queries == 1 { "y" } else { "ies" },
        args.batch,
        effective_host_threads()
    );
    let el = gen::rmat_g500(args.scale, args.edges, 42).symmetrize();
    let layout = GraphLayout::build(&el);
    let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
    // Prime the session's partition-plan cache so neither mode pays the
    // one-time planning cost inside its timed region (both would pay it in
    // whichever mode runs first otherwise).
    let srcs = sources(args.queries, layout.num_vertices() as u32);
    let (first, _) = standalone_bfs(&session, srcs[0]).expect("fault-free serving graph");
    drop(first);

    // --- serial: one standalone BFS per query, back to back. -------------
    let mut serial_lat = Vec::with_capacity(args.queries);
    let mut serial_depths = Vec::with_capacity(args.queries);
    let serial_t0 = Instant::now();
    for &s in &srcs {
        let t0 = Instant::now();
        let (depths, _) = standalone_bfs(&session, s).expect("fault-free serial query");
        serial_lat.push(t0.elapsed().as_secs_f64() * 1e3);
        serial_depths.push(depths);
    }
    let serial_total_ms = serial_t0.elapsed().as_secs_f64() * 1e3;
    let serial_qps = args.queries as f64 / (serial_total_ms / 1e3);

    // --- batched: the same queries through one GraphServe drain. ----------
    let cfg = ServeConfig {
        max_pending: args.queries.max(1),
        max_batch: args.batch,
    };
    let mut serve = GraphServe::with_config(&session, cfg);
    for &s in &srcs {
        serve
            .submit(QuerySpec::Bfs { source: s }, None)
            .expect("pending queue sized to the query count");
    }
    let batched_t0 = Instant::now();
    let outcomes = serve.drain().expect("fault-free batched drain");
    let batched_total_ms = batched_t0.elapsed().as_secs_f64() * 1e3;
    let batched_qps = args.queries as f64 / (batched_total_ms / 1e3);
    let batches = serve.ticks();

    // Bit-identity: every demuxed depth vector equals its serial answer.
    assert_eq!(outcomes.len(), args.queries);
    for (o, want) in outcomes.iter().zip(&serial_depths) {
        assert_eq!(
            o.output,
            QueryOutput::Depths(want.clone()),
            "batched query {} diverged from its standalone run",
            o.id
        );
    }
    eprintln!(
        "bit-identity: {} batched quer{} matched standalone depth vectors exactly",
        args.queries,
        if args.queries == 1 { "y" } else { "ies" }
    );

    // --- open-loop arrival trace. -----------------------------------------
    // Arrivals at twice the serial saturation rate: a serial server falls
    // behind without bound; batching must absorb the excess. Latency is
    // completion minus arrival, queueing delay included, with each drained
    // batch timed for real on the session.
    let gap_ms = (serial_total_ms / args.queries as f64) / 2.0;
    let arrivals: Vec<f64> = (0..args.queries).map(|i| i as f64 * gap_ms).collect();
    let mut open_lat = Vec::with_capacity(args.queries);
    let mut clock_ms = 0.0f64;
    let mut next = 0usize;
    while next < arrivals.len() {
        if arrivals[next] > clock_ms {
            clock_ms = arrivals[next]; // server idles until the next arrival
        }
        let mut batch_sources = Vec::new();
        let first_in_batch = next;
        while next < arrivals.len()
            && arrivals[next] <= clock_ms
            && batch_sources.len() < args.batch
        {
            batch_sources.push(srcs[next]);
            next += 1;
        }
        let prog = MsBfsLevels::new(batch_sources.clone());
        let t0 = Instant::now();
        let res = session.query(&prog).run().expect("fault-free trace batch");
        clock_ms += t0.elapsed().as_secs_f64() * 1e3;
        for (lane, q) in (first_in_batch..next).enumerate() {
            // Spot-check the trace path demuxes correctly too.
            debug_assert_eq!(
                MsBfsLevels::lane_depths(&res.vertex_values, lane),
                serial_depths[q]
            );
            open_lat.push(clock_ms - arrivals[q]);
        }
        let _ = &res;
    }
    let mut sorted = open_lat.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));

    let speedup = batched_qps / serial_qps;
    println!(
        "serial:  {:.3} ms total, {:.1} queries/sec saturation",
        serial_total_ms, serial_qps
    );
    println!(
        "batched: {:.3} ms total over {batches} batch(es), {:.1} queries/sec saturation \
         ({speedup:.1}x serial)",
        batched_total_ms, batched_qps
    );
    println!(
        "open-loop trace: arrivals every {gap_ms:.3} ms (2x serial saturation), \
         p50 {p50:.3} ms, p99 {p99:.3} ms"
    );

    let rows = vec![
        row("serial", args.queries, &mut serial_lat),
        row("batched", args.queries, &mut open_lat),
    ];

    let commit = git_commit();
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"gr-serve-v1\",\n");
    json.push_str(&format!("  \"commit\": \"{commit}\",\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"generator\": \"rmat_g500\", \"scale\": {}, \"vertices\": {}, \
         \"edges\": {}, \"symmetrized\": true}},\n",
        args.scale,
        layout.num_vertices(),
        layout.num_edges()
    ));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        effective_host_threads()
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"queries\": {}, \"batch_width\": {}, \"batches\": {batches}, \
         \"serial_total_ms\": {serial_total_ms:.4}, \"serial_qps\": {serial_qps:.2}, \
         \"batched_total_ms\": {batched_total_ms:.4}, \"batched_qps\": {batched_qps:.2}, \
         \"speedup\": {speedup:.2}}},\n",
        args.queries, args.batch
    ));
    json.push_str(&format!(
        "  \"open_loop\": {{\"gap_ms\": {gap_ms:.4}, \"p50_ms\": {p50:.4}, \
         \"p99_ms\": {p99:.4}}},\n"
    ));
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"algo\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
                 \"iterations\": {}, \"median_ms\": {:.4}, \"p95_ms\": {:.4}, \"min_ms\": {:.4}}}",
                r.kind, r.algo, r.mode, r.threads, r.iterations, r.median_ms, r.p95_ms, r.min_ms
            )
        })
        .collect();
    json.push_str(&format!(
        "  \"runs\": [\n{}\n  ]\n}}\n",
        row_json.join(",\n")
    ));
    match std::fs::write(&args.out, &json) {
        Ok(()) => eprintln!("wrote {}", args.out),
        Err(e) => eprintln!("warning: cannot write {}: {e}", args.out),
    }

    // Gate before appending: `baseline_rows` keeps the newest entry per
    // key, so appending first would make a trajectory-file compare judge
    // the run against itself. Compare runs exit inside `run_compare` and
    // leave the baseline file untouched.
    if let Some(baseline) = &args.compare {
        run_compare(baseline, &rows, args.scale as u64);
    }

    if let Some(path) = &args.trajectory {
        append_trajectory(
            path,
            &TrajectoryEntry {
                commit,
                schema: "gr-serve-v1".to_string(),
                scale: args.scale as u64,
                rows: rows.clone(),
            },
        );
    }

    if speedup < args.require {
        eprintln!(
            "FAIL: batched serving reached only {speedup:.2}x serial throughput \
             (required {:.2}x)",
            args.require
        );
        std::process::exit(1);
    }
    eprintln!(
        "ok: batched serving at {speedup:.2}x serial throughput (required {:.2}x)",
        args.require
    );
}

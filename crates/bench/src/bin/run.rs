//! General-purpose CLI: run any evaluated algorithm on any dataset
//! stand-in (or a graph file) under any engine, with a full stats report.
//!
//! ```sh
//! cargo run --release -p gr-bench --bin run -- \
//!     --algo bfs --dataset uk-2002 --scale 128 --engine gr
//! cargo run --release -p gr-bench --bin run -- \
//!     --algo cc --dataset orkut --engine xstream --unoptimized
//! cargo run --release -p gr-bench --bin run -- \
//!     --algo sssp --file mygraph.txt --engine gr --gpus 4
//! ```

use gr_bench::{
    default_source, resume_gr_wall, run_cusha, run_gr_wall, run_graphchi, run_mapgraph,
    run_session_all, run_xstream, set_host_threads, Algo, RunArtifacts,
};
use gr_graph::{gen, CompressionCodec, Dataset, EdgeList, GraphLayout, GraphStats};
use gr_sim::Platform;
use graphreduce::{
    CheckpointPolicy, EngineError, FaultPlan, MultiGraphReduce, Options, WallProfiler,
};

/// Exit code for a run killed by an armed `kill:<iteration>` fault plan:
/// distinguishable from real errors so restart harnesses (and the CI
/// chaos job) can assert the kill happened, then `--resume`.
const EXIT_KILLED: i32 = 9;

struct Args {
    algo: Algo,
    /// `--algo all`: run every algorithm against one shared session.
    algo_all: bool,
    dataset: Option<Dataset>,
    file: Option<String>,
    scale: u64,
    engine: String,
    optimized: bool,
    gpus: u32,
    quickstart: bool,
    faults: Option<FaultPlan>,
    mem_cap: Option<String>,
    report: Option<String>,
    trace: Option<String>,
    threads: Option<usize>,
    wall: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: Option<u32>,
    checkpoint_delta: bool,
    checkpoint_full_every: Option<u32>,
    resume: bool,
    spill_dir: Option<String>,
    host_mem_cap: Option<String>,
    compress: Option<CompressionCodec>,
}

/// Resolve a `--mem-cap` spec against the device's nominal capacity:
/// either absolute bytes (`2000000`) or a percentage (`25%`).
fn parse_mem_cap(spec: &str, capacity: u64) -> u64 {
    let bytes = if let Some(pct) = spec.strip_suffix('%') {
        pct.parse::<f64>()
            .ok()
            .filter(|p| *p > 0.0 && *p <= 100.0)
            .map(|p| (capacity as f64 * p / 100.0) as u64)
    } else {
        spec.parse::<u64>().ok().filter(|b| *b > 0)
    };
    bytes.unwrap_or_else(|| {
        eprintln!("error: bad --mem-cap {spec:?} (expected bytes or a percentage like 25%)");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: run --algo <bfs|sssp|pagerank|cc|all> (--dataset <name> | --file <path>) \
         [--scale N] [--engine gr|graphchi|xstream|cusha|mapgraph|totem] [--unoptimized] [--gpus N] \
         [--faults <profile[:seed]|seed>] [--mem-cap <bytes|pct%>] [--report <path.json>] \
         [--trace <path.json>] [--threads N] [--wall] [--checkpoint-dir <dir>] \
         [--checkpoint-every N] [--checkpoint-delta] [--checkpoint-full-every N] [--resume] \
         [--spill-dir <dir>] [--host-mem-cap <bytes|pct%>] [--compress <varint|zeta|zeta1..4>]"
    );
    eprintln!(
        "  --algo all builds ONE graph session (layout + platform + partitioning loaded once) \
         and runs every algorithm as a query against it, asserting each report matches a \
         dedicated per-algorithm run byte-for-byte (gr engine, single GPU; see docs/SERVING.md)"
    );
    eprintln!(
        "  --compress streams shard topology gap+entropy-coded over PCIe and through the spill \
         store (gr engine, single GPU); results are bit-identical, the report gains a \
         `compression` object (see docs/COMPRESSION.md)"
    );
    eprintln!(
        "  --checkpoint-dir arms durable snapshots (gr engine, single or multi GPU); \
         --checkpoint-every sets the interval in iterations (default 1); --checkpoint-delta \
         writes dirty-state deltas between fulls and --checkpoint-full-every sets the full \
         cadence in durable boundaries (default 4); --resume restarts from the newest intact \
         snapshot in --checkpoint-dir (a multi-GPU run may resume on fewer GPUs); --spill-dir \
         arms the out-of-host-core shard store (single GPU) and --host-mem-cap caps host RAM \
         to force it (see docs/DURABILITY.md). A run killed by --faults kill:<iteration> exits \
         with code 9"
    );
    eprintln!(
        "  --threads pins the host worker-thread count (RAYON_NUM_THREADS); --wall arms the \
         wall-clock profiler — the report gains a `host wall:` line and real per-phase host \
         times (gr engine only; see docs/PERFORMANCE.md)"
    );
    eprintln!(
        "  --mem-cap caps usable device memory (gr engine only); the memory governor then \
         degrades gracefully — splitting shards, chunking transfers, or falling back to the \
         host — with every decision logged (see docs/MEMORY.md)"
    );
    eprintln!(
        "  --report writes the versioned run-report JSON; --trace a Chrome/Perfetto trace \
         (both gr-engine only)"
    );
    eprintln!(
        "  --faults arms deterministic fault injection (gr engine only); profiles: none, \
         transient-copy, kernel-fault, oom-pressure, ecc-stall, degraded-pcie, device-loss, \
         chaos[:seed] — or a bare integer seed (see docs/FAULTS.md)"
    );
    eprintln!("datasets:");
    for ds in Dataset::IN_MEMORY
        .iter()
        .chain(Dataset::OUT_OF_MEMORY.iter())
    {
        eprintln!("  {}", ds.name());
    }
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        algo: Algo::Bfs,
        algo_all: false,
        dataset: None,
        file: None,
        scale: 64,
        engine: "gr".into(),
        optimized: true,
        gpus: 1,
        quickstart: false,
        faults: None,
        mem_cap: None,
        report: None,
        trace: None,
        threads: None,
        wall: false,
        checkpoint_dir: None,
        checkpoint_every: None,
        checkpoint_delta: false,
        checkpoint_full_every: None,
        resume: false,
        spill_dir: None,
        host_mem_cap: None,
        compress: None,
    };
    let mut it = std::env::args().skip(1);
    let mut have_algo = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--algo" => {
                have_algo = true;
                args.algo = match it.next().as_deref() {
                    Some("bfs") => Algo::Bfs,
                    Some("sssp") => Algo::Sssp,
                    Some("pagerank") | Some("pr") => Algo::Pagerank,
                    Some("cc") => Algo::Cc,
                    Some("all") => {
                        args.algo_all = true;
                        Algo::Bfs
                    }
                    _ => usage(),
                };
            }
            "--dataset" => {
                let name = it.next().unwrap_or_else(|| usage());
                if name.eq_ignore_ascii_case("quickstart") {
                    args.quickstart = true;
                    continue;
                }
                args.dataset = Dataset::IN_MEMORY
                    .iter()
                    .chain(Dataset::OUT_OF_MEMORY.iter())
                    .find(|d| d.name().eq_ignore_ascii_case(&name))
                    .copied();
                if args.dataset.is_none() {
                    eprintln!("unknown dataset {name}");
                    usage();
                }
            }
            "--file" => args.file = it.next().or_else(|| usage()),
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--engine" => args.engine = it.next().unwrap_or_else(|| usage()),
            "--unoptimized" => args.optimized = false,
            "--gpus" => {
                args.gpus = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--faults" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.faults = Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }));
            }
            "--mem-cap" => args.mem_cap = it.next().or_else(|| usage()),
            "--report" => args.report = it.next().or_else(|| usage()),
            "--trace" => args.trace = it.next().or_else(|| usage()),
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--wall" => args.wall = true,
            "--checkpoint-dir" => args.checkpoint_dir = it.next().or_else(|| usage()),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--checkpoint-delta" => args.checkpoint_delta = true,
            "--checkpoint-full-every" => {
                args.checkpoint_full_every = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--resume" => args.resume = true,
            "--spill-dir" => args.spill_dir = it.next().or_else(|| usage()),
            "--host-mem-cap" => args.host_mem_cap = it.next().or_else(|| usage()),
            "--compress" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.compress = Some(CompressionCodec::parse(&spec).unwrap_or_else(|| {
                    eprintln!(
                        "error: bad --compress {spec:?} (expected varint, zeta, or zeta1..zeta4)"
                    );
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if !have_algo || (args.dataset.is_none() && args.file.is_none() && !args.quickstart) {
        usage();
    }
    args
}

/// Everything beyond the engine itself that shapes a multi-GPU run:
/// fault plan, per-device memory caps, durable-checkpoint policy, and
/// the resume directory. Built once from the parsed args, shared by
/// every algorithm arm.
struct MultiCfg<'a> {
    faults: Option<&'a FaultPlan>,
    gpus: u32,
    mem_cap: Option<u64>,
    checkpoint_policy: Option<&'a CheckpointPolicy>,
    resume_dir: Option<&'a str>,
}

/// Finish configuring a multi-GPU run (observer, optional fault plan on
/// device 0, optional durable-checkpoint policy), execute it — resuming
/// from disk when asked — and exit cleanly on planning/recovery failure
/// (or with code 9 when an armed `kill:<iteration>` fault fires).
fn run_multi<P: graphreduce::GasProgram>(
    m: MultiGraphReduce<P>,
    obs: gr_observe::Observer,
    wall: WallProfiler,
    cfg: &MultiCfg<'_>,
) -> graphreduce::MultiRunStats {
    let mut m = m.with_observer(obs).with_wall_profiler(wall);
    if let Some(plan) = cfg.faults {
        m = m.with_fault_plan(0, plan.clone());
    }
    if let Some(cap) = cfg.mem_cap {
        for d in 0..cfg.gpus as usize {
            m = m.with_mem_cap(d, cap);
        }
    }
    if let Some(policy) = cfg.checkpoint_policy {
        m = m.with_checkpoint_policy(policy.clone());
    }
    let result = match cfg.resume_dir {
        Some(dir) => m.resume(dir),
        None => m.run(),
    };
    result
        .unwrap_or_else(|e| {
            if let EngineError::Killed { iteration } = e {
                eprintln!("killed at iteration boundary {iteration} (restart with --resume)");
                std::process::exit(EXIT_KILLED);
            }
            eprintln!("error: {e}");
            std::process::exit(1);
        })
        .stats
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        set_host_threads(n);
    }
    let el: EdgeList = if let Some(path) = &args.file {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        EdgeList::read_text(f).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    } else if args.quickstart {
        // The graph from examples/quickstart.rs: an undirected RMAT
        // social-network stand-in (pair with --scale 4096 for the same
        // platform the example uses).
        gen::rmat_g500(14, 150_000, 42).symmetrize()
    } else {
        let ds = args.dataset.unwrap_or_else(|| {
            eprintln!("error: no --dataset or --file given");
            usage();
        });
        if args.algo_all {
            // One layout every algorithm can run on: weighted (SSSP) and
            // symmetrized (CC), loaded once for the whole session sweep.
            ds.generate_weighted(args.scale).symmetrize()
        } else {
            match args.algo {
                Algo::Sssp => ds.generate_weighted(args.scale),
                Algo::Cc => ds.generate(args.scale).symmetrize(),
                _ => ds.generate(args.scale),
            }
        }
    };
    let layout = GraphLayout::build(&el);
    println!("{}", GraphStats::compute(&layout));
    println!();

    let mut platform = Platform::paper_node_scaled(args.scale);
    if let Some(spec) = &args.host_mem_cap {
        if args.engine != "gr" {
            eprintln!("--host-mem-cap only applies to the gr engine; ignoring");
        }
        platform.host.mem_capacity = parse_mem_cap(spec, platform.host.mem_capacity);
    }
    let mut opts = if args.optimized {
        Options::optimized()
    } else {
        Options::unoptimized()
    };
    if let Some(plan) = &args.faults {
        if args.engine != "gr" {
            eprintln!("--faults only applies to the gr engine; ignoring");
        }
        opts = opts.with_fault_plan(plan.clone());
    }
    let mem_cap = args.mem_cap.as_ref().map(|spec| {
        if args.engine != "gr" {
            eprintln!("--mem-cap only applies to the gr engine; ignoring");
        }
        parse_mem_cap(spec, platform.device.mem_capacity)
    });
    if let Some(cap) = mem_cap {
        opts = opts.with_mem_cap(cap);
    }
    // Durability flags: validate combinations before any work happens.
    if args.checkpoint_every.is_some() && args.checkpoint_dir.is_none() {
        eprintln!("error: --checkpoint-every needs --checkpoint-dir");
        std::process::exit(2);
    }
    if args.checkpoint_delta && args.checkpoint_dir.is_none() {
        eprintln!("error: --checkpoint-delta needs --checkpoint-dir");
        std::process::exit(2);
    }
    if args.checkpoint_full_every.is_some() && !args.checkpoint_delta {
        eprintln!("error: --checkpoint-full-every needs --checkpoint-delta");
        std::process::exit(2);
    }
    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("error: --resume needs --checkpoint-dir (where would I resume from?)");
        std::process::exit(2);
    }
    if args.checkpoint_dir.is_some() && args.engine != "gr" {
        eprintln!(
            "error: --checkpoint-dir/--checkpoint-every/--checkpoint-delta/--resume apply to \
             the gr engine only"
        );
        std::process::exit(2);
    }
    if (args.spill_dir.is_some() || args.compress.is_some())
        && (args.engine != "gr" || args.gpus > 1)
    {
        eprintln!("error: --spill-dir/--compress apply to the single-GPU gr engine only");
        std::process::exit(2);
    }
    let checkpoint_policy = args.checkpoint_dir.as_ref().map(|dir| {
        let every = args.checkpoint_every.unwrap_or(1);
        if args.checkpoint_delta {
            CheckpointPolicy::durable_delta(
                dir.as_str(),
                every,
                args.checkpoint_full_every.unwrap_or(4),
            )
        } else {
            CheckpointPolicy::durable(dir.as_str(), every)
        }
    });
    if let Some(policy) = &checkpoint_policy {
        opts = opts.with_checkpoint_policy(policy.clone());
    }
    if let Some(dir) = &args.spill_dir {
        opts = opts.with_spill_dir(dir.as_str());
    }
    if let Some(codec) = args.compress {
        opts = opts.with_shard_compression(codec);
    }
    if args.algo_all {
        if args.engine != "gr" || args.gpus > 1 {
            eprintln!("error: --algo all runs the single-GPU gr engine only");
            std::process::exit(2);
        }
        if args.resume {
            eprintln!("error: --algo all cannot --resume (snapshots are per-algorithm)");
            std::process::exit(2);
        }
        if args.report.is_some() || args.trace.is_some() || args.wall {
            eprintln!("--report/--trace/--wall instrument single-algorithm runs; ignoring");
        }
        // One session for the whole sweep: the layout, platform, and
        // partitioning above are loaded exactly once; each algorithm is a
        // query. `run_session_all` asserts every report is byte-identical
        // to a dedicated per-algorithm construction.
        let sweep = run_session_all(&layout, &platform, &opts).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        for (algo, stats) in sweep {
            println!("######## {} (shared session) ########", algo.name());
            println!("{stats}");
            println!();
        }
        println!(
            "session sweep: {} algorithms on one graph load; every report matched a \
             dedicated run byte-for-byte",
            Algo::ALL.len()
        );
        return;
    }
    let src = default_source(&layout);
    let artifacts = RunArtifacts::from_paths(args.report.clone(), args.trace.clone());
    if artifacts.enabled() && args.engine != "gr" {
        eprintln!("--report/--trace only instrument the gr engine; ignoring");
    }

    match args.engine.as_str() {
        "gr" if args.gpus > 1 => {
            let obs = artifacts.observer();
            let wall = if args.wall {
                WallProfiler::armed()
            } else {
                WallProfiler::disarmed()
            };
            let cfg = MultiCfg {
                faults: args.faults.as_ref(),
                gpus: args.gpus,
                mem_cap,
                checkpoint_policy: checkpoint_policy.as_ref(),
                resume_dir: if args.resume {
                    args.checkpoint_dir.as_deref()
                } else {
                    None
                },
            };
            let stats = match args.algo {
                Algo::Bfs => run_multi(
                    MultiGraphReduce::new(
                        gr_algorithms::Bfs::new(src),
                        &layout,
                        platform,
                        args.gpus,
                    ),
                    obs,
                    wall.clone(),
                    &cfg,
                ),
                Algo::Cc => run_multi(
                    MultiGraphReduce::new(gr_algorithms::Cc, &layout, platform, args.gpus),
                    obs,
                    wall.clone(),
                    &cfg,
                ),
                Algo::Sssp => run_multi(
                    MultiGraphReduce::new(
                        gr_algorithms::Sssp::new(src),
                        &layout,
                        platform,
                        args.gpus,
                    ),
                    obs,
                    wall.clone(),
                    &cfg,
                ),
                Algo::Pagerank => run_multi(
                    MultiGraphReduce::new(
                        gr_algorithms::PageRank::default(),
                        &layout,
                        platform,
                        args.gpus,
                    ),
                    obs,
                    wall.clone(),
                    &cfg,
                ),
            };
            // `MultiRunStats` renders the full report: headline, then
            // conditional governor / durability / storage-fault lines —
            // byte-identical to the old inline print for plain runs.
            println!("{stats}");
            // The multi-GPU engine has no single-device RunStats (so no
            // `wall` stats field either) — print the host-wall rollup
            // directly from the profiler.
            let profile = wall.is_armed().then(|| wall.profile());
            if let Some(p) = &profile {
                println!("  host wall: {}", p.summary());
            }
            // The trace still captures every lane of every device, plus
            // the wall track when profiled.
            for path in artifacts
                .write_with_wall(None, profile.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("error: failed to write --report/--trace output: {e}");
                    std::process::exit(1);
                })
            {
                println!("wrote {path}");
            }
        }
        "gr" => {
            let wall = if args.wall {
                WallProfiler::armed()
            } else {
                WallProfiler::disarmed()
            };
            let result = if args.resume {
                let dir = args.checkpoint_dir.as_deref().expect("validated above");
                resume_gr_wall(
                    args.algo,
                    &layout,
                    &platform,
                    opts,
                    std::path::Path::new(dir),
                    artifacts.observer(),
                    wall.clone(),
                )
            } else {
                run_gr_wall(
                    args.algo,
                    &layout,
                    &platform,
                    opts,
                    artifacts.observer(),
                    wall.clone(),
                )
            };
            let stats = result.unwrap_or_else(|e| {
                if let EngineError::Killed { iteration } = e {
                    eprintln!("killed at iteration boundary {iteration} (restart with --resume)");
                    std::process::exit(EXIT_KILLED);
                }
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            println!("{stats}");
            let profile = wall.is_armed().then(|| wall.profile());
            for path in artifacts
                .write_with_wall(Some(&stats), profile.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("error: failed to write --report/--trace output: {e}");
                    std::process::exit(1);
                })
            {
                println!("wrote {path}");
            }
        }
        "graphchi" => {
            let s = run_graphchi(args.algo, &layout, &platform, args.scale);
            println!("graphchi: {} iterations in {}", s.iterations, s.elapsed);
        }
        "xstream" => {
            let s = run_xstream(args.algo, &layout, &platform);
            println!("x-stream: {} iterations in {}", s.iterations, s.elapsed);
        }
        "cusha" => match run_cusha(args.algo, &layout, &platform) {
            Ok(s) => println!("cusha: {} iterations in {}", s.iterations, s.elapsed),
            Err(e) => println!("cusha: {e}"),
        },
        "mapgraph" => match run_mapgraph(args.algo, &layout, &platform) {
            Ok(s) => println!("mapgraph: {} iterations in {}", s.iterations, s.elapsed),
            Err(e) => println!("mapgraph: {e}"),
        },
        "totem" => {
            use gr_baselines::Totem;
            let t = Totem::default();
            let (stats, split) = match args.algo {
                Algo::Bfs => {
                    let (r, sp) = t.run(&gr_algorithms::Bfs::new(src), &layout, &platform);
                    (r.stats, sp)
                }
                Algo::Cc => {
                    let (r, sp) = t.run(&gr_algorithms::Cc, &layout, &platform);
                    (r.stats, sp)
                }
                Algo::Sssp => {
                    let (r, sp) = t.run(&gr_algorithms::Sssp::new(src), &layout, &platform);
                    (r.stats, sp)
                }
                Algo::Pagerank => {
                    let (r, sp) = t.run(&gr_algorithms::PageRank::default(), &layout, &platform);
                    (r.stats, sp)
                }
            };
            println!(
                "totem: {} iterations in {} (GPU holds {:.1}% of edges, {} boundary edges)",
                stats.iterations,
                stats.elapsed,
                100.0 * split.gpu_fraction(),
                split.boundary_edges
            );
        }
        other => {
            eprintln!("unknown engine {other}");
            usage();
        }
    }
}

//! Run every table/figure harness in paper order. Equivalent to executing
//! each `table*`/`fig*` binary; used to regenerate EXPERIMENTS.md data in
//! one go:
//!
//! ```sh
//! cargo run --release -p gr-bench --bin all -- --scale 64 | tee results.txt
//! ```

use std::process::Command;

fn main() {
    // Forward --scale only when the user gave one: the in-memory
    // experiments (table2/table4) default to a finer scale on their own.
    let explicit_scale = std::env::args()
        .any(|a| a == "--scale")
        .then(|| gr_bench::scale_from_args().to_string());
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in [
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "table3",
        "table4",
        "fig15",
        "fig16",
        "fig17",
        "ext_multigpu",
        "ext_ssd",
        "ext_totem",
    ] {
        println!("\n######## {bin} ########");
        let mut cmd = Command::new(dir.join(bin));
        if let Some(scale) = &explicit_scale {
            cmd.args(["--scale", scale]);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    // Session sweep: every algorithm against ONE shared GraphSession
    // (layout/platform loaded once instead of once per algorithm), with
    // the `run` binary asserting each report stays byte-identical to a
    // dedicated per-algorithm construction.
    println!("\n######## session sweep (run --algo all) ########");
    let mut cmd = Command::new(dir.join("run"));
    cmd.args(["--algo", "all", "--dataset", "quickstart"]);
    let status = cmd
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn run: {e}"));
    assert!(status.success(), "session sweep failed");
    println!("\nall experiments completed.");
}

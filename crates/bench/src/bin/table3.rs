//! Table 3 + Figures 13/14 — out-of-memory comparison: GraphReduce vs
//! GraphChi vs X-Stream on the five large graphs × four algorithms.
//!
//! Paper shape: GR wins almost every cell (avg 13.4x over GraphChi, 5x
//! over X-Stream; up to 79x / 21x on kron-logn21 BFS); the one exception
//! is nlpkkt160-CC where X-Stream edges GR out (massive data movement,
//! little parallel payoff).

use gr_bench::{layout_for, run_gr, run_graphchi, run_xstream, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::{Platform, SimDuration};
use graphreduce::Options;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Table 3: out-of-memory frameworks (virtual seconds, --scale {scale}) ==");
    println!(
        "{:<18} {:<10} {:>12} {:>12} {:>12}",
        "graph", "engine", "BFS", "SSSP", "PageRank"
    );
    // (collect all four algorithms; print CC in the same row group)
    let mut speedups_chi: Vec<f64> = Vec::new();
    let mut speedups_xs: Vec<f64> = Vec::new();
    println!(
        "{:<18} {:<10} {:>12} {:>12} {:>12} {:>12}",
        "", "", "BFS", "SSSP", "PageRank", "CC"
    );
    for ds in Dataset::OUT_OF_MEMORY {
        let mut rows: [Vec<SimDuration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for algo in Algo::ALL {
            let layout = layout_for(ds, algo, scale);
            let gr = run_gr(algo, &layout, &platform, Options::optimized())
                .expect("out-of-memory plan fits after sharding");
            let chi = run_graphchi(algo, &layout, &platform, scale);
            let xs = run_xstream(algo, &layout, &platform);
            rows[0].push(chi.elapsed);
            rows[1].push(xs.elapsed);
            rows[2].push(gr.elapsed);
            speedups_chi.push(chi.elapsed.as_secs_f64() / gr.elapsed.as_secs_f64());
            speedups_xs.push(xs.elapsed.as_secs_f64() / gr.elapsed.as_secs_f64());
        }
        for (engine, row) in ["GraphChi", "X-Stream", "GR"].iter().zip(&rows) {
            print!("{:<18} {:<10}", ds.name(), engine);
            for t in row {
                print!(" {:>12.4}", t.as_secs_f64());
            }
            println!();
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!("\n== Figures 13/14: GR speedups per (graph, algorithm) ==");
    println!(
        "vs GraphChi: avg {:.1}x, max {:.1}x   (paper: avg 13.4x, up to 79x)",
        avg(&speedups_chi),
        max(&speedups_chi)
    );
    println!(
        "vs X-Stream: avg {:.1}x, max {:.1}x   (paper: avg 5x, up to 21x)",
        avg(&speedups_xs),
        max(&speedups_xs)
    );
    println!("\nper-cell speedup series (Figure 13 = vs GraphChi, Figure 14 = vs X-Stream):");
    println!("graph,algorithm,vs_graphchi,vs_xstream");
    let mut i = 0;
    for ds in Dataset::OUT_OF_MEMORY {
        for algo in Algo::ALL {
            println!(
                "{},{},{:.2},{:.2}",
                ds.name(),
                algo.name(),
                speedups_chi[i],
                speedups_xs[i]
            );
            i += 1;
        }
    }
    let wins = speedups_xs.iter().filter(|&&s| s > 1.0).count();
    println!(
        "\nshape check: GR beats GraphChi in {}/{} cells and X-Stream in {wins}/{} cells.",
        speedups_chi.iter().filter(|&&s| s > 1.0).count(),
        speedups_chi.len(),
        speedups_xs.len()
    );
}

//! Table 1 — datasets used in the paper, their sizes, and the in-memory /
//! out-of-memory split against the K20c's 4.8 GB.
//!
//! Prints the paper-scale inventory (from the footprint model fit to the
//! published table) and the synthetic stand-ins actually generated at
//! `--scale`, with the scaled device capacity alongside.

use gr_bench::scale_from_args;
use gr_graph::{in_memory_bytes, Dataset};
use gr_sim::DeviceConfig;

fn main() {
    let scale = scale_from_args();
    let full = DeviceConfig::k20c();
    let scaled = DeviceConfig::k20c_scaled(scale);

    println!(
        "== Table 1: datasets (paper scale, modeled footprint vs K20c {:.1} GB) ==",
        full.mem_capacity as f64 / 1e9
    );
    println!(
        "{:<20} {:>12} {:>13} {:>12} {:>15}",
        "graph", "vertices", "edges", "size", "classification"
    );
    let all = Dataset::IN_MEMORY
        .iter()
        .chain(Dataset::OUT_OF_MEMORY.iter());
    for &ds in all {
        let bytes = in_memory_bytes(ds.paper_vertices(), ds.paper_edges());
        println!(
            "{:<20} {:>12} {:>13} {:>11.2}GB {:>15}",
            ds.name(),
            ds.paper_vertices(),
            ds.paper_edges(),
            bytes as f64 / 1e9,
            if bytes > full.mem_capacity {
                "out-of-memory"
            } else {
                "in-memory"
            }
        );
    }

    println!();
    println!(
        "== Stand-ins generated at --scale {scale} (device capacity {:.1} MB) ==",
        scaled.mem_capacity as f64 / 1e6
    );
    println!(
        "{:<20} {:>12} {:>13} {:>12} {:>15}",
        "graph", "vertices", "edges", "size", "classification"
    );
    for &ds in Dataset::IN_MEMORY
        .iter()
        .chain(Dataset::OUT_OF_MEMORY.iter())
    {
        let g = ds.generate(scale);
        let bytes = in_memory_bytes(g.num_vertices as u64, g.num_edges() as u64);
        let class = if bytes > scaled.mem_capacity {
            "out-of-memory"
        } else {
            "in-memory"
        };
        println!(
            "{:<20} {:>12} {:>13} {:>11.2}MB {:>15}",
            ds.name(),
            g.num_vertices,
            g.num_edges(),
            bytes as f64 / 1e6,
            class
        );
        // The split must match the paper's table.
        assert_eq!(
            class == "out-of-memory",
            ds.paper_out_of_memory(),
            "{}: scale {scale} broke the in/out-of-memory split",
            ds.name()
        );
    }
    println!("\nsplit preserved: every stand-in lands on the same side of device memory as in the paper.");
}

//! Figure 17 — percentage of iterations whose frontier is below 50% of the
//! lifetime maximum, per large graph × {BFS, PageRank, CC}.
//!
//! Paper shape: BFS shows the highest percentages everywhere (its frontier
//! is tiny for most of the run); inputs with high low-activity percentages
//! (nlpkkt160, uk-2002) benefit most from dynamic frontier management —
//! the cross-reference to Figure 15's biggest improvements.

use gr_bench::{layout_for, run_gr, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Figure 17: % iterations below 50% of peak frontier (--scale {scale}) ==");
    println!(
        "{:<18} {:>8} {:>10} {:>8}",
        "graph", "BFS", "PageRank", "CC"
    );
    let mut sums = [0.0f64; 3];
    for ds in Dataset::OUT_OF_MEMORY {
        print!("{:<18}", ds.name());
        for (k, algo) in [Algo::Bfs, Algo::Pagerank, Algo::Cc]
            .into_iter()
            .enumerate()
        {
            let layout = layout_for(ds, algo, scale);
            let stats = run_gr(algo, &layout, &platform, Options::optimized()).unwrap();
            let pct = stats.pct_iterations_below_half_max();
            print!(" {:>8.1}", pct);
            sums[k] += pct / 5.0;
        }
        println!();
    }
    println!(
        "\nshape check: average low-activity share — BFS {:.0}%, PageRank {:.0}%, CC {:.0}% \
         (paper: BFS has the maximum share of low-activity iterations across datasets).",
        sums[0], sums[1], sums[2]
    );
    assert!(
        sums[0] > sums[1] && sums[0] > sums[2],
        "BFS must show the most low-activity iterations on average"
    );
}

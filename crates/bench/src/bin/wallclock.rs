//! Wall-clock benchmark harness for the *host* execution engine.
//!
//! Everything else in this crate reports **simulated** device time; this
//! bin times the real host-side kernels (`graphreduce::phases`) that
//! compute the exact results, so host-engine optimizations — sparse/dense
//! kernel selection, parallel shards — are measurable and regress-able.
//!
//! ```sh
//! cargo run --release -p gr-bench --bin wallclock            # full run
//! cargo run --release -p gr-bench --bin wallclock -- --tiny --trials 1
//! cargo run --release -p gr-bench --bin wallclock -- --out BENCH_wallclock.json
//! ```
//!
//! Each algorithm runs to convergence under `HostKernels::Serial` (the
//! pre-adaptive reference kernels) and `HostKernels::Adaptive` (sparse/
//! dense selection), warmup + N timed trials, reporting median and p95
//! milliseconds. A targeted microbenchmark times one BFS-shaped iteration
//! (apply + frontierActivate) at a ≤1% frontier density, where the sparse
//! path's O(active) iteration shows its largest win. Results land in
//! `BENCH_wallclock.json` (schema `gr-wallclock-v1`) at the repo root so
//! future changes have a perf trajectory to compare against.

use std::time::Instant;

use gr_algorithms::{Bfs, Cc, PageRank, Sssp};
use gr_graph::{build_shards, gen, Bitmap, GraphLayout, Interval};
use gr_sim::Platform;
use graphreduce::phases::{activate_shard, apply_shard};
use graphreduce::{GasProgram, GraphReduce, HostKernels, Options};

struct Args {
    scale: u32,
    edges: u64,
    trials: usize,
    warmup: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 16,
        edges: 1 << 20,
        trials: 5,
        warmup: 1,
        out: "BENCH_wallclock.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => {
                args.scale = 10;
                args.edges = 1 << 13;
                args.warmup = 0;
            }
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage),
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage)
            }
            "--out" => args.out = it.next().unwrap_or_else(usage),
            _ => usage(),
        }
    }
    args.trials = args.trials.max(1);
    args
}

fn usage<T>() -> T {
    eprintln!("usage: wallclock [--tiny] [--scale N] [--trials N] [--out path.json]");
    std::process::exit(2);
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn p95(sorted: &[f64]) -> f64 {
    let idx = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Time `f` `trials` times (after `warmup` unrecorded runs); returns
/// sorted durations in milliseconds.
fn time_trials<F: FnMut()>(warmup: usize, trials: usize, mut f: F) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut ms: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    ms
}

struct RunRow {
    algo: &'static str,
    mode: &'static str,
    iterations: u32,
    median_ms: f64,
    p95_ms: f64,
    min_ms: f64,
}

fn bench_run<P: GasProgram + Clone>(
    rows: &mut Vec<RunRow>,
    program: P,
    layout: &GraphLayout,
    platform: &Platform,
    args: &Args,
) {
    for (mode, label) in [
        (HostKernels::Serial, "serial"),
        (HostKernels::Adaptive, "adaptive"),
    ] {
        let opts = Options::optimized().with_host_kernels(mode);
        let mut iterations = 0;
        let ms = time_trials(args.warmup, args.trials, || {
            let out = GraphReduce::new(program.clone(), layout, platform.clone(), opts.clone())
                .run()
                .expect("fault-free run");
            iterations = out.stats.iterations;
        });
        let row = RunRow {
            algo: program.name(),
            mode: label,
            iterations,
            median_ms: median(&ms),
            p95_ms: p95(&ms),
            min_ms: ms[0],
        };
        eprintln!(
            "{:>8} {:>8}: median {:.3} ms  p95 {:.3} ms  ({} iterations)",
            row.algo, row.mode, row.median_ms, row.p95_ms, row.iterations
        );
        rows.push(row);
    }
}

struct SparseIter {
    density: f64,
    active: u64,
    serial_median_ms: f64,
    adaptive_median_ms: f64,
    speedup: f64,
}

/// One BFS-shaped iteration (apply over the frontier + frontierActivate
/// over the changed set) at a sparse frontier: every 256th vertex active
/// (~0.4% density). This isolates exactly the O(interval)-vs-O(active)
/// difference the adaptive kernels exist for.
fn bench_sparse_iteration(layout: &GraphLayout, args: &Args) -> SparseIter {
    let n = layout.num_vertices();
    let shards = build_shards(layout, &[Interval { start: 0, end: n }]);
    let shard = &shards[0];
    let program = Bfs::new(0);
    // Stride 1021 (prime), not a power of two: RMAT piles degree onto ids
    // with zero low bytes, so a power-of-two stride would select exactly
    // the hubs and the (mode-independent) edge walk would swamp the
    // scan-vs-skip difference this microbenchmark isolates. ~0.1% density
    // is a BFS tail iteration — the regime dynamic frontier management
    // targets (Figure 17: most iterations sit far below the peak).
    let mut frontier = Bitmap::new(n);
    let mut v = 1u32;
    while v < n {
        frontier.set(v);
        v += 1021;
    }
    let active = frontier.count();
    let base_values = vec![u32::MAX; n as usize];
    let gather_temp = vec![(); n as usize];

    // Time only the two phase kernels; the state resets between trials
    // are benchmark scaffolding, identical for both modes, and O(n) — at
    // sparse frontiers they would otherwise drown the O(active) path.
    let run = |mode: HostKernels| {
        let mut values = base_values.clone();
        let mut next = Bitmap::new(n);
        let mut changed_bits = Bitmap::new(n);
        let mut ms = Vec::with_capacity(args.trials);
        for t in 0..args.warmup + args.trials {
            values.copy_from_slice(&base_values);
            next.clear_all();
            changed_bits.clear_all();
            let t0 = Instant::now();
            let changed = apply_shard(
                &program,
                shard,
                &mut values,
                &gather_temp,
                &frontier,
                0,
                mode,
            );
            let apply_elapsed = t0.elapsed();
            for c in changed {
                changed_bits.set(c);
            }
            let t1 = Instant::now();
            activate_shard(layout, shard, &changed_bits, &mut next, mode);
            let activate_elapsed = t1.elapsed();
            if t >= args.warmup {
                ms.push((apply_elapsed + activate_elapsed).as_secs_f64() * 1e3);
            }
        }
        ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        median(&ms)
    };

    let serial = run(HostKernels::Serial);
    let adaptive = run(HostKernels::Adaptive);
    let out = SparseIter {
        density: active as f64 / n as f64,
        active,
        serial_median_ms: serial,
        adaptive_median_ms: adaptive,
        speedup: serial / adaptive.max(1e-12),
    };
    eprintln!(
        "sparse iteration ({} of {} active, {:.2}%): serial {:.4} ms, adaptive {:.4} ms — {:.1}x",
        out.active,
        n,
        100.0 * out.density,
        out.serial_median_ms,
        out.adaptive_median_ms,
        out.speedup
    );
    out
}

fn main() {
    let args = parse_args();
    eprintln!(
        "graph: rmat_g500 scale {} ({} edges requested), {} host thread(s), {} trial(s)",
        args.scale,
        args.edges,
        rayon::current_num_threads(),
        args.trials
    );
    let el =
        gen::with_random_weights(gen::rmat_g500(args.scale, args.edges, 42), 1.0, 43).symmetrize();
    let layout = GraphLayout::build(&el);
    let platform = Platform::paper_node();

    let mut rows = Vec::new();
    bench_run(&mut rows, Bfs::new(0), &layout, &platform, &args);
    bench_run(&mut rows, Sssp::new(0), &layout, &platform, &args);
    bench_run(&mut rows, PageRank::default(), &layout, &platform, &args);
    bench_run(&mut rows, Cc, &layout, &platform, &args);
    let sparse = bench_sparse_iteration(&layout, &args);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"gr-wallclock-v1\",\n");
    json.push_str(&format!(
        "  \"graph\": {{\"generator\": \"rmat_g500\", \"scale\": {}, \"vertices\": {}, \"edges\": {}, \"symmetrized\": true}},\n",
        args.scale,
        layout.num_vertices(),
        layout.num_edges()
    ));
    json.push_str(&format!(
        "  \"host_threads\": {},\n  \"trials\": {},\n  \"warmup\": {},\n",
        rayon::current_num_threads(),
        args.trials,
        args.warmup
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"mode\": \"{}\", \"iterations\": {}, \"median_ms\": {:.4}, \"p95_ms\": {:.4}, \"min_ms\": {:.4}}}{}\n",
            r.algo,
            r.mode,
            r.iterations,
            r.median_ms,
            r.p95_ms,
            r.min_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sparse_bfs_iteration\": {{\"density\": {:.6}, \"active_vertices\": {}, \"serial_median_ms\": {:.6}, \"adaptive_median_ms\": {:.6}, \"speedup\": {:.2}}}\n",
        sparse.density,
        sparse.active,
        sparse.serial_median_ms,
        sparse.adaptive_median_ms,
        sparse.speedup
    ));
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark json");
    eprintln!("wrote {}", args.out);
}

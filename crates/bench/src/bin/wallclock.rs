//! Wall-clock benchmark harness for the *host* execution engine.
//!
//! Everything else in this crate reports **simulated** device time; this
//! bin times the real host-side kernels (`graphreduce::phases`) that
//! compute the exact results, so host-engine optimizations — sparse/dense
//! kernel selection, parallel shards — are measurable and regress-able.
//!
//! ```sh
//! cargo run --release -p gr-bench --bin wallclock            # full run
//! cargo run --release -p gr-bench --bin wallclock -- --tiny --trials 1
//! cargo run --release -p gr-bench --bin wallclock -- --threads 2 \
//!     --compare results/bench_trajectory.jsonl
//! ```
//!
//! One invocation produces (schema `gr-wallclock-v2`):
//!
//! - **runs** — each algorithm to convergence under `HostKernels::Serial`
//!   and `HostKernels::Adaptive` at the effective thread count, warmup +
//!   N timed trials, median/p95/min milliseconds;
//! - **scaling** — a thread sweep (1/2/4/8, or just `--threads N`) of an
//!   out-of-core CC run under an armed [`WallProfiler`]: total and
//!   in-kernel wall time, per-GAS-phase breakdown, and the across-shard
//!   fan-out imbalance at every point;
//! - **sparse_bfs_iteration** — the targeted microbenchmark of one
//!   BFS-tail iteration at ~0.1% frontier density;
//! - one appended line in `results/bench_trajectory.jsonl` keyed by the
//!   git commit (disable with `--no-trajectory`), giving every commit a
//!   perf trajectory to compare against;
//! - with `--compare <baseline>`: per-row deltas against a previous
//!   report or trajectory file, exiting nonzero when the median delta
//!   regresses by more than 10% (the CI gate);
//! - with `--profile <path>`: a Chrome/Perfetto trace of the last profiled
//!   run carrying the real-time `wall` track.

use std::time::Instant;

use gr_algorithms::{Bfs, Cc, PageRank, Sssp};
use gr_bench::trajectory::{self, BenchRow, TrajectoryEntry};
use gr_bench::{effective_host_threads, run_gr_wall, set_host_threads, Algo};
use gr_graph::{build_shards, gen, Bitmap, CompressionCodec, GraphLayout, Interval, TopoView};
use gr_observe::Observer;
use gr_sim::Platform;
use graphreduce::phases::{activate_shard, apply_shard};
use graphreduce::sizes::SizeModel;
use graphreduce::{GasProgram, GraphReduce, HostKernels, Options, WallProfiler, WallSummary};

struct Args {
    scale: u32,
    edges: u64,
    trials: usize,
    warmup: usize,
    tiny: bool,
    threads: Option<usize>,
    out: String,
    compare: Option<String>,
    profile: Option<String>,
    trajectory: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 16,
        edges: 1 << 20,
        trials: 5,
        warmup: 1,
        tiny: false,
        threads: None,
        out: "BENCH_wallclock.json".to_string(),
        compare: None,
        profile: None,
        trajectory: Some(trajectory::TRAJECTORY_PATH.to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => {
                args.scale = 10;
                args.edges = 1 << 13;
                args.warmup = 0;
                args.tiny = true;
            }
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage),
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage)
            }
            "--threads" => {
                args.threads = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(usage))
            }
            "--out" => args.out = it.next().unwrap_or_else(usage),
            "--compare" => args.compare = Some(it.next().unwrap_or_else(usage)),
            "--profile" => args.profile = Some(it.next().unwrap_or_else(usage)),
            "--trajectory" => args.trajectory = Some(it.next().unwrap_or_else(usage)),
            "--no-trajectory" => args.trajectory = None,
            _ => usage(),
        }
    }
    args.trials = args.trials.max(1);
    args
}

fn usage<T>() -> T {
    eprintln!(
        "usage: wallclock [--tiny] [--scale N] [--trials N] [--threads N] [--out path.json] \
         [--compare baseline.json|trajectory.jsonl] [--profile trace.json] \
         [--trajectory path.jsonl | --no-trajectory]"
    );
    std::process::exit(2);
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn p95(sorted: &[f64]) -> f64 {
    let idx = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Time `f` `trials` times (after `warmup` unrecorded runs); returns
/// sorted durations in milliseconds.
fn time_trials<F: FnMut()>(warmup: usize, trials: usize, mut f: F) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut ms: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    ms
}

fn bench_run<P: GasProgram + Clone>(
    rows: &mut Vec<BenchRow>,
    program: P,
    layout: &GraphLayout,
    platform: &Platform,
    args: &Args,
) {
    for (mode, label) in [
        (HostKernels::Serial, "serial"),
        (HostKernels::Adaptive, "adaptive"),
    ] {
        let opts = Options::optimized().with_host_kernels(mode);
        let mut iterations = 0;
        let ms = time_trials(args.warmup, args.trials, || {
            let out = GraphReduce::new(program.clone(), layout, platform.clone(), opts.clone())
                .run()
                .expect("fault-free run");
            iterations = out.stats.iterations;
        });
        let row = BenchRow {
            kind: "wallclock".to_string(),
            algo: program.name().to_string(),
            mode: label.to_string(),
            threads: effective_host_threads() as u64,
            iterations: iterations as u64,
            median_ms: median(&ms),
            p95_ms: p95(&ms),
            min_ms: ms[0],
        };
        eprintln!(
            "{:>8} {:>8}: median {:.3} ms  p95 {:.3} ms  ({} iterations)",
            row.algo, row.mode, row.median_ms, row.p95_ms, row.iterations
        );
        rows.push(row);
    }
}

// ---------------------------------------------------------------------------
// Thread-scaling sweep.
// ---------------------------------------------------------------------------

/// One thread-sweep point: an out-of-core CC run profiled for real time.
struct ScalingPoint {
    threads: usize,
    /// Worker threads that actually recorded kernel time.
    workers: usize,
    shards: usize,
    total_median_ms: f64,
    kernel_median_ms: f64,
    imbalance: f64,
    /// (phase, median milliseconds over trials), zero phases dropped.
    phases: Vec<(&'static str, f64)>,
}

/// A platform whose device memory forces the benched graph out-of-core
/// (streamed in several shards), so the across-shard rayon fan-out — the
/// thing thread scaling measures — actually engages.
fn sweep_platform(layout: &GraphLayout) -> Platform {
    let model = SizeModel::for_program(&Cc);
    let streamed = layout.num_edges() * (model.in_edge_bytes() + model.out_edge_bytes());
    // Budget: all static buffers plus about a quarter of the streamed
    // footprint — the plan lands at a handful of shards at any scale.
    let budget = model.static_bytes(layout.num_vertices() as u64) + streamed / 4;
    let nominal = Platform::paper_node().device.mem_capacity;
    Platform::paper_node_scaled((nominal / budget.max(1)).max(1))
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    median(&xs)
}

/// Profile one CC run per trial at `threads` workers and reduce the
/// per-trial [`WallSummary`]s to medians.
fn sweep_point(
    layout: &GraphLayout,
    platform: &Platform,
    threads: usize,
    args: &Args,
) -> ScalingPoint {
    set_host_threads(threads);
    let wall = WallProfiler::armed();
    let mut summaries: Vec<WallSummary> = Vec::with_capacity(args.trials);
    let mut workers = 0usize;
    let mut shards = 0usize;
    for t in 0..args.warmup + args.trials {
        wall.reset();
        let stats = run_gr_wall(
            Algo::Cc,
            layout,
            platform,
            Options::optimized(),
            Observer::disabled(),
            wall.clone(),
        )
        .expect("fault-free sweep run");
        shards = stats.num_shards;
        if t >= args.warmup {
            let profile = wall.profile();
            workers = workers.max(profile.thread_count());
            summaries.push(profile.summary());
        }
    }
    let ms = |f: fn(&WallSummary) -> u64| {
        median_of(summaries.iter().map(|s| f(s) as f64 / 1e6).collect())
    };
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    for (phase, _) in &summaries[0].phases {
        let med = median_of(
            summaries
                .iter()
                .map(|s| {
                    s.phases
                        .iter()
                        .find(|(p, _)| p == phase)
                        .map_or(0.0, |(_, ns)| *ns as f64 / 1e6)
                })
                .collect(),
        );
        if med > 0.0 {
            phases.push((phase, med));
        }
    }
    let point = ScalingPoint {
        threads,
        workers,
        shards,
        total_median_ms: ms(|s| s.total_ns),
        kernel_median_ms: ms(|s| s.kernel_ns),
        imbalance: median_of(summaries.iter().map(|s| s.imbalance).collect()),
        phases,
    };
    eprintln!(
        "scaling {} thread(s): total {:.3} ms, kernels {:.3} ms, imbalance {:.2} \
         ({} shards, {} workers busy)",
        point.threads,
        point.total_median_ms,
        point.kernel_median_ms,
        point.imbalance,
        point.shards,
        point.workers
    );
    point
}

// ---------------------------------------------------------------------------
// Compressed-shard benchmark: transfer ratio + wall delta, RMAT vs grid.
// ---------------------------------------------------------------------------

/// One graph's compressed-vs-raw comparison: the simulated host↔device
/// transfer volumes of an out-of-core CC run and the real host wall time
/// paid to decode rows lazily through the gap streams.
struct CompressionRow {
    graph: &'static str,
    codec: &'static str,
    raw_bytes: u64,
    compressed_bytes: u64,
    transfer_ratio: f64,
    raw_median_ms: f64,
    compressed_median_ms: f64,
    wall_delta_pct: f64,
}

/// Bench one layout compressed and raw on its out-of-core platform. RMAT
/// (power-law gaps — the codecs' home turf) and a 2D grid (near-constant
/// small gaps) bracket the ratio a real graph lands in.
fn bench_compression_on(
    rows: &mut Vec<BenchRow>,
    graph: &'static str,
    layout: &GraphLayout,
    args: &Args,
) -> CompressionRow {
    let codec = CompressionCodec::Zeta(3);
    let platform = sweep_platform(layout);
    let mut measure = |opts: Options, mode: &str| {
        let mut bytes = 0u64;
        let mut iterations = 0u64;
        let ms = time_trials(args.warmup, args.trials, || {
            let out = GraphReduce::new(Cc, layout, platform.clone(), opts.clone())
                .run()
                .expect("fault-free compression bench run");
            bytes = out.stats.bytes_h2d + out.stats.bytes_d2h;
            iterations = out.stats.iterations as u64;
        });
        rows.push(BenchRow {
            kind: "wallclock".to_string(),
            algo: format!("cc@{graph}"),
            mode: mode.to_string(),
            threads: effective_host_threads() as u64,
            iterations,
            median_ms: median(&ms),
            p95_ms: p95(&ms),
            min_ms: ms[0],
        });
        (bytes, median(&ms))
    };
    let (raw_bytes, raw_ms) = measure(Options::optimized(), "raw");
    let (z_bytes, z_ms) = measure(
        Options::optimized().with_shard_compression(codec),
        codec.name(),
    );
    let row = CompressionRow {
        graph,
        codec: codec.name(),
        raw_bytes,
        compressed_bytes: z_bytes,
        transfer_ratio: raw_bytes as f64 / (z_bytes as f64).max(1.0),
        raw_median_ms: raw_ms,
        compressed_median_ms: z_ms,
        wall_delta_pct: 100.0 * (z_ms - raw_ms) / raw_ms.max(1e-12),
    };
    eprintln!(
        "compression {graph:>5} ({}): transfers {:.2} -> {:.2} MB ({:.2}x), \
         wall {:.3} -> {:.3} ms ({:+.1}%)",
        row.codec,
        row.raw_bytes as f64 / 1e6,
        row.compressed_bytes as f64 / 1e6,
        row.transfer_ratio,
        row.raw_median_ms,
        row.compressed_median_ms,
        row.wall_delta_pct
    );
    row
}

// ---------------------------------------------------------------------------
// Sparse-iteration microbenchmark (unchanged from v1).
// ---------------------------------------------------------------------------

struct SparseIter {
    density: f64,
    active: u64,
    serial_median_ms: f64,
    adaptive_median_ms: f64,
    speedup: f64,
}

/// One BFS-shaped iteration (apply over the frontier + frontierActivate
/// over the changed set) at a sparse frontier: every 1021st vertex active.
/// This isolates exactly the O(interval)-vs-O(active) difference the
/// adaptive kernels exist for.
fn bench_sparse_iteration(layout: &GraphLayout, args: &Args) -> SparseIter {
    let n = layout.num_vertices();
    let shards = build_shards(layout, &[Interval { start: 0, end: n }]);
    let shard = &shards[0];
    let program = Bfs::new(0);
    // Stride 1021 (prime), not a power of two: RMAT piles degree onto ids
    // with zero low bytes, so a power-of-two stride would select exactly
    // the hubs and the (mode-independent) edge walk would swamp the
    // scan-vs-skip difference this microbenchmark isolates. ~0.1% density
    // is a BFS tail iteration — the regime dynamic frontier management
    // targets (Figure 17: most iterations sit far below the peak).
    let mut frontier = Bitmap::new(n);
    let mut v = 1u32;
    while v < n {
        frontier.set(v);
        v += 1021;
    }
    let active = frontier.count();
    let base_values = vec![u32::MAX; n as usize];
    let gather_temp = vec![(); n as usize];

    // Time only the two phase kernels; the state resets between trials
    // are benchmark scaffolding, identical for both modes, and O(n) — at
    // sparse frontiers they would otherwise drown the O(active) path.
    let run = |mode: HostKernels| {
        let mut values = base_values.clone();
        let mut next = Bitmap::new(n);
        let mut changed_bits = Bitmap::new(n);
        let mut ms = Vec::with_capacity(args.trials);
        for t in 0..args.warmup + args.trials {
            values.copy_from_slice(&base_values);
            next.clear_all();
            changed_bits.clear_all();
            let t0 = Instant::now();
            let changed = apply_shard(
                &program,
                shard,
                &mut values,
                &gather_temp,
                &frontier,
                0,
                mode,
            );
            let apply_elapsed = t0.elapsed();
            for c in changed {
                changed_bits.set(c);
            }
            let t1 = Instant::now();
            activate_shard(TopoView::raw(layout), shard, &changed_bits, &mut next, mode);
            let activate_elapsed = t1.elapsed();
            if t >= args.warmup {
                ms.push((apply_elapsed + activate_elapsed).as_secs_f64() * 1e3);
            }
        }
        ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        median(&ms)
    };

    let serial = run(HostKernels::Serial);
    let adaptive = run(HostKernels::Adaptive);
    let out = SparseIter {
        density: active as f64 / n as f64,
        active,
        serial_median_ms: serial,
        adaptive_median_ms: adaptive,
        speedup: serial / adaptive.max(1e-12),
    };
    eprintln!(
        "sparse iteration ({} of {} active, {:.2}%): serial {:.4} ms, adaptive {:.4} ms — {:.1}x",
        out.active,
        n,
        100.0 * out.density,
        out.serial_median_ms,
        out.adaptive_median_ms,
        out.speedup
    );
    out
}

// ---------------------------------------------------------------------------
// Output, trajectory, comparison.
// ---------------------------------------------------------------------------

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn v2_json(
    args: &Args,
    commit: &str,
    layout: &GraphLayout,
    rows: &[BenchRow],
    scaling: &[ScalingPoint],
    compression: &[CompressionRow],
    sparse: &SparseIter,
) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"gr-wallclock-v2\",\n");
    json.push_str(&format!("  \"commit\": \"{commit}\",\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"generator\": \"rmat_g500\", \"scale\": {}, \"vertices\": {}, \"edges\": {}, \"symmetrized\": true}},\n",
        args.scale,
        layout.num_vertices(),
        layout.num_edges()
    ));
    json.push_str(&format!(
        "  \"host_threads\": {},\n  \"trials\": {},\n  \"warmup\": {},\n",
        effective_host_threads(),
        args.trials,
        args.warmup
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"iterations\": {}, \"median_ms\": {:.4}, \"p95_ms\": {:.4}, \"min_ms\": {:.4}}}{}\n",
            r.algo,
            r.mode,
            r.threads,
            r.iterations,
            r.median_ms,
            r.p95_ms,
            r.min_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let phases: Vec<String> = p
            .phases
            .iter()
            .map(|(phase, ms)| format!("{{\"phase\": \"{phase}\", \"median_ms\": {ms:.4}}}"))
            .collect();
        json.push_str(&format!(
            "    {{\"threads\": {}, \"workers_busy\": {}, \"shards\": {}, \"total_median_ms\": {:.4}, \"kernel_median_ms\": {:.4}, \"imbalance\": {:.4}, \"phases\": [{}]}}{}\n",
            p.threads,
            p.workers,
            p.shards,
            p.total_median_ms,
            p.kernel_median_ms,
            p.imbalance,
            phases.join(", "),
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"compression\": [\n");
    for (i, c) in compression.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"codec\": \"{}\", \"raw_bytes\": {}, \"compressed_bytes\": {}, \"transfer_ratio\": {:.4}, \"raw_median_ms\": {:.4}, \"compressed_median_ms\": {:.4}, \"wall_delta_pct\": {:.2}}}{}\n",
            c.graph,
            c.codec,
            c.raw_bytes,
            c.compressed_bytes,
            c.transfer_ratio,
            c.raw_median_ms,
            c.compressed_median_ms,
            c.wall_delta_pct,
            if i + 1 < compression.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sparse_bfs_iteration\": {{\"density\": {:.6}, \"active_vertices\": {}, \"serial_median_ms\": {:.6}, \"adaptive_median_ms\": {:.6}, \"speedup\": {:.2}}}\n",
        sparse.density,
        sparse.active,
        sparse.serial_median_ms,
        sparse.adaptive_median_ms,
        sparse.speedup
    ));
    json.push_str("}\n");
    json
}

/// Append this run's rows to the trajectory file (created on first use).
fn append_trajectory(path: &str, entry: &TrajectoryEntry) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    use std::io::Write;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", entry.to_line()));
    match result {
        Ok(()) => eprintln!("appended trajectory entry ({}) to {path}", entry.commit),
        Err(e) => eprintln!("warning: cannot append trajectory to {path}: {e}"),
    }
}

/// The `--compare` gate: exits 1 on a median regression beyond the
/// threshold, 2 when the baseline cannot gate this run at all.
fn run_compare(baseline_path: &str, rows: &[BenchRow], scale: u64) -> ! {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = trajectory::baseline_rows(&text, scale).unwrap_or_else(|e| {
        eprintln!("error: unusable baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let cmp = trajectory::compare(&baseline, rows).unwrap_or_else(|e| {
        eprintln!("error: cannot compare against {baseline_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("comparison against {baseline_path}:");
    for d in &cmp.deltas {
        eprintln!(
            "  {:>9} {:>8} {:>8} @{} thread(s): {:.3} -> {:.3} ms ({:+.1}%)",
            d.kind, d.algo, d.mode, d.threads, d.baseline_ms, d.current_ms, d.delta_pct
        );
    }
    for (kind, algo, mode, threads) in &cmp.unmatched {
        eprintln!(
            "  {kind:>9} {algo:>8} {mode:>8} @{threads} thread(s): no baseline row (not gated)"
        );
    }
    eprintln!(
        "  median delta {:+.1}% (gate: > +{:.0}% fails)",
        cmp.median_delta_pct,
        trajectory::REGRESSION_PCT
    );
    if cmp.regressed() {
        eprintln!("REGRESSION: median wall time is more than 10% above the baseline");
        std::process::exit(1);
    }
    eprintln!("ok: within the regression budget");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        set_host_threads(n);
    }
    eprintln!(
        "graph: rmat_g500 scale {} ({} edges requested), {} host thread(s), {} trial(s)",
        args.scale,
        args.edges,
        effective_host_threads(),
        args.trials
    );
    let el =
        gen::with_random_weights(gen::rmat_g500(args.scale, args.edges, 42), 1.0, 43).symmetrize();
    let layout = GraphLayout::build(&el);
    let platform = Platform::paper_node();

    let mut rows = Vec::new();
    bench_run(&mut rows, Bfs::new(0), &layout, &platform, &args);
    bench_run(&mut rows, Sssp::new(0), &layout, &platform, &args);
    bench_run(&mut rows, PageRank::default(), &layout, &platform, &args);
    bench_run(&mut rows, Cc, &layout, &platform, &args);
    let sparse = bench_sparse_iteration(&layout, &args);

    // Thread sweep: pinned runs at 1/2/4/8 workers (just N under
    // `--threads N`; 1/2 under `--tiny` to keep CI smoke fast), then the
    // ambient pinning is restored for the rest of the process.
    // Compression bracket: the benched RMAT plus a 2D grid of the same
    // edge budget, each compressed and raw on its out-of-core platform.
    let grid_layout = GraphLayout::build(&gen::grid2d_with_edges(
        layout.num_vertices(),
        args.edges,
        7,
    ));
    let compression = vec![
        bench_compression_on(&mut rows, "rmat", &layout, &args),
        bench_compression_on(&mut rows, "grid", &grid_layout, &args),
    ];

    let sweep_plat = sweep_platform(&layout);
    let sweep_threads: Vec<usize> = match args.threads {
        Some(n) => vec![n],
        None if args.tiny => vec![1, 2],
        None => vec![1, 2, 4, 8],
    };
    let saved_pin = std::env::var("RAYON_NUM_THREADS").ok();
    let scaling: Vec<ScalingPoint> = sweep_threads
        .iter()
        .map(|&t| sweep_point(&layout, &sweep_plat, t, &args))
        .collect();
    match (&saved_pin, args.threads) {
        (Some(v), _) => std::env::set_var("RAYON_NUM_THREADS", v),
        (None, Some(n)) => set_host_threads(n),
        (None, None) => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    // Optional wall-track trace: one more profiled run, virtual timeline
    // and real time side by side.
    if let Some(path) = &args.profile {
        let wall = WallProfiler::armed();
        let (observer, sink) = Observer::recording();
        run_gr_wall(
            Algo::Cc,
            &layout,
            &sweep_plat,
            Options::optimized(),
            observer,
            wall.clone(),
        )
        .expect("fault-free profiled run");
        let trace =
            gr_observe::export::chrome_trace_with_wall(&sink.recorded(), Some(&wall.profile()));
        std::fs::write(path, trace).expect("write profile trace");
        eprintln!("wrote {path}");
    }

    let commit = git_commit();
    let json = v2_json(
        &args,
        &commit,
        &layout,
        &rows,
        &scaling,
        &compression,
        &sparse,
    );
    std::fs::write(&args.out, &json).expect("write benchmark json");
    eprintln!("wrote {}", args.out);

    // Gate before appending: `baseline_rows` keeps the newest entry per
    // key, so appending first would make a trajectory-file compare judge
    // the run against itself. Compare runs exit inside `run_compare` and
    // leave the baseline file untouched.
    if let Some(baseline) = &args.compare {
        run_compare(baseline, &rows, args.scale as u64);
    }

    if let Some(path) = &args.trajectory {
        append_trajectory(
            path,
            &TrajectoryEntry {
                commit,
                schema: "gr-wallclock-v2".into(),
                scale: args.scale as u64,
                rows: rows.clone(),
            },
        );
    }
}

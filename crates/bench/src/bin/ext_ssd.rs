//! Extension experiment (paper Section 8, future work 2): out-of-host-core
//! processing. When a graph exceeds host DRAM, GraphReduce's shards stream
//! SSD → host → device; this harness sweeps the host-memory budget and
//! reports the slowdown cliff at the DRAM boundary.

use gr_bench::{layout_for, run_gr, scale_from_args, Algo};
use gr_graph::{in_memory_bytes, Dataset};
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let scale = scale_from_args();
    let ds = Dataset::Cage15;
    let layout = layout_for(ds, Algo::Cc, scale);
    let footprint = in_memory_bytes(layout.num_vertices() as u64, layout.num_edges());
    println!("== Extension: SSD-backed out-of-host-core (--scale {scale}) ==");
    println!(
        "{}: footprint {:.1} MB; sweeping host DRAM budget\n",
        ds.name(),
        footprint as f64 / 1e6
    );
    println!(
        "{:>16} {:>12} {:>14} {:>10}",
        "host DRAM", "fits?", "time", "slowdown"
    );
    let mut in_ram_time = None;
    for frac in [4.0f64, 2.0, 1.0, 0.5, 0.25] {
        let mut platform = Platform::paper_node_scaled(scale);
        platform.host.mem_capacity = (footprint as f64 * frac) as u64;
        let stats = run_gr(Algo::Cc, &layout, &platform, Options::optimized()).unwrap();
        let fits = platform.host.mem_capacity >= footprint;
        if fits && in_ram_time.is_none() {
            in_ram_time = Some(stats.elapsed);
        }
        let slow = in_ram_time
            .map(|t| stats.elapsed.as_secs_f64() / t.as_secs_f64())
            .unwrap_or(1.0);
        println!(
            "{:>13.1} MB {:>12} {:>14} {:>9.2}x",
            platform.host.mem_capacity as f64 / 1e6,
            if fits { "yes" } else { "no (SSD)" },
            format!("{}", stats.elapsed),
            slow
        );
    }
    println!("\nshape: identical results at every budget; the moment the graph spills out of DRAM, shard fetches pay SSD bandwidth and the run slows by the SSD/PCIe bandwidth ratio.");
}

//! Figure 16 — frontier size across iterations for the large out-of-memory
//! graphs under BFS, PageRank and CC (SSSP omitted, as in the paper: its
//! frontier pattern matches BFS).
//!
//! Paper shape: BFS starts at 1, climbs to a peak, falls; PageRank and CC
//! start with every vertex active and decay at an input-dependent rate
//! (sharply for nlpkkt160, slowly for cage15).

use gr_bench::{frontier_trace, layout_for, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Figure 16: frontier dynamics on out-of-memory graphs (--scale {scale}) ==");
    for algo in [Algo::Bfs, Algo::Pagerank, Algo::Cc] {
        println!("\n--- {} ---", algo.name());
        println!("graph,iterations,series...");
        for ds in Dataset::OUT_OF_MEMORY {
            let layout = layout_for(ds, algo, scale);
            let sizes = frontier_trace(algo, &layout, &platform);
            print!("{},{}", ds.name(), sizes.len());
            // Print a bounded series (every iteration up to 60, then every
            // 10th) so road-network runs stay readable.
            for (i, s) in sizes.iter().enumerate() {
                if i < 60 || i % 10 == 0 {
                    print!(",{s}");
                }
            }
            println!();

            match algo {
                Algo::Bfs => assert_eq!(sizes[0], 1, "{}: BFS starts at 1", ds.name()),
                _ => assert_eq!(
                    sizes[0],
                    layout.num_vertices() as u64,
                    "{}: {} starts with all vertices",
                    ds.name(),
                    algo.name()
                ),
            }
        }
    }
    println!("\nshape check passed: BFS seeds at 1 vertex; PageRank/CC seed at |V|.");
}

//! Figure 16 — frontier size across iterations for the large out-of-memory
//! graphs under BFS, PageRank and CC (SSSP omitted, as in the paper: its
//! frontier pattern matches BFS).
//!
//! Paper shape: BFS starts at 1, climbs to a peak, falls; PageRank and CC
//! start with every vertex active and decay at an input-dependent rate
//! (sharply for nlpkkt160, slowly for cage15).
//!
//! `--csv <path>` writes every series as `algo,graph,iteration,frontier`
//! rows; `--report` / `--trace <path>` capture the first run (BFS on the
//! first out-of-memory graph) as a run report / Perfetto trace.

use gr_bench::{flag_value, layout_for, run_gr_observed, scale_from_args, Algo, RunArtifacts};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    let artifacts = RunArtifacts::from_env();
    let csv_path = flag_value("--csv");
    let mut csv = String::from("algo,graph,iteration,frontier_size\n");
    let mut observed_first = false;
    println!("== Figure 16: frontier dynamics on out-of-memory graphs (--scale {scale}) ==");
    for algo in [Algo::Bfs, Algo::Pagerank, Algo::Cc] {
        println!("\n--- {} ---", algo.name());
        println!("graph,iterations,series...");
        for ds in Dataset::OUT_OF_MEMORY {
            let layout = layout_for(ds, algo, scale);
            let observer = if artifacts.enabled() && !observed_first {
                artifacts.observer()
            } else {
                gr_observe::Observer::disabled()
            };
            let stats = run_gr_observed(algo, &layout, &platform, Options::optimized(), observer)
                .expect("plan fits");
            if artifacts.enabled() && !observed_first {
                observed_first = true;
                for path in artifacts.write_or_exit(Some(&stats)) {
                    eprintln!("wrote {path} ({} {})", ds.name(), algo.name());
                }
            }
            let sizes = stats.frontier_sizes();
            for (i, s) in sizes.iter().enumerate() {
                csv.push_str(&format!("{},{},{i},{s}\n", algo.name(), ds.name()));
            }
            print!("{},{}", ds.name(), sizes.len());
            // Print a bounded series (every iteration up to 60, then every
            // 10th) so road-network runs stay readable.
            for (i, s) in sizes.iter().enumerate() {
                if i < 60 || i % 10 == 0 {
                    print!(",{s}");
                }
            }
            println!();

            match algo {
                Algo::Bfs => assert_eq!(sizes[0], 1, "{}: BFS starts at 1", ds.name()),
                _ => assert_eq!(
                    sizes[0],
                    layout.num_vertices() as u64,
                    "{}: {} starts with all vertices",
                    ds.name(),
                    algo.name()
                ),
            }
        }
    }
    if let Some(path) = &csv_path {
        std::fs::write(path, csv).expect("write csv");
        eprintln!("wrote {path}");
    }
    println!("\nshape check passed: BFS seeds at 1 vertex; PageRank/CC seed at |V|.");
}

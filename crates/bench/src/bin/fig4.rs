//! Figure 4 — performance of three host↔device data-exchange techniques
//! (explicit copy, pinned/UVA zero-copy, managed memory) for transferring
//! and accessing 100,000,000 doubles, sequentially and randomly.
//!
//! Paper shape: sequential — pinned best, managed worst; random — explicit
//! best, pinned worst. This asymmetry justifies GraphReduce's choice of
//! explicit transfers with sorted (sequentialized) shard layouts
//! (Section 3.2).

use gr_sim::xfer::{transfer_access_time, AccessPattern, TransferMode};
use gr_sim::Platform;

fn main() {
    let p = Platform::paper_node();
    let n = 100_000_000u64;
    println!("== Figure 4: transferring + accessing {n} doubles ==");
    println!(
        "{:<12} {:>18} {:>18}",
        "technique", "sequential (ms)", "random (ms)"
    );
    let modes = [
        ("explicit", TransferMode::Explicit),
        ("pinned/UVA", TransferMode::PinnedUva),
        ("managed", TransferMode::Managed),
    ];
    let mut t = std::collections::HashMap::new();
    for (name, mode) in modes {
        let seq = transfer_access_time(
            &p.pcie,
            &p.device,
            mode,
            AccessPattern::Sequential,
            n * 8,
            n,
            8,
        );
        let rand =
            transfer_access_time(&p.pcie, &p.device, mode, AccessPattern::Random, n * 8, n, 8);
        println!(
            "{:<12} {:>18.3} {:>18.3}",
            name,
            seq.as_millis_f64(),
            rand.as_millis_f64()
        );
        t.insert((name, "seq"), seq);
        t.insert((name, "rand"), rand);
    }
    assert!(t[&("pinned/UVA", "seq")] < t[&("explicit", "seq")]);
    assert!(t[&("explicit", "seq")] < t[&("managed", "seq")]);
    assert!(t[&("explicit", "rand")] < t[&("managed", "rand")]);
    assert!(t[&("managed", "rand")] < t[&("pinned/UVA", "rand")]);
    println!(
        "\nshape check passed: pinned wins sequential, explicit wins random, pinned worst random."
    );
}

//! Extension experiment (paper Section 8, future work 1): multi-GPU
//! scaling. Runs PageRank and BFS on uk-2002-class and kron-class
//! out-of-memory graphs across 1-8 virtual K20c devices and reports the
//! strong-scaling curve, including the cross-device exchange traffic that
//! caps it.

use gr_bench::{default_source, layout_for, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::MultiGraphReduce;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Extension: multi-GPU strong scaling (--scale {scale}) ==");
    for (ds, algo) in [
        (Dataset::Uk2002, Algo::Pagerank),
        (Dataset::KronLogn21, Algo::Bfs),
        (Dataset::Nlpkkt160, Algo::Cc),
    ] {
        let layout = layout_for(ds, algo, scale);
        let src = default_source(&layout);
        println!("\n--- {} / {} ---", ds.name(), algo.name());
        println!(
            "{:>5} {:>14} {:>9} {:>14} {:>16}",
            "gpus", "time", "speedup", "exchange (MB)", "max memcpy busy"
        );
        let mut base = None;
        for n in [1u32, 2, 4, 8] {
            let stats = match algo {
                Algo::Pagerank => {
                    let pr = gr_algorithms::PageRank {
                        epsilon: 1e-4,
                        max_iters: 60,
                        ..Default::default()
                    };
                    MultiGraphReduce::new(pr, &layout, platform.clone(), n)
                        .run()
                        .unwrap()
                        .stats
                }
                Algo::Bfs => {
                    MultiGraphReduce::new(
                        gr_algorithms::Bfs::new(src),
                        &layout,
                        platform.clone(),
                        n,
                    )
                    .run()
                    .unwrap()
                    .stats
                }
                Algo::Cc => {
                    MultiGraphReduce::new(gr_algorithms::Cc, &layout, platform.clone(), n)
                        .run()
                        .unwrap()
                        .stats
                }
                Algo::Sssp => unreachable!(),
            };
            let base_t = *base.get_or_insert(stats.elapsed);
            let max_memcpy = stats
                .per_gpu_memcpy
                .iter()
                .copied()
                .max()
                .unwrap_or_default();
            println!(
                "{:>5} {:>14} {:>8.2}x {:>14.1} {:>16}",
                n,
                format!("{}", stats.elapsed),
                base_t.as_secs_f64() / stats.elapsed.as_secs_f64(),
                stats.exchange_bytes as f64 / 1e6,
                format!("{max_memcpy}")
            );
        }
    }
    println!("\nshape: speedup grows with device count but stays sublinear — the vertex/frontier exchange serializes on each device's PCIe link.");
}

//! Table 2 — the motivation experiment: BFS on six small graphs under
//! X-Stream (16-core Xeon) vs CuSha (K20c), reporting CuSha's speedup.
//!
//! Paper shape to reproduce: GPU wins everywhere, by orders of magnitude on
//! power-law/web graphs (kron_g500-logn20: 389x, webbase-1M: 290x,
//! coAuthorsDBLP: 110x) but only modestly on high-diameter planar graphs
//! (belgium_osm: 3x) where hundreds of near-empty iterations leave the GPU
//! underutilized.

use gr_bench::{layout_for, ms, run_cusha, run_xstream, scale_from_args_or, speedup, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;

fn main() {
    let scale = scale_from_args_or(16);
    let platform = Platform::paper_node(); // full-size device: these fit
    println!("== Table 2: X-Stream (CPU) vs CuSha (GPU), BFS, --scale {scale} ==");
    println!(
        "{:<20} {:>15} {:>12} {:>9}",
        "graph", "X-Stream (ms)", "CuSha (ms)", "speedup"
    );
    let mut planar_max: f64 = 0.0;
    let mut powerlaw_min = f64::INFINITY;
    for ds in Dataset::TABLE2 {
        let layout = layout_for(ds, Algo::Bfs, scale);
        let xs = run_xstream(Algo::Bfs, &layout, &platform);
        let cu =
            run_cusha(Algo::Bfs, &layout, &platform).expect("Table 2 graphs fit the full K20c");
        let ratio = xs.elapsed.as_secs_f64() / cu.elapsed.as_secs_f64();
        println!(
            "{:<20} {:>15} {:>12} {:>9}",
            ds.name(),
            ms(xs.elapsed),
            ms(cu.elapsed),
            speedup(xs.elapsed, cu.elapsed)
        );
        match ds {
            Dataset::BelgiumOsm | Dataset::DelaunayN13 | Dataset::Ak2010 => {
                planar_max = planar_max.max(ratio)
            }
            Dataset::KronLogn20 | Dataset::Webbase1M | Dataset::CoAuthorsDblp => {
                powerlaw_min = powerlaw_min.min(ratio)
            }
            _ => {}
        }
    }
    println!(
        "\nshape check: smallest power-law speedup ({powerlaw_min:.1}x) vs largest planar speedup ({planar_max:.1}x) — paper: 110-389x vs 3-28x"
    );
}

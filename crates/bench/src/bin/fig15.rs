//! Figure 15 — memcpy time: optimized vs unoptimized GraphReduce on the
//! large out-of-memory graphs × four algorithms, plus the Section 6.2.3
//! observation that memcpy dominates (~95% of unoptimized execution).
//!
//! Paper shape: average ~51.5% and up to ~78.8% memcpy-time reduction; BFS
//! improves the most everywhere (phase elimination + tiny frontiers).

use gr_bench::{layout_for, run_gr, scale_from_args, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    println!("== Figure 15: memcpy time, optimized vs unoptimized GR (--scale {scale}) ==");
    println!(
        "{:<18} {:<9} {:>14} {:>14} {:>12} {:>16}",
        "graph", "algo", "unopt memcpy", "opt memcpy", "improvement", "unopt memcpy/run"
    );
    let mut improvements = Vec::new();
    let mut memcpy_shares = Vec::new();
    for ds in Dataset::OUT_OF_MEMORY {
        for algo in Algo::ALL {
            let layout = layout_for(ds, algo, scale);
            let opt = run_gr(algo, &layout, &platform, Options::optimized()).unwrap();
            let unopt = run_gr(algo, &layout, &platform, Options::unoptimized()).unwrap();
            let imp = 100.0
                * (1.0 - opt.memcpy_time.as_secs_f64() / unopt.memcpy_time.as_secs_f64());
            improvements.push(imp);
            memcpy_shares.push(unopt.memcpy_share());
            println!(
                "{:<18} {:<9} {:>12.2}ms {:>12.2}ms {:>11.1}% {:>15.1}%",
                ds.name(),
                algo.name(),
                unopt.memcpy_time.as_millis_f64(),
                opt.memcpy_time.as_millis_f64(),
                imp,
                100.0 * unopt.memcpy_share()
            );
        }
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(0.0f64, f64::max);
    let avg_share = 100.0 * memcpy_shares.iter().sum::<f64>() / memcpy_shares.len() as f64;
    println!(
        "\nmemcpy-time reduction: avg {avg:.1}%, max {max:.1}%   (paper: avg 51.5%, up to 78.8%)"
    );
    println!(
        "memcpy share of unoptimized execution: avg {avg_share:.1}%   (paper: above 95%)"
    );
    assert!(avg > 20.0, "optimizations must cut memcpy substantially");
    assert!(avg_share > 80.0, "memcpy must dominate unoptimized runs");
}

//! Figure 15 — memcpy time: optimized vs unoptimized GraphReduce on the
//! large out-of-memory graphs × four algorithms, plus the Section 6.2.3
//! observation that memcpy dominates (~95% of unoptimized execution).
//!
//! Paper shape: average ~51.5% and up to ~78.8% memcpy-time reduction; BFS
//! improves the most everywhere (phase elimination + tiny frontiers).
//!
//! `--csv <path>` writes the full table machine-readably; `--report` /
//! `--trace <path>` capture the first unoptimized run (the headline
//! memcpy-bound case) as a run report / Perfetto trace.

use gr_bench::{
    flag_value, layout_for, run_gr, run_gr_observed, scale_from_args, Algo, RunArtifacts,
};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::{report, Options, RunStats};

fn main() {
    let scale = scale_from_args();
    let platform = Platform::paper_node_scaled(scale);
    let artifacts = RunArtifacts::from_env();
    let csv_path = flag_value("--csv");
    println!("== Figure 15: memcpy time, optimized vs unoptimized GR (--scale {scale}) ==");
    println!(
        "{:<18} {:<9} {:>14} {:>14} {:>12} {:>16}",
        "graph", "algo", "unopt memcpy", "opt memcpy", "improvement", "unopt memcpy/run"
    );
    let mut improvements = Vec::new();
    let mut memcpy_shares = Vec::new();
    let mut rows: Vec<(String, &'static str, RunStats)> = Vec::new();
    let mut observed_first = false;
    for ds in Dataset::OUT_OF_MEMORY {
        for algo in Algo::ALL {
            let layout = layout_for(ds, algo, scale);
            let opt = run_gr(algo, &layout, &platform, Options::optimized()).unwrap();
            let unopt = if artifacts.enabled() && !observed_first {
                observed_first = true;
                let s = run_gr_observed(
                    algo,
                    &layout,
                    &platform,
                    Options::unoptimized(),
                    artifacts.observer(),
                )
                .unwrap();
                for path in artifacts.write_or_exit(Some(&s)) {
                    eprintln!("wrote {path} ({} {})", ds.name(), algo.name());
                }
                s
            } else {
                run_gr(algo, &layout, &platform, Options::unoptimized()).unwrap()
            };
            let imp =
                100.0 * (1.0 - opt.memcpy_time.as_secs_f64() / unopt.memcpy_time.as_secs_f64());
            improvements.push(imp);
            memcpy_shares.push(unopt.memcpy_share());
            println!(
                "{:<18} {:<9} {:>12.2}ms {:>12.2}ms {:>11.1}% {:>15.1}%",
                ds.name(),
                algo.name(),
                unopt.memcpy_time.as_millis_f64(),
                opt.memcpy_time.as_millis_f64(),
                imp,
                100.0 * unopt.memcpy_share()
            );
            if csv_path.is_some() {
                rows.push((ds.name().to_string(), "optimized", opt));
                rows.push((ds.name().to_string(), "unoptimized", unopt));
            }
        }
    }
    if let Some(path) = &csv_path {
        let csv = report::memcpy_csv(rows.iter().map(|(g, v, s)| (g.as_str(), *v, s)));
        std::fs::write(path, csv).expect("write csv");
        eprintln!("wrote {path}");
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(0.0f64, f64::max);
    let avg_share = 100.0 * memcpy_shares.iter().sum::<f64>() / memcpy_shares.len() as f64;
    println!(
        "\nmemcpy-time reduction: avg {avg:.1}%, max {max:.1}%   (paper: avg 51.5%, up to 78.8%)"
    );
    println!("memcpy share of unoptimized execution: avg {avg_share:.1}%   (paper: above 95%)");
    assert!(avg > 20.0, "optimizations must cut memcpy substantially");
    assert!(avg_share > 80.0, "memcpy must dominate unoptimized runs");
}

//! Table 4 — in-memory comparison: GraphReduce vs MapGraph vs CuSha on the
//! five small graphs × four algorithms (times in virtual milliseconds).
//!
//! Paper shape: all three are in the same league (GR "comparable" to the
//! specialized in-GPU frameworks); no engine wins every cell — MapGraph
//! tends to take traversal cells, CuSha dense PageRank cells, and GR stays
//! within a small factor while *also* handling out-of-memory graphs.

use gr_bench::{layout_for, ms, run_cusha, run_gr, run_mapgraph, scale_from_args_or, Algo};
use gr_graph::Dataset;
use gr_sim::Platform;
use graphreduce::Options;

fn main() {
    let scale = scale_from_args_or(16);
    // In-memory graphs run on the full-size device (they fit by Table 1).
    let platform = Platform::paper_node();
    println!("== Table 4: in-memory frameworks (virtual ms, --scale {scale}) ==");
    println!(
        "{:<18} {:<10} {:>12} {:>12} {:>12} {:>12}",
        "graph", "engine", "BFS", "SSSP", "PageRank", "CC"
    );
    let mut gr_worst_ratio: f64 = 0.0;
    let mut gr_wins = 0usize;
    let mut cells = 0usize;
    for ds in Dataset::IN_MEMORY {
        let mut mg_row = Vec::new();
        let mut cu_row = Vec::new();
        let mut gr_row = Vec::new();
        for algo in Algo::ALL {
            let layout = layout_for(ds, algo, scale);
            let mg = run_mapgraph(algo, &layout, &platform).expect("in-memory graph fits");
            let cu = run_cusha(algo, &layout, &platform).expect("in-memory graph fits");
            let gr = run_gr(algo, &layout, &platform, Options::optimized()).unwrap();
            let best_other = mg.elapsed.min(cu.elapsed);
            gr_worst_ratio =
                gr_worst_ratio.max(gr.elapsed.as_secs_f64() / best_other.as_secs_f64());
            if gr.elapsed <= best_other {
                gr_wins += 1;
            }
            cells += 1;
            mg_row.push(mg.elapsed);
            cu_row.push(cu.elapsed);
            gr_row.push(gr.elapsed);
        }
        for (engine, row) in [("MG", &mg_row), ("CuSha", &cu_row), ("GR", &gr_row)] {
            print!("{:<18} {:<10}", ds.name(), engine);
            for t in row {
                print!(" {:>12}", ms(*t));
            }
            println!();
        }
    }
    println!(
        "\nshape check: GR wins {gr_wins}/{cells} cells outright and is never more than {gr_worst_ratio:.1}x \
         behind the best specialized in-memory engine (paper: 'comparable performance', trading cells)."
    );
}

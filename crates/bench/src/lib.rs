//! # gr-bench — harness regenerating every table and figure of the paper
//!
//! One binary per experiment (see DESIGN.md's experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — dataset inventory and in-/out-of-memory split |
//! | `table2` | Table 2 — X-Stream (CPU) vs CuSha (GPU) BFS motivation |
//! | `fig3`   | Figure 3 — frontier size vs iteration, four cases |
//! | `fig4`   | Figure 4 — explicit / pinned / managed transfer comparison |
//! | `fig5`   | Figure 5 — compute-transfer & compute-compute overlap (matmul) |
//! | `table3` | Table 3 + Figures 13/14 — GR vs GraphChi vs X-Stream |
//! | `table4` | Table 4 — GR vs MapGraph vs CuSha (in-memory) |
//! | `fig15`  | Figure 15 — memcpy time, optimized vs unoptimized GR |
//! | `fig16`  | Figure 16 — frontier dynamics on out-of-memory graphs |
//! | `fig17`  | Figure 17 — % iterations below half of peak frontier |
//! | `all`    | everything above, in order |
//!
//! All binaries accept `--scale N` (default 64): datasets and device
//! memory shrink by the same divisor, preserving the out-of-memory split
//! of Table 1. Absolute times are simulated-K20c virtual time, not
//! wall-clock; the paper-vs-measured comparison lives in EXPERIMENTS.md.

use std::sync::Arc;

use gr_baselines::{BaselineStats, CuSha, GraphChi, MapGraph, XStream};
use gr_graph::{Dataset, GraphLayout};
use gr_observe::WallProfile;
use gr_observe::{Observer, RecordingSink};
use gr_sim::{OutOfMemory, Platform, SimDuration};
use graphreduce::{EngineError, GraphReduce, GraphSession, Options, RunStats, WallProfiler};

pub mod matmul;
pub mod trajectory;

/// The four evaluated algorithms (Section 6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    Bfs,
    Sssp,
    Pagerank,
    Cc,
}

impl Algo {
    pub const ALL: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Pagerank, Algo::Cc];

    pub fn name(self) -> &'static str {
        match self {
            Algo::Bfs => "BFS",
            Algo::Sssp => "SSSP",
            Algo::Pagerank => "PageRank",
            Algo::Cc => "CC",
        }
    }
}

/// Parse `--scale N` (or `GR_SCALE`); default 64.
pub fn scale_from_args() -> u64 {
    scale_from_args_or(64)
}

/// Parse `--scale N` (or `GR_SCALE`) with an experiment-specific default.
/// The in-memory experiments (Tables 2 and 4) default to a finer scale
/// (16): their graphs are small to begin with, and over-shrinking them
/// leaves fixed per-iteration costs dominating both engines, compressing
/// the speedup spread the paper reports.
pub fn scale_from_args_or(default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("GR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Build the layout an algorithm runs on: SSSP gets weights; CC gets a
/// symmetrized input (the paper stores undirected inputs as directed
/// pairs); BFS/PageRank run the directed graph as generated.
pub fn layout_for(ds: Dataset, algo: Algo, scale: u64) -> GraphLayout {
    let el = match algo {
        Algo::Sssp => ds.generate_weighted(scale),
        Algo::Cc => ds.generate(scale).symmetrize(),
        _ => ds.generate(scale),
    };
    GraphLayout::build(&el)
}

/// Traversal source: the max-out-degree vertex (a vertex that actually
/// reaches a large fraction of the graph, as the paper's BFS runs do).
pub fn default_source(layout: &GraphLayout) -> u32 {
    (0..layout.num_vertices())
        .max_by_key(|&v| layout.csr.degree(v))
        .unwrap_or(0)
}

/// PageRank configuration used across all engines/tables.
fn pagerank() -> gr_algorithms::PageRank {
    gr_algorithms::PageRank {
        damping: 0.85,
        epsilon: 1e-4,
        max_iters: 60,
    }
}

/// Run GraphReduce with `opts`; panics on planning failure (callers pick
/// platforms the plan fits).
pub fn run_gr(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
) -> Result<RunStats, EngineError> {
    run_gr_wall(
        algo,
        layout,
        platform,
        opts,
        Observer::disabled(),
        WallProfiler::disarmed(),
    )
}

/// [`run_gr`] with an [`Observer`] attached: spans, decisions, and
/// metrics flow to the observer's sink during the run.
pub fn run_gr_observed(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
    observer: Observer,
) -> Result<RunStats, EngineError> {
    run_gr_wall(
        algo,
        layout,
        platform,
        opts,
        observer,
        WallProfiler::disarmed(),
    )
}

/// The fully instrumented run: an [`Observer`] for the virtual timeline
/// and a [`WallProfiler`] for real host time. Pass the disabled/disarmed
/// handles to keep the zero-cost paths.
pub fn run_gr_wall(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
    observer: Observer,
    wall: WallProfiler,
) -> Result<RunStats, EngineError> {
    gr_with_resume(algo, layout, platform, opts, None, observer, wall)
}

/// [`run_gr_wall`], but resuming from the newest durable snapshot in
/// `dir` (see `GraphReduce::resume`) instead of starting cold.
pub fn resume_gr_wall(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
    dir: &std::path::Path,
    observer: Observer,
    wall: WallProfiler,
) -> Result<RunStats, EngineError> {
    gr_with_resume(algo, layout, platform, opts, Some(dir), observer, wall)
}

fn gr_result<P: graphreduce::GasProgram>(
    program: P,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
    resume_dir: Option<&std::path::Path>,
    observer: Observer,
    wall: WallProfiler,
) -> Result<RunStats, EngineError> {
    let gr = GraphReduce::new(program, layout, platform.clone(), opts)
        .with_observer(observer)
        .with_wall_profiler(wall);
    Ok(match resume_dir {
        Some(dir) => gr.resume(dir)?,
        None => gr.run()?,
    }
    .stats)
}

fn gr_with_resume(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    opts: Options,
    resume_dir: Option<&std::path::Path>,
    observer: Observer,
    wall: WallProfiler,
) -> Result<RunStats, EngineError> {
    let src = default_source(layout);
    match algo {
        Algo::Bfs => gr_result(
            gr_algorithms::Bfs::new(src),
            layout,
            platform,
            opts,
            resume_dir,
            observer,
            wall,
        ),
        Algo::Sssp => gr_result(
            gr_algorithms::Sssp::new(src),
            layout,
            platform,
            opts,
            resume_dir,
            observer,
            wall,
        ),
        Algo::Pagerank => gr_result(
            pagerank(),
            layout,
            platform,
            opts,
            resume_dir,
            observer,
            wall,
        ),
        Algo::Cc => gr_result(
            gr_algorithms::Cc,
            layout,
            platform,
            opts,
            resume_dir,
            observer,
            wall,
        ),
    }
}

/// Run one algorithm as a query against an existing [`GraphSession`] —
/// the serving-path equivalent of [`run_gr_wall`]: same source choice,
/// same programs, but partitioning/compression are the session's, built
/// once and shared across every query.
pub fn run_session_gr(
    algo: Algo,
    session: &GraphSession<'_>,
    observer: Observer,
    wall: WallProfiler,
) -> Result<RunStats, EngineError> {
    let src = default_source(session.layout());
    fn query<P: graphreduce::GasProgram>(
        session: &GraphSession<'_>,
        prog: &P,
        observer: Observer,
        wall: WallProfiler,
    ) -> Result<RunStats, EngineError> {
        Ok(session
            .query(prog)
            .with_observer(observer)
            .with_wall_profiler(wall)
            .run()?
            .stats)
    }
    match algo {
        Algo::Bfs => query(session, &gr_algorithms::Bfs::new(src), observer, wall),
        Algo::Sssp => query(session, &gr_algorithms::Sssp::new(src), observer, wall),
        Algo::Pagerank => query(session, &pagerank(), observer, wall),
        Algo::Cc => query(session, &gr_algorithms::Cc, observer, wall),
    }
}

/// A layout every algorithm can run on: weighted (SSSP) and symmetrized
/// (CC), so one session serves the whole sweep.
pub fn session_layout_for(ds: Dataset, scale: u64) -> GraphLayout {
    GraphLayout::build(&ds.generate_weighted(scale).symmetrize())
}

/// Run all four algorithms against **one** shared session (layout and
/// platform loaded once), asserting each report is byte-identical to a
/// fresh pre-refactor-style `GraphReduce` construction on the same
/// layout. Returns the per-algorithm stats in [`Algo::ALL`] order.
pub fn run_session_all(
    layout: &GraphLayout,
    platform: &Platform,
    opts: &Options,
) -> Result<Vec<(Algo, RunStats)>, EngineError> {
    let session = GraphSession::new(layout, platform.clone(), opts.clone());
    let mut out = Vec::with_capacity(Algo::ALL.len());
    for algo in Algo::ALL {
        let stats = run_session_gr(
            algo,
            &session,
            Observer::disabled(),
            WallProfiler::disarmed(),
        )?;
        let standalone = run_gr(algo, layout, platform, opts.clone())?;
        assert_eq!(
            stats.to_string(),
            standalone.to_string(),
            "{} report diverged between the shared session and a dedicated GraphReduce",
            algo.name()
        );
        out.push((algo, stats));
    }
    Ok(out)
}

/// Pin the host worker-thread count for this process: the vendored rayon
/// reads `RAYON_NUM_THREADS` at every fan-out, so this takes effect for
/// all subsequent parallel work (`--threads N` on the CLIs).
pub fn set_host_threads(n: usize) {
    std::env::set_var("RAYON_NUM_THREADS", n.max(1).to_string());
}

/// The thread count parallel host kernels will actually fan out to —
/// `--threads`/`RAYON_NUM_THREADS` if pinned, else the machine's
/// available parallelism. This is what benchmark reports must record.
pub fn effective_host_threads() -> usize {
    rayon::current_num_threads()
}

/// Value of `--<name> <value>` anywhere on the command line.
pub fn flag_value(name: &str) -> Option<String> {
    let mut it = std::env::args();
    while let Some(a) = it.next() {
        if a == name {
            return it.next();
        }
    }
    None
}

/// `--report <path>` / `--trace <path>` wiring shared by the bench
/// binaries and examples: hands out an [`Observer`] (recording only
/// when an artifact was requested — otherwise the engine keeps the
/// zero-cost disabled path), then writes the requested files from the
/// capture after the run.
pub struct RunArtifacts {
    pub report_path: Option<String>,
    pub trace_path: Option<String>,
    sink: Option<Arc<RecordingSink>>,
    observer: Observer,
}

impl RunArtifacts {
    /// Parse `--report` and `--trace` from the process arguments.
    pub fn from_env() -> Self {
        Self::from_paths(flag_value("--report"), flag_value("--trace"))
    }

    pub fn from_paths(report_path: Option<String>, trace_path: Option<String>) -> Self {
        let (observer, sink) = if report_path.is_some() || trace_path.is_some() {
            let (obs, sink) = Observer::recording();
            (obs, Some(sink))
        } else {
            (Observer::disabled(), None)
        };
        RunArtifacts {
            report_path,
            trace_path,
            sink,
            observer,
        }
    }

    /// True when any artifact was requested.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The observer to attach to the run (disabled when no artifact was
    /// requested).
    pub fn observer(&self) -> Observer {
        self.observer.clone()
    }

    /// Write the requested artifacts. `stats` feeds the run report; a
    /// trace needs only the capture. Returns the written paths.
    pub fn write(&self, stats: Option<&RunStats>) -> std::io::Result<Vec<String>> {
        self.write_with_wall(stats, None)
    }

    /// [`RunArtifacts::write`] plus an optional wall profile: when given,
    /// the Chrome trace gains the real-time `"wall"` track beside the
    /// virtual sim/engine tracks.
    pub fn write_with_wall(
        &self,
        stats: Option<&RunStats>,
        wall: Option<&WallProfile>,
    ) -> std::io::Result<Vec<String>> {
        let mut written = Vec::new();
        let Some(sink) = &self.sink else {
            return Ok(written);
        };
        let rec = sink.recorded();
        if let Some(path) = &self.report_path {
            match stats {
                Some(stats) => {
                    std::fs::write(path, graphreduce::report::run_report(stats, &rec))?;
                    written.push(path.clone());
                }
                None => eprintln!(
                    "--report needs single-device RunStats; skipping {path} (use --trace here)"
                ),
            }
        }
        if let Some(path) = &self.trace_path {
            std::fs::write(path, gr_observe::export::chrome_trace_with_wall(&rec, wall))?;
            written.push(path.clone());
        }
        Ok(written)
    }

    /// Like [`RunArtifacts::write`], but exits with a clean CLI error
    /// instead of bubbling an `io::Error` for the caller to panic on.
    pub fn write_or_exit(&self, stats: Option<&RunStats>) -> Vec<String> {
        self.write(stats).unwrap_or_else(|e| {
            eprintln!("error: failed to write --report/--trace output: {e}");
            std::process::exit(1);
        })
    }
}

/// Run the GraphChi-style engine.
pub fn run_graphchi(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
    scale: u64,
) -> BaselineStats {
    let chi = GraphChi::scaled(scale);
    let src = default_source(layout);
    match algo {
        Algo::Bfs => {
            chi.run(&gr_algorithms::Bfs::new(src), layout, &platform.host)
                .stats
        }
        Algo::Sssp => {
            chi.run(&gr_algorithms::Sssp::new(src), layout, &platform.host)
                .stats
        }
        Algo::Pagerank => chi.run(&pagerank(), layout, &platform.host).stats,
        Algo::Cc => chi.run(&gr_algorithms::Cc, layout, &platform.host).stats,
    }
}

/// Run the X-Stream-style engine.
pub fn run_xstream(algo: Algo, layout: &GraphLayout, platform: &Platform) -> BaselineStats {
    let xs = XStream::default();
    let src = default_source(layout);
    match algo {
        Algo::Bfs => {
            xs.run(&gr_algorithms::Bfs::new(src), layout, &platform.host)
                .stats
        }
        Algo::Sssp => {
            xs.run(&gr_algorithms::Sssp::new(src), layout, &platform.host)
                .stats
        }
        Algo::Pagerank => xs.run(&pagerank(), layout, &platform.host).stats,
        Algo::Cc => xs.run(&gr_algorithms::Cc, layout, &platform.host).stats,
    }
}

/// Run the CuSha-style engine (fails on out-of-memory graphs).
pub fn run_cusha(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
) -> Result<BaselineStats, OutOfMemory> {
    let cu = CuSha::default();
    let src = default_source(layout);
    Ok(match algo {
        Algo::Bfs => {
            cu.run(&gr_algorithms::Bfs::new(src), layout, platform)?
                .stats
        }
        Algo::Sssp => {
            cu.run(&gr_algorithms::Sssp::new(src), layout, platform)?
                .stats
        }
        Algo::Pagerank => cu.run(&pagerank(), layout, platform)?.stats,
        Algo::Cc => cu.run(&gr_algorithms::Cc, layout, platform)?.stats,
    })
}

/// Run the MapGraph-style engine (fails on out-of-memory graphs).
pub fn run_mapgraph(
    algo: Algo,
    layout: &GraphLayout,
    platform: &Platform,
) -> Result<BaselineStats, OutOfMemory> {
    let mg = MapGraph::default();
    let src = default_source(layout);
    Ok(match algo {
        Algo::Bfs => {
            mg.run(&gr_algorithms::Bfs::new(src), layout, platform)?
                .stats
        }
        Algo::Sssp => {
            mg.run(&gr_algorithms::Sssp::new(src), layout, platform)?
                .stats
        }
        Algo::Pagerank => mg.run(&pagerank(), layout, platform)?.stats,
        Algo::Cc => mg.run(&gr_algorithms::Cc, layout, platform)?.stats,
    })
}

/// Frontier sizes per iteration (for Figures 3/16/17), via GraphReduce.
pub fn frontier_trace(algo: Algo, layout: &GraphLayout, platform: &Platform) -> Vec<u64> {
    run_gr(algo, layout, platform, Options::optimized())
        .map(|s| s.frontier_sizes())
        .unwrap_or_default()
}

/// Milliseconds with 3 decimals, for table cells.
pub fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Ratio formatted as the paper prints speedups.
pub fn speedup(base: SimDuration, ours: SimDuration) -> String {
    if ours.is_zero() {
        return "-".into();
    }
    format!("{:.1}x", base.as_secs_f64() / ours.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_respect_algorithm_requirements() {
        let scale = 2048;
        let sssp = layout_for(Dataset::Ak2010, Algo::Sssp, scale);
        assert!(sssp.weights.iter().any(|&w| w != 1.0));
        let cc = layout_for(Dataset::Webbase1M, Algo::Cc, scale);
        let bfs = layout_for(Dataset::Webbase1M, Algo::Bfs, scale);
        assert!(cc.num_edges() > bfs.num_edges()); // symmetrized
    }

    #[test]
    fn default_source_has_max_degree() {
        let layout = layout_for(Dataset::KronLogn20, Algo::Bfs, 4096);
        let s = default_source(&layout);
        let d = layout.csr.degree(s);
        assert!((0..layout.num_vertices()).all(|v| layout.csr.degree(v) <= d));
    }

    #[test]
    fn all_engines_run_one_cell() {
        // One Table 3 cell end-to-end at tiny scale: every engine completes
        // and GR beats the CPU engines.
        let scale = 1024;
        let plat = Platform::paper_node_scaled(scale);
        let layout = layout_for(Dataset::Orkut, Algo::Bfs, scale);
        let gr = run_gr(Algo::Bfs, &layout, &plat, Options::optimized()).unwrap();
        let chi = run_graphchi(Algo::Bfs, &layout, &plat, scale);
        let xs = run_xstream(Algo::Bfs, &layout, &plat);
        assert!(
            gr.elapsed < chi.elapsed,
            "GR {:?} vs GraphChi {:?}",
            gr.elapsed,
            chi.elapsed
        );
        assert!(
            gr.elapsed < xs.elapsed,
            "GR {:?} vs X-Stream {:?}",
            gr.elapsed,
            xs.elapsed
        );
    }

    #[test]
    fn gpu_engines_oom_on_out_of_memory_datasets() {
        let scale = 1024;
        let plat = Platform::paper_node_scaled(scale);
        let layout = layout_for(Dataset::Uk2002, Algo::Bfs, scale);
        assert!(run_cusha(Algo::Bfs, &layout, &plat).is_err());
        assert!(run_mapgraph(Algo::Bfs, &layout, &plat).is_err());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(SimDuration::from_micros(1500)), "1.500");
        assert_eq!(
            speedup(SimDuration::from_millis(30), SimDuration::from_millis(10)),
            "3.0x"
        );
        assert_eq!(
            speedup(SimDuration::from_millis(30), SimDuration::ZERO),
            "-"
        );
    }
}

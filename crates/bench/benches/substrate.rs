//! Wall-clock microbenches of the substrate itself (simulator and graph
//! containers): these measure the *reproduction's* performance — how fast
//! the discrete-event scheduler, the layout builder, the partitioner, and
//! the frontier bitmaps run on the host — to keep the harness usable at
//! larger `--scale` values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gr_graph::{gen, partition_even_edges, Bitmap, GraphLayout};
use gr_sim::{Capacity, Scheduler, SimDuration, SimTime};

fn scheduler_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/scheduler");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut s = Scheduler::new();
                let r1 = s.add_resource("h2d", Capacity::Finite(1));
                let r2 = s.add_resource("k", Capacity::Finite(16));
                let mut prev = None;
                for i in 0..n {
                    let deps: Vec<_> = prev.into_iter().collect();
                    let r = if i % 2 == 0 { r1 } else { r2 };
                    prev = Some(s.submit(
                        r,
                        SimDuration::from_nanos(100 + (i as u64 % 7) * 13),
                        deps,
                        SimTime::ZERO,
                        "op",
                    ));
                }
                s.flush()
            })
        });
    }
    g.finish();
}

fn layout_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/layout-build");
    for &edges in &[100_000u64, 1_000_000] {
        let el = gen::rmat_g500(17, edges, 3);
        g.throughput(Throughput::Elements(edges));
        g.bench_function(BenchmarkId::from_parameter(edges), |b| {
            b.iter(|| GraphLayout::build(&el))
        });
    }
    g.finish();
}

fn partitioner(c: &mut Criterion) {
    let layout = GraphLayout::build(&gen::rmat_g500(17, 1_000_000, 3));
    let mut g = c.benchmark_group("substrate/partition");
    for &p in &[2usize, 16, 128] {
        g.bench_function(BenchmarkId::from_parameter(p), |b| {
            b.iter(|| partition_even_edges(&layout, p))
        });
    }
    g.finish();
}

fn bitmap_ops(c: &mut Criterion) {
    let n = 1_000_000u32;
    let mut g = c.benchmark_group("substrate/bitmap");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("set-sweep", |b| {
        b.iter(|| {
            let mut bm = Bitmap::new(n);
            for i in (0..n).step_by(3) {
                bm.set(i);
            }
            bm.count()
        })
    });
    let mut bm = Bitmap::new(n);
    for i in (0..n).step_by(7) {
        bm.set(i);
    }
    g.bench_function("count-range", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for lo in (0..n).step_by(65_536) {
                total += bm.count_range(lo, (lo + 50_000).min(n));
            }
            total
        })
    });
    g.bench_function("iter-set", |b| b.iter(|| bm.iter_set().sum::<u32>()));
    g.finish();
}

fn generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/generators");
    g.throughput(Throughput::Elements(500_000));
    g.bench_function("rmat-500k", |b| b.iter(|| gen::rmat_g500(16, 500_000, 11)));
    g.bench_function("stencil3d-500k", |b| {
        b.iter(|| gen::stencil3d(30_000, 500_000, 11))
    });
    g.bench_function("grid2d-500k", |b| {
        b.iter(|| gen::grid2d_with_edges(400_000, 500_000, 11))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scheduler_throughput, layout_build, partitioner, bitmap_ops, generators
}
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out, reporting
//! simulated time via `iter_custom`:
//!
//! * hybrid vs pure vertex-/edge-centric gather (Section 3.1);
//! * spray width sweep (Section 5.1);
//! * concurrent-shard count `K` vs the Equation (1) derivation (Section 4.3);
//! * CTA load balancing on skewed vs uniform inputs (Section 4.4);
//! * even-edge vs even-vertex partition logic (Section 4.2).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gr_bench::{layout_for, run_gr, Algo};
use gr_graph::{gen, Dataset, GraphLayout};
use gr_sim::{Platform, SimDuration};
use graphreduce::{GatherMode, Options};

/// Scale a simulated duration by criterion's iteration count without
/// overflow (warmup can request absurd `iters` for cheap closures; the
/// linear-regression estimate stays exact since totals remain d x iters).
fn scaled(d: SimDuration, iters: u64) -> Duration {
    Duration::try_from_secs_f64(d.as_secs_f64() * iters as f64).unwrap_or(Duration::MAX)
}

fn bench_opt(
    c: &mut Criterion,
    group: &str,
    id: BenchmarkId,
    layout: &GraphLayout,
    plat: &Platform,
    algo: Algo,
    opts: Options,
) {
    c.benchmark_group(group).bench_function(id, |b| {
        b.iter_custom(|iters| {
            let d = run_gr(algo, layout, plat, opts.clone()).unwrap().elapsed;
            scaled(d, iters)
        })
    });
}

/// Section 3.1: the hybrid model vs pure vertex- or edge-centric gathers,
/// on a skewed (kron) input where the difference is largest.
fn gather_mode(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::KronLogn21, Algo::Cc, scale);
    let plat = Platform::paper_node_scaled(scale);
    for (name, mode) in [
        ("hybrid", GatherMode::Hybrid),
        ("vertex-centric", GatherMode::VertexCentric),
        ("edge-atomic", GatherMode::EdgeCentricAtomic),
    ] {
        bench_opt(
            c,
            "ablation/gather-mode",
            BenchmarkId::from_parameter(name),
            &layout,
            &plat,
            Algo::Cc,
            Options::optimized().with_gather_mode(mode),
        );
    }
}

/// Section 5.1: spray width sweep. Uses a heavily undersized device so
/// shards (and their sub-array copies) are small — the regime where copy
/// issue overheads matter and spraying them across Hyper-Q queues pays.
fn spray_width(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::CoAuthorsDblp, Algo::Cc, scale);
    let plat = Platform::paper_node_scaled(1 << 13);
    bench_opt(
        c,
        "ablation/spray",
        BenchmarkId::from_parameter("off"),
        &layout,
        &plat,
        Algo::Bfs,
        Options::optimized().with_spray(false),
    );
    for w in [2u32, 4, 8, 16] {
        let mut o = Options::optimized();
        o.spray_width = w;
        bench_opt(
            c,
            "ablation/spray",
            BenchmarkId::from_parameter(w),
            &layout,
            &plat,
            Algo::Bfs,
            o,
        );
    }
}

/// Section 4.3: concurrent shards K = 1, 2 (the paper's derivation), 4.
fn concurrent_shards(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::Nlpkkt160, Algo::Cc, scale);
    let plat = Platform::paper_node_scaled(scale);
    for k in [1u32, 2, 4] {
        bench_opt(
            c,
            "ablation/concurrent-shards",
            BenchmarkId::from_parameter(k),
            &layout,
            &plat,
            Algo::Cc,
            Options::optimized().with_concurrent_shards(k),
        );
    }
}

/// Section 4.4: CTA load balancing on a skewed (R-MAT) vs uniform input.
fn cta_balance(c: &mut Criterion) {
    let scale = 64;
    let plat = Platform::paper_node_scaled(scale);
    let skewed = layout_for(Dataset::KronLogn21, Algo::Cc, scale);
    let uniform = GraphLayout::build(
        &gen::uniform(
            Dataset::KronLogn21.vertices(scale),
            Dataset::KronLogn21.edges(scale),
            7,
        )
        .symmetrize(),
    );
    for (input, layout) in [("skewed", &skewed), ("uniform", &uniform)] {
        for (mode, on) in [("cta-on", true), ("cta-off", false)] {
            bench_opt(
                c,
                "ablation/cta-balance",
                BenchmarkId::new(input, mode),
                layout,
                &plat,
                Algo::Cc,
                Options::optimized().with_cta_load_balance(on),
            );
        }
    }
}

/// Section 4.2: load-balanced even-edge partitioning vs naive even-vertex
/// intervals. The engine plans with even-edge internally; we approximate
/// the naive logic by forcing many more shards than needed (which even-edge
/// balances and naive splitting would not) — the measurable effect of the
/// Partition Logic Table plug-in point.
fn shard_count_sweep(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::Orkut, Algo::Cc, scale);
    let plat = Platform::paper_node_scaled(scale);
    for p in [4usize, 8, 16, 64] {
        bench_opt(
            c,
            "ablation/shard-count",
            BenchmarkId::from_parameter(p),
            &layout,
            &plat,
            Algo::Cc,
            Options::optimized().with_num_shards(p),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = gather_mode, spray_width, concurrent_shards, cta_balance, shard_count_sweep
}
criterion_main!(benches);

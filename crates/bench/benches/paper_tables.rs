//! Criterion benches mirroring the paper's tables and figures.
//!
//! These report **simulated K20c time** (via `iter_custom`), so `cargo
//! bench` output is directly comparable across commits: a regression here
//! means a cost model or an engine's data-movement behaviour changed, i.e.
//! a figure of the reproduction bent.
//!
//! One representative cell per table/figure; the full grids come from the
//! `table*`/`fig*` binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gr_bench::matmul::{run_matmul, Scheme};
use gr_bench::{layout_for, run_cusha, run_gr, run_graphchi, run_mapgraph, run_xstream, Algo};
use gr_graph::Dataset;
use gr_sim::xfer::{transfer_access_time, AccessPattern, TransferMode};
use gr_sim::{Platform, SimDuration};
use graphreduce::Options;

/// Scale a simulated duration by criterion's iteration count without
/// overflow (warmup can request absurd `iters` for cheap closures; the
/// linear-regression estimate stays exact since totals remain d x iters).
fn scaled(d: SimDuration, iters: u64) -> Duration {
    Duration::try_from_secs_f64(d.as_secs_f64() * iters as f64).unwrap_or(Duration::MAX)
}

/// Bench a closure that yields a simulated duration.
fn sim_bench<F: FnMut() -> SimDuration>(c: &mut Criterion, name: &str, id: &str, mut f: F) {
    c.benchmark_group(name)
        .bench_function(id, |b| b.iter_custom(|iters| scaled(f(), iters)));
}

/// Table 2 cell: X-Stream vs CuSha, BFS on kron_g500-logn20.
fn table2(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::KronLogn20, Algo::Bfs, scale);
    let plat = Platform::paper_node();
    sim_bench(c, "table2/kron20-bfs", "x-stream", || {
        run_xstream(Algo::Bfs, &layout, &plat).elapsed
    });
    sim_bench(c, "table2/kron20-bfs", "cusha", || {
        run_cusha(Algo::Bfs, &layout, &plat).unwrap().elapsed
    });
}

/// Figure 4: the six transfer-mode x access-pattern cells.
fn fig4(c: &mut Criterion) {
    let p = Platform::paper_node();
    let n = 100_000_000u64;
    let mut g = c.benchmark_group("fig4/100M-doubles");
    for (name, mode) in [
        ("explicit", TransferMode::Explicit),
        ("pinned", TransferMode::PinnedUva),
        ("managed", TransferMode::Managed),
    ] {
        for (pat_name, pat) in [
            ("seq", AccessPattern::Sequential),
            ("rand", AccessPattern::Random),
        ] {
            g.bench_function(BenchmarkId::new(name, pat_name), |b| {
                b.iter_custom(|iters| {
                    // Evaluate the model once per requested iteration so
                    // criterion's wall-clock warmup sees iters-proportional
                    // cost (a constant-time closure makes it explode iters).
                    let mut d = SimDuration::ZERO;
                    for _ in 0..iters {
                        d = std::hint::black_box(transfer_access_time(
                            &p.pcie,
                            &p.device,
                            mode,
                            pat,
                            n * 8,
                            n,
                            8,
                        ));
                    }
                    scaled(d, iters)
                })
            });
        }
    }
    g.finish();
}

/// Figure 5: the three matmul overlap schemes at n = 2048.
fn fig5(c: &mut Criterion) {
    let p = Platform::paper_node();
    for scheme in Scheme::ALL {
        sim_bench(c, "fig5/matmul-2048", scheme.name(), || {
            run_matmul(&p, 2048, 50, scheme)
        });
    }
}

/// Table 3 cell: the three out-of-memory engines, BFS on orkut.
fn table3(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::Orkut, Algo::Bfs, scale);
    let plat = Platform::paper_node_scaled(scale);
    sim_bench(c, "table3/orkut-bfs", "graphreduce", || {
        run_gr(Algo::Bfs, &layout, &plat, Options::optimized())
            .unwrap()
            .elapsed
    });
    sim_bench(c, "table3/orkut-bfs", "graphchi", || {
        run_graphchi(Algo::Bfs, &layout, &plat, scale).elapsed
    });
    sim_bench(c, "table3/orkut-bfs", "x-stream", || {
        run_xstream(Algo::Bfs, &layout, &plat).elapsed
    });
}

/// Table 4 cell: the three in-memory engines, PageRank on kron-logn20.
fn table4(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::KronLogn20, Algo::Pagerank, scale);
    let plat = Platform::paper_node();
    sim_bench(c, "table4/kron20-pr", "graphreduce", || {
        run_gr(Algo::Pagerank, &layout, &plat, Options::optimized())
            .unwrap()
            .elapsed
    });
    sim_bench(c, "table4/kron20-pr", "cusha", || {
        run_cusha(Algo::Pagerank, &layout, &plat).unwrap().elapsed
    });
    sim_bench(c, "table4/kron20-pr", "mapgraph", || {
        run_mapgraph(Algo::Pagerank, &layout, &plat)
            .unwrap()
            .elapsed
    });
}

/// Figure 15 cell: optimized vs unoptimized GR, CC on cage15 (memcpy time).
fn fig15(c: &mut Criterion) {
    let scale = 64;
    let layout = layout_for(Dataset::Cage15, Algo::Cc, scale);
    let plat = Platform::paper_node_scaled(scale);
    sim_bench(c, "fig15/cage15-cc-memcpy", "optimized", || {
        run_gr(Algo::Cc, &layout, &plat, Options::optimized())
            .unwrap()
            .memcpy_time
    });
    sim_bench(c, "fig15/cage15-cc-memcpy", "unoptimized", || {
        run_gr(Algo::Cc, &layout, &plat, Options::unoptimized())
            .unwrap()
            .memcpy_time
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = table2, fig4, fig5, table3, table4, fig15
}
criterion_main!(benches);

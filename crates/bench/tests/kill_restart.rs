//! Kill-restart smoke for the bench CLI: runs killed by the armed
//! `kill:<iteration>` fault plan — and by a real out-of-band SIGKILL —
//! must exit distinguishably, leave intact snapshots behind, and
//! `--resume` to a run report bit-identical to the uninterrupted oracle
//! (same `state_fingerprint`). The CI chaos job drives the same flow
//! from the workflow file; see docs/DURABILITY.md.

use std::path::{Path, PathBuf};
use std::process::Command;

const RUN: &str = env!("CARGO_BIN_EXE_run");

/// Exit code the CLI reserves for a run killed by `--faults kill:<K>`.
const EXIT_KILLED: i32 = 9;

fn scratch(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gr-killrestart-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(RUN)
        .args(args)
        .output()
        .expect("spawn bench run binary")
}

/// The `"state_fingerprint": "0x…"` line of a run report.
fn fingerprint_of(report: &Path) -> String {
    let text = std::fs::read_to_string(report).unwrap();
    text.lines()
        .find(|l| l.contains("\"state_fingerprint\""))
        .unwrap_or_else(|| panic!("no state_fingerprint in {}", report.display()))
        .trim()
        .trim_end_matches(',')
        .to_string()
}

fn snapshot_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "grck")
            })
            .count()
        })
        .unwrap_or(0)
}

#[test]
fn fault_plan_kill_exits_9_and_resume_matches_oracle() {
    let dir = scratch("faultkill");
    let ckpt = dir.join("ckpt");
    let base = [
        "--algo",
        "pagerank",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
    ];
    let mut kill_args: Vec<&str> = base.to_vec();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    kill_args.extend(["--checkpoint-dir", &ckpt_s, "--faults", "kill:2"]);
    let killed = run_cli(&kill_args);
    assert_eq!(
        killed.status.code(),
        Some(EXIT_KILLED),
        "stderr: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("--resume"),
        "the kill message must point at the restart path"
    );
    assert!(
        snapshot_count(&ckpt) >= 1,
        "the killed run must leave snapshots to resume from"
    );

    let resumed_report = dir.join("resumed.json");
    let mut resume_args: Vec<&str> = base.to_vec();
    let resumed_s = resumed_report.to_str().unwrap().to_string();
    resume_args.extend([
        "--checkpoint-dir",
        &ckpt_s,
        "--resume",
        "--report",
        &resumed_s,
    ]);
    let resumed = run_cli(&resume_args);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let oracle_report = dir.join("oracle.json");
    let oracle_ckpt = dir.join("oracle-ckpt");
    let mut oracle_args: Vec<&str> = base.to_vec();
    let oracle_ckpt_s = oracle_ckpt.to_str().unwrap().to_string();
    let oracle_s = oracle_report.to_str().unwrap().to_string();
    oracle_args.extend(["--checkpoint-dir", &oracle_ckpt_s, "--report", &oracle_s]);
    let oracle = run_cli(&oracle_args);
    assert!(
        oracle.status.success(),
        "oracle failed: {}",
        String::from_utf8_lossy(&oracle.stderr)
    );

    assert_eq!(
        fingerprint_of(&resumed_report),
        fingerprint_of(&oracle_report),
        "resumed run must converge bit-identically to the oracle"
    );
}

#[test]
fn real_sigkill_mid_run_resumes_to_oracle_fingerprint() {
    let dir = scratch("sigkill");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    // A graph big enough that durable-every-iteration snapshots appear
    // while the run is still in flight.
    let base = [
        "--algo",
        "pagerank",
        "--dataset",
        "uk-2002",
        "--scale",
        "512",
        "--engine",
        "gr",
    ];
    let mut child_args: Vec<&str> = base.to_vec();
    child_args.extend(["--checkpoint-dir", &ckpt_s]);
    let mut child = Command::new(RUN)
        .args(&child_args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn bench run binary");
    // Kill as soon as the first snapshot lands (a hard SIGKILL: no
    // cleanup, no atexit — exactly the crash the format must survive).
    // If the run finishes first, resume-from-completion is still a valid
    // leg of the same contract.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if snapshot_count(&ckpt) >= 1 {
            let _ = child.kill();
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no snapshot appeared within the deadline"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.wait().expect("reap child");
    assert!(
        snapshot_count(&ckpt) >= 1,
        "snapshots must exist whether or not the kill landed mid-run"
    );

    let resumed_report = dir.join("resumed.json");
    let resumed_s = resumed_report.to_str().unwrap().to_string();
    let mut resume_args: Vec<&str> = base.to_vec();
    resume_args.extend([
        "--checkpoint-dir",
        &ckpt_s,
        "--resume",
        "--report",
        &resumed_s,
    ]);
    let resumed = run_cli(&resume_args);
    assert!(
        resumed.status.success(),
        "resume after SIGKILL failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let oracle_report = dir.join("oracle.json");
    let oracle_ckpt = dir.join("oracle-ckpt");
    let oracle_ckpt_s = oracle_ckpt.to_str().unwrap().to_string();
    let oracle_s = oracle_report.to_str().unwrap().to_string();
    let mut oracle_args: Vec<&str> = base.to_vec();
    oracle_args.extend(["--checkpoint-dir", &oracle_ckpt_s, "--report", &oracle_s]);
    let oracle = run_cli(&oracle_args);
    assert!(
        oracle.status.success(),
        "oracle failed: {}",
        String::from_utf8_lossy(&oracle.stderr)
    );
    assert_eq!(
        fingerprint_of(&resumed_report),
        fingerprint_of(&oracle_report),
        "SIGKILL mid-run must not change where the computation converges"
    );
}

/// The `state fingerprint: 0x…` line a durable run prints to stdout
/// (the multi-GPU path has no single-device run report, so the CLI
/// summary is the machine-readable surface).
fn stdout_fingerprint(out: &std::process::Output) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    text.lines()
        .find(|l| l.trim_start().starts_with("state fingerprint:"))
        .unwrap_or_else(|| panic!("no state fingerprint line in stdout: {text}"))
        .trim()
        .to_string()
}

#[test]
fn multi_gpu_kill_exits_9_and_resume_matches_oracle() {
    let dir = scratch("multikill");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let base = [
        "--algo",
        "pagerank",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
        "--gpus",
        "2",
    ];
    let mut kill_args: Vec<&str> = base.to_vec();
    kill_args.extend(["--checkpoint-dir", &ckpt_s, "--faults", "kill:2"]);
    let killed = run_cli(&kill_args);
    assert_eq!(
        killed.status.code(),
        Some(EXIT_KILLED),
        "stderr: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("--resume"),
        "the kill message must point at the restart path"
    );
    assert!(
        snapshot_count(&ckpt) >= 1,
        "the killed multi run must leave snapshots to resume from"
    );

    let mut resume_args: Vec<&str> = base.to_vec();
    resume_args.extend(["--checkpoint-dir", &ckpt_s, "--resume"]);
    let resumed = run_cli(&resume_args);
    assert!(
        resumed.status.success(),
        "multi resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&resumed.stdout).contains("1 restored"),
        "the durability line must count the restore"
    );

    let oracle_ckpt = dir.join("oracle-ckpt");
    let oracle_ckpt_s = oracle_ckpt.to_str().unwrap().to_string();
    let mut oracle_args: Vec<&str> = base.to_vec();
    oracle_args.extend(["--checkpoint-dir", &oracle_ckpt_s]);
    let oracle = run_cli(&oracle_args);
    assert!(
        oracle.status.success(),
        "oracle failed: {}",
        String::from_utf8_lossy(&oracle.stderr)
    );
    assert_eq!(
        stdout_fingerprint(&resumed),
        stdout_fingerprint(&oracle),
        "multi resume must converge bit-identically to the oracle"
    );
}

#[test]
fn multi_gpu_resume_on_fewer_gpus_matches_that_width() {
    // Checkpoint on 4 GPUs, SIGKILL-free fault kill, resume on 2:
    // placement is re-derived, and the answer matches an uninterrupted
    // 2-GPU run.
    let dir = scratch("multishrink");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let killed = run_cli(&[
        "--algo",
        "cc",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
        "--gpus",
        "4",
        "--checkpoint-dir",
        &ckpt_s,
        "--faults",
        "kill:2",
    ]);
    assert_eq!(killed.status.code(), Some(EXIT_KILLED));
    let resumed = run_cli(&[
        "--algo",
        "cc",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
        "--gpus",
        "2",
        "--checkpoint-dir",
        &ckpt_s,
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "fewer-GPU resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let oracle_ckpt_s = dir.join("oracle-ckpt").to_str().unwrap().to_string();
    let oracle = run_cli(&[
        "--algo",
        "cc",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
        "--gpus",
        "2",
        "--checkpoint-dir",
        &oracle_ckpt_s,
    ]);
    assert!(oracle.status.success());
    assert_eq!(
        stdout_fingerprint(&resumed),
        stdout_fingerprint(&oracle),
        "resuming on fewer devices must match that device count's oracle"
    );
}

#[test]
fn delta_checkpoints_resume_and_write_fewer_bytes() {
    let dir = scratch("delta");
    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let base = [
        "--algo",
        "bfs",
        "--dataset",
        "ak2010",
        "--scale",
        "64",
        "--engine",
        "gr",
        "--gpus",
        "2",
    ];
    let mut kill_args: Vec<&str> = base.to_vec();
    kill_args.extend([
        "--checkpoint-dir",
        &ckpt_s,
        "--checkpoint-delta",
        "--checkpoint-full-every",
        "3",
        "--faults",
        "kill:3",
    ]);
    let killed = run_cli(&kill_args);
    assert_eq!(
        killed.status.code(),
        Some(EXIT_KILLED),
        "stderr: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    let mut resume_args: Vec<&str> = base.to_vec();
    resume_args.extend([
        "--checkpoint-dir",
        &ckpt_s,
        "--checkpoint-delta",
        "--checkpoint-full-every",
        "3",
        "--resume",
    ]);
    let resumed = run_cli(&resume_args);
    assert!(
        resumed.status.success(),
        "delta resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("deltas ("),
        "the durability line must split full vs delta bytes: {stdout}"
    );
    let oracle_ckpt_s = dir.join("oracle-ckpt").to_str().unwrap().to_string();
    let mut oracle_args: Vec<&str> = base.to_vec();
    oracle_args.extend(["--checkpoint-dir", &oracle_ckpt_s]);
    let oracle = run_cli(&oracle_args);
    assert!(oracle.status.success());
    assert_eq!(
        stdout_fingerprint(&resumed),
        stdout_fingerprint(&oracle),
        "delta-chain resume must land on the full-snapshot oracle's fingerprint"
    );
}

#[test]
fn invalid_flag_combinations_are_usage_errors() {
    let dir = scratch("usage");
    let ckpt_s = dir.join("ckpt").to_str().unwrap().to_string();
    let cases: Vec<Vec<&str>> = vec![
        // --resume without a directory to resume from.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--resume",
        ],
        // --checkpoint-every without --checkpoint-dir.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--checkpoint-every",
            "2",
        ],
        // Zero interval is meaningless.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--checkpoint-dir",
            &ckpt_s,
            "--checkpoint-every",
            "0",
        ],
        // Durability is a gr-engine feature (any GPU count).
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "xstream",
            "--checkpoint-dir",
            &ckpt_s,
        ],
        // --checkpoint-delta without a directory to write into.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--checkpoint-delta",
        ],
        // --checkpoint-full-every modifies delta mode; alone it's noise.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--checkpoint-dir",
            &ckpt_s,
            "--checkpoint-full-every",
            "3",
        ],
        // A zero full cadence is meaningless.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--checkpoint-dir",
            &ckpt_s,
            "--checkpoint-delta",
            "--checkpoint-full-every",
            "0",
        ],
        // The spill store stays single-GPU.
        vec![
            "--algo",
            "bfs",
            "--dataset",
            "ak2010",
            "--engine",
            "gr",
            "--gpus",
            "2",
            "--spill-dir",
            &ckpt_s,
        ],
    ];
    for args in &cases {
        let out = run_cli(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {:?} must be a usage error, stderr: {}",
            args,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

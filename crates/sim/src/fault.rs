//! Deterministic, seed-driven fault injection for the virtual accelerator.
//!
//! A [`FaultPlan`] describes *when* the device misbehaves, in terms that are
//! fully deterministic under replay:
//!
//! * **Transient op faults** — the `n`-th H2D/D2H copy, kernel launch, or
//!   allocation (zero-based, counted per class over the device lifetime)
//!   fails for `count` consecutive attempts. Because the per-class counter
//!   advances on every attempt, a retry or a rollback-and-replay eventually
//!   marches past the window: recovery always converges on finite plans.
//! * **ECC-retry stalls** — the `n`-th kernel launch succeeds but pays an
//!   extra [`crate::config::DeviceConfig::ecc_retry_stall`] latency tail
//!   (the driver transparently replays the access).
//! * **PCIe bandwidth degradation** — copies submitted while the device's
//!   barrier clock is inside a window run at `factor`× the nominal copy
//!   time (link contention / retraining).
//! * **Permanent device loss** — once the barrier clock reaches
//!   `lose_device_at_ns`, every subsequent copy/launch fails with
//!   [`DeviceFault::Lost`], forever.
//! * **Process kill** — `kill_at_iteration(K)` hard-aborts the whole run
//!   at iteration boundary `K` (the chaos stand-in for SIGKILL). Not a
//!   device fault at all: nothing retries it, the engine unwinds, and only
//!   a durable checkpoint makes the work resumable.
//! * **Storage I/O faults** — the `n`-th spill read, spill write, or
//!   checkpoint write (zero-based, counted per class over the run) fails
//!   for `count` consecutive attempts, either as a clean transient error
//!   or as a *torn write* (the bytes that reach disk are truncated before
//!   the error surfaces). Same monotone-counter discipline as the device
//!   windows, so retry always marches past a finite window.
//!
//! Plans are either built explicitly (chaos tests pin exact schedules) or
//! derived from a seed via an inline SplitMix64 generator — same seed, same
//! plan, same timeline, no external RNG dependency. [`FaultPlan::none()`]
//! is the default and is checked with a single branch on the hot paths, so
//! disabled fault injection adds no ops, no stalls, and no timing changes.

use std::fmt;

use crate::time::SimDuration;

/// Operation classes a transient fault window can target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOp {
    /// Host-to-device copies (explicit and zero-copy).
    H2d,
    /// Device-to-host copies.
    D2h,
    /// Kernel launches.
    Launch,
    /// Device memory allocations.
    Alloc,
}

impl FaultOp {
    /// Stable name used in metrics labels and decision records.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::H2d => "h2d",
            FaultOp::D2h => "d2h",
            FaultOp::Launch => "launch",
            FaultOp::Alloc => "alloc",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultOp::H2d => 0,
            FaultOp::D2h => 1,
            FaultOp::Launch => 2,
            FaultOp::Alloc => 3,
        }
    }
}

/// Storage-plane operation classes an I/O fault window can target.
///
/// These are host-side disk operations (shard spill, durable
/// checkpoints), not device ops: they never touch the virtual timeline,
/// only the storage layer's retry/degradation machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoOp {
    /// Reading a spilled shard back from the shard store.
    SpillRead,
    /// Writing an evicted shard to the shard store.
    SpillWrite,
    /// Writing a durable checkpoint snapshot.
    CheckpointWrite,
}

impl IoOp {
    /// Stable name used in decision records, e.g. `"spill.read"`.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::SpillRead => "spill.read",
            IoOp::SpillWrite => "spill.write",
            IoOp::CheckpointWrite => "checkpoint.write",
        }
    }

    fn index(self) -> usize {
        match self {
            IoOp::SpillRead => 0,
            IoOp::SpillWrite => 1,
            IoOp::CheckpointWrite => 2,
        }
    }
}

/// Flavor of an injected storage fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoFault {
    /// The operation fails cleanly; nothing reaches disk.
    Transient,
    /// A write is cut short: truncated bytes reach the temp location
    /// before the error surfaces. Atomic rename discipline must ensure
    /// the torn bytes are never installed as a valid artifact.
    Torn,
}

impl IoFault {
    /// Stable fault-kind name for decision logs, e.g. `"torn.checkpoint.write"`.
    pub fn name(self, op: IoOp) -> &'static str {
        match (self, op) {
            (IoFault::Transient, IoOp::SpillRead) => "io.spill.read",
            (IoFault::Transient, IoOp::SpillWrite) => "io.spill.write",
            (IoFault::Transient, IoOp::CheckpointWrite) => "io.checkpoint.write",
            (IoFault::Torn, IoOp::SpillRead) => "torn.spill.read",
            (IoFault::Torn, IoOp::SpillWrite) => "torn.spill.write",
            (IoFault::Torn, IoOp::CheckpointWrite) => "torn.checkpoint.write",
        }
    }
}

/// `count` consecutive storage ops of class `op`, starting at the
/// zero-based per-class index `start`, fail (torn if `torn`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultWindow {
    pub op: IoOp,
    pub start: u64,
    pub count: u64,
    pub torn: bool,
}

/// Error surfaced by the fallible `Gpu::try_*` entry points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceFault {
    /// One op failed; the op was not performed and retrying may succeed.
    Transient {
        /// The op class that faulted.
        op: FaultOp,
    },
    /// The device is gone; every subsequent op fails the same way.
    Lost,
}

impl DeviceFault {
    /// Stable fault-kind name for decision logs, e.g. `"transient.h2d"`.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceFault::Transient { op: FaultOp::H2d } => "transient.h2d",
            DeviceFault::Transient { op: FaultOp::D2h } => "transient.d2h",
            DeviceFault::Transient {
                op: FaultOp::Launch,
            } => "kernel.fault",
            DeviceFault::Transient { op: FaultOp::Alloc } => "alloc.pressure",
            DeviceFault::Lost => "device.lost",
        }
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::Transient { op } => write!(f, "transient device fault on {}", op.name()),
            DeviceFault::Lost => write!(f, "device lost"),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// Health state machine derived from the plan and the device clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceHealth {
    /// Operating normally.
    Healthy,
    /// Inside a bandwidth-degradation window: functional but slow.
    Degraded,
    /// Permanently lost.
    Lost,
}

/// `count` consecutive ops of class `op`, starting at the zero-based
/// per-class index `start`, fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    pub op: FaultOp,
    pub start: u64,
    pub count: u64,
}

/// Copies submitted while the barrier clock is in `[from_ns, until_ns)`
/// take `factor`× the nominal transfer time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthWindow {
    pub from_ns: u64,
    pub until_ns: u64,
    pub factor: f64,
}

/// A deterministic fault schedule for one device. See the module docs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    ecc_launches: Vec<u64>,
    degraded: Vec<BandwidthWindow>,
    lose_at_ns: Option<u64>,
    kill_at_iteration: Option<u32>,
    io_windows: Vec<IoFaultWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing (the zero-overhead fast path).
    pub fn is_none(&self) -> bool {
        self.windows.is_empty()
            && self.ecc_launches.is_empty()
            && self.degraded.is_empty()
            && self.lose_at_ns.is_none()
            && self.kill_at_iteration.is_none()
            && self.io_windows.is_empty()
    }

    /// Fail `count` consecutive ops of class `op` starting at index `start`.
    pub fn fail(mut self, op: FaultOp, start: u64, count: u64) -> Self {
        if count > 0 {
            self.windows.push(FaultWindow { op, start, count });
        }
        self
    }

    /// Fail `count` H2D copies starting at the `start`-th copy.
    pub fn fail_h2d(self, start: u64, count: u64) -> Self {
        self.fail(FaultOp::H2d, start, count)
    }

    /// Fail `count` D2H copies starting at the `start`-th copy.
    pub fn fail_d2h(self, start: u64, count: u64) -> Self {
        self.fail(FaultOp::D2h, start, count)
    }

    /// Fail `count` kernel launches starting at the `start`-th launch.
    pub fn fail_launch(self, start: u64, count: u64) -> Self {
        self.fail(FaultOp::Launch, start, count)
    }

    /// Force `count` allocations starting at the `start`-th to report OOM.
    pub fn fail_alloc(self, start: u64, count: u64) -> Self {
        self.fail(FaultOp::Alloc, start, count)
    }

    /// Add an ECC-retry stall to the `launch_index`-th kernel launch.
    pub fn ecc_stall_on_launch(mut self, launch_index: u64) -> Self {
        self.ecc_launches.push(launch_index);
        self
    }

    /// Degrade PCIe copy bandwidth by `factor` (≥ 1) while the device
    /// clock is in `[from_ns, until_ns)`.
    pub fn degrade_bandwidth(mut self, from_ns: u64, until_ns: u64, factor: f64) -> Self {
        if factor > 1.0 && until_ns > from_ns {
            self.degraded.push(BandwidthWindow {
                from_ns,
                until_ns,
                factor,
            });
        }
        self
    }

    /// Permanently lose the device once its clock reaches `at_ns`.
    pub fn lose_device_at_ns(mut self, at_ns: u64) -> Self {
        self.lose_at_ns = Some(at_ns);
        self
    }

    /// Hard-kill the whole *process* at iteration boundary `iteration`
    /// (0-based: kill at 0 means not a single iteration survives). Unlike
    /// device faults this is not retryable or recoverable in-run — the
    /// engine unwinds immediately; only a durable checkpoint directory
    /// makes the work survivable, via resume.
    pub fn kill_at_iteration(mut self, iteration: u32) -> Self {
        self.kill_at_iteration = Some(iteration);
        self
    }

    /// Scheduled process-kill iteration boundary, if any.
    pub fn kill_at(&self) -> Option<u32> {
        self.kill_at_iteration
    }

    /// Fail `count` consecutive storage ops of class `op` starting at
    /// the zero-based per-class index `start`.
    pub fn fail_io(mut self, op: IoOp, start: u64, count: u64, torn: bool) -> Self {
        if count > 0 {
            self.io_windows.push(IoFaultWindow {
                op,
                start,
                count,
                torn,
            });
        }
        self
    }

    /// Fail `count` spill-store reads starting at the `start`-th read.
    pub fn fail_spill_read(self, start: u64, count: u64) -> Self {
        self.fail_io(IoOp::SpillRead, start, count, false)
    }

    /// Fail `count` spill-store writes starting at the `start`-th write.
    pub fn fail_spill_write(self, start: u64, count: u64) -> Self {
        self.fail_io(IoOp::SpillWrite, start, count, false)
    }

    /// Fail `count` checkpoint writes starting at the `start`-th write.
    pub fn fail_checkpoint_write(self, start: u64, count: u64) -> Self {
        self.fail_io(IoOp::CheckpointWrite, start, count, false)
    }

    /// Tear `count` checkpoint writes starting at the `start`-th write:
    /// truncated bytes reach the temp file before the error surfaces.
    pub fn torn_checkpoint_write(self, start: u64, count: u64) -> Self {
        self.fail_io(IoOp::CheckpointWrite, start, count, true)
    }

    /// Does the `index`-th storage op of class `op` fault — and how?
    /// Torn windows win over transient ones on overlap (the worse fault).
    pub fn io_fault_at(&self, op: IoOp, index: u64) -> Option<IoFault> {
        let mut hit = None;
        for w in &self.io_windows {
            if w.op == op && index >= w.start && index - w.start < w.count {
                if w.torn {
                    return Some(IoFault::Torn);
                }
                hit = Some(IoFault::Transient);
            }
        }
        hit
    }

    /// True when the plan injects any storage-plane faults.
    pub fn has_io_faults(&self) -> bool {
        !self.io_windows.is_empty()
    }

    /// Total storage I/O faults the plan will inject.
    pub fn io_fault_count(&self) -> u64 {
        self.io_windows.iter().map(|w| w.count).sum()
    }

    /// Does the `index`-th op of class `op` fault?
    pub fn faults_at(&self, op: FaultOp, index: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.op == op && index >= w.start && index - w.start < w.count)
    }

    /// Does the `index`-th kernel launch pay an ECC-retry stall?
    pub fn ecc_at(&self, launch_index: u64) -> bool {
        self.ecc_launches.contains(&launch_index)
    }

    /// Copy slowdown factor at device time `at_ns` (1.0 = nominal).
    pub fn degrade_factor_at(&self, at_ns: u64) -> f64 {
        self.degraded
            .iter()
            .filter(|w| at_ns >= w.from_ns && at_ns < w.until_ns)
            .map(|w| w.factor)
            .fold(1.0, f64::max)
    }

    /// Scheduled device-loss time, if any.
    pub fn loss_at(&self) -> Option<u64> {
        self.lose_at_ns
    }

    /// Total transient faults the plan will inject (loss excluded).
    pub fn transient_fault_count(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum()
    }

    /// A mixed chaos schedule derived deterministically from `seed`:
    /// a handful of transient copy/launch/alloc windows in the first few
    /// dozen ops, an occasional ECC stall, and an occasional early
    /// bandwidth-degradation window. Never loses the device, so every
    /// seeded schedule is recoverable by retry/rollback alone.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let mut plan = FaultPlan::none();
        let n_windows = 2 + (rng.next() % 3); // 2..=4
        for _ in 0..n_windows {
            let op = match rng.next() % 4 {
                0 => FaultOp::H2d,
                1 => FaultOp::D2h,
                2 => FaultOp::Launch,
                _ => FaultOp::Alloc,
            };
            let start = rng.next() % 48;
            let count = 1 + (rng.next() % 2); // 1..=2
            plan = plan.fail(op, start, count);
        }
        if rng.next().is_multiple_of(2) {
            plan = plan.ecc_stall_on_launch(rng.next() % 32);
        }
        if rng.next().is_multiple_of(2) {
            let from = rng.next() % 2_000_000; // within the first 2 ms
            let len = 200_000 + rng.next() % 2_000_000;
            let factor = 2.0 + (rng.next() % 4) as f64; // 2x..5x
            plan = plan.degrade_bandwidth(from, from + len, factor);
        }
        plan
    }

    /// Resolve a named profile (the chaos-test matrix) with a seed for
    /// the seeded profiles.
    pub fn profile(name: &str, seed: u64) -> Result<Self, String> {
        match name {
            "none" => Ok(FaultPlan::none()),
            "transient-copy" => Ok(FaultPlan::none()
                .fail_h2d(2, 1)
                .fail_d2h(0, 1)
                .fail_h2d(9, 2)),
            "kernel-fault" => Ok(FaultPlan::none().fail_launch(1, 1).fail_launch(6, 2)),
            "oom-pressure" => Ok(FaultPlan::none().fail_alloc(0, 2)),
            "ecc-stall" => Ok(FaultPlan::none()
                .ecc_stall_on_launch(0)
                .ecc_stall_on_launch(3)),
            "degraded-pcie" => Ok(FaultPlan::none().degrade_bandwidth(0, 5_000_000, 4.0)),
            "device-loss" => Ok(FaultPlan::none().lose_device_at_ns(2_000_000)),
            "chaos" => Ok(FaultPlan::from_seed(seed)),
            // `kill:<K>` reuses the seed slot as the iteration boundary.
            "kill" => Ok(FaultPlan::none().kill_at_iteration(seed as u32)),
            "spill-io" => Ok(FaultPlan::none()
                .fail_spill_read(0, 2)
                .fail_spill_write(1, 1)),
            "checkpoint-io" => Ok(FaultPlan::none()
                .fail_checkpoint_write(0, 2)
                .torn_checkpoint_write(3, 1)),
            other => Err(format!(
                "unknown fault profile '{other}' (expected none, transient-copy, kernel-fault, \
                 oom-pressure, ecc-stall, degraded-pcie, device-loss, chaos, kill:<iteration>, \
                 spill-io, checkpoint-io, or a bare seed)"
            )),
        }
    }

    /// Parse a CLI spec: `<profile>`, `<profile>:<seed>`, or a bare
    /// integer seed (shorthand for `chaos:<seed>`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(FaultPlan::from_seed(seed));
        }
        let (name, seed) = match spec.split_once(':') {
            Some((n, s)) => (
                n,
                s.parse::<u64>()
                    .map_err(|_| format!("bad seed '{s}' in fault spec '{spec}'"))?,
            ),
            None => (spec, 0),
        };
        FaultPlan::profile(name, seed)
    }
}

/// Mutable per-device fault state owned by the `Gpu`.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Per-class monotone op counters (indexed by [`FaultOp::index`]).
    seen: [u64; 4],
    lost: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            seen: [0; 4],
            lost: false,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn is_lost(&self) -> bool {
        self.lost
    }

    pub(crate) fn mark_lost(&mut self) {
        self.lost = true;
    }

    /// Consume and return the current per-class op index.
    pub(crate) fn next_index(&mut self, op: FaultOp) -> u64 {
        let i = op.index();
        let idx = self.seen[i];
        self.seen[i] += 1;
        idx
    }
}

/// Mutable storage-fault state owned by the engine's storage layer:
/// per-class monotone attempt counters over the plan's I/O windows
/// (the host-side sibling of the device-op `FaultState`).
#[derive(Clone, Debug)]
pub struct IoFaultState {
    plan: FaultPlan,
    /// Per-class monotone attempt counters (indexed by [`IoOp::index`]).
    seen: [u64; 3],
    injected: u64,
}

impl IoFaultState {
    /// Build state over `plan`'s I/O windows (device windows are ignored).
    pub fn new(plan: &FaultPlan) -> Self {
        IoFaultState {
            plan: plan.clone(),
            seen: [0; 3],
            injected: 0,
        }
    }

    /// True when the plan schedules at least one storage fault — the
    /// single branch the disarmed fast path pays.
    pub fn armed(&self) -> bool {
        self.plan.has_io_faults()
    }

    /// Consume one attempt of class `op`; returns the injected fault,
    /// if this attempt falls in a window.
    pub fn next(&mut self, op: IoOp) -> Option<IoFault> {
        let i = op.index();
        let idx = self.seen[i];
        self.seen[i] += 1;
        let hit = self.plan.io_fault_at(op, idx);
        if hit.is_some() {
            self.injected += 1;
        }
        hit
    }

    /// Storage faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

/// Inline SplitMix64: tiny, deterministic, dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Extra latency paid by an ECC-retried access burst: exported so cost
/// models outside the `Gpu` facade (and docs) reference one constant
/// path — the device config's `ecc_retry_stall`.
pub fn ecc_stall_duration(device: &crate::config::DeviceConfig) -> SimDuration {
    device.ecc_retry_stall
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_zero_cost_to_check() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.faults_at(FaultOp::H2d, 0));
        assert_eq!(p.degrade_factor_at(123), 1.0);
        assert_eq!(p.loss_at(), None);
        assert_eq!(p.transient_fault_count(), 0);
    }

    #[test]
    fn windows_cover_exactly_their_range() {
        let p = FaultPlan::none().fail_h2d(3, 2);
        assert!(!p.faults_at(FaultOp::H2d, 2));
        assert!(p.faults_at(FaultOp::H2d, 3));
        assert!(p.faults_at(FaultOp::H2d, 4));
        assert!(!p.faults_at(FaultOp::H2d, 5));
        assert!(!p.faults_at(FaultOp::D2h, 3), "classes are independent");
        assert_eq!(p.transient_fault_count(), 2);
    }

    #[test]
    fn zero_count_window_is_dropped() {
        let p = FaultPlan::none().fail_launch(5, 0);
        assert!(p.is_none());
    }

    #[test]
    fn degradation_windows_pick_worst_factor() {
        let p = FaultPlan::none()
            .degrade_bandwidth(100, 200, 2.0)
            .degrade_bandwidth(150, 300, 3.0);
        assert_eq!(p.degrade_factor_at(50), 1.0);
        assert_eq!(p.degrade_factor_at(120), 2.0);
        assert_eq!(p.degrade_factor_at(180), 3.0);
        assert_eq!(p.degrade_factor_at(250), 3.0);
        assert_eq!(p.degrade_factor_at(300), 1.0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_lossless() {
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert_eq!(a.loss_at(), None, "seeded chaos must stay recoverable");
            assert!(a.transient_fault_count() >= 2);
        }
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
    }

    #[test]
    fn parse_accepts_profiles_seeds_and_rejects_junk() {
        assert!(FaultPlan::parse("none").unwrap().is_none());
        assert_eq!(
            FaultPlan::parse("42").unwrap(),
            FaultPlan::from_seed(42),
            "bare integer is a chaos seed"
        );
        assert_eq!(
            FaultPlan::parse("chaos:7").unwrap(),
            FaultPlan::from_seed(7)
        );
        assert!(FaultPlan::parse("device-loss").unwrap().loss_at().is_some());
        assert!(FaultPlan::parse("oom-pressure")
            .unwrap()
            .faults_at(FaultOp::Alloc, 0));
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("chaos:notanumber").is_err());
    }

    #[test]
    fn process_kill_arms_the_plan_and_parses() {
        let p = FaultPlan::none().kill_at_iteration(3);
        assert!(!p.is_none(), "a kill-armed plan is not the empty plan");
        assert_eq!(p.kill_at(), Some(3));
        assert_eq!(p.transient_fault_count(), 0);
        assert_eq!(FaultPlan::parse("kill:0").unwrap().kill_at(), Some(0));
        assert_eq!(FaultPlan::parse("kill:7").unwrap().kill_at(), Some(7));
        assert_eq!(FaultPlan::parse("kill").unwrap().kill_at(), Some(0));
    }

    #[test]
    fn state_counters_are_per_class_and_monotone() {
        let mut st = FaultState::new(FaultPlan::none().fail_h2d(1, 1));
        assert_eq!(st.next_index(FaultOp::H2d), 0);
        assert_eq!(st.next_index(FaultOp::Launch), 0);
        assert_eq!(st.next_index(FaultOp::H2d), 1);
        assert!(st.plan().faults_at(FaultOp::H2d, 1));
        assert!(!st.is_lost());
        st.mark_lost();
        assert!(st.is_lost());
    }

    #[test]
    fn io_windows_cover_their_range_and_arm_the_plan() {
        let p = FaultPlan::none().fail_spill_read(1, 2);
        assert!(!p.is_none(), "an I/O-armed plan is not the empty plan");
        assert!(p.has_io_faults());
        assert_eq!(p.io_fault_at(IoOp::SpillRead, 0), None);
        assert_eq!(p.io_fault_at(IoOp::SpillRead, 1), Some(IoFault::Transient));
        assert_eq!(p.io_fault_at(IoOp::SpillRead, 2), Some(IoFault::Transient));
        assert_eq!(p.io_fault_at(IoOp::SpillRead, 3), None);
        assert_eq!(
            p.io_fault_at(IoOp::SpillWrite, 1),
            None,
            "classes are independent"
        );
        assert_eq!(p.io_fault_count(), 2);
        assert!(!FaultPlan::none().has_io_faults());
    }

    #[test]
    fn torn_windows_win_over_transient_on_overlap() {
        let p = FaultPlan::none()
            .fail_checkpoint_write(0, 3)
            .torn_checkpoint_write(1, 1);
        assert_eq!(
            p.io_fault_at(IoOp::CheckpointWrite, 0),
            Some(IoFault::Transient)
        );
        assert_eq!(p.io_fault_at(IoOp::CheckpointWrite, 1), Some(IoFault::Torn));
        assert_eq!(
            p.io_fault_at(IoOp::CheckpointWrite, 2),
            Some(IoFault::Transient)
        );
    }

    #[test]
    fn io_state_counters_are_per_class_and_monotone() {
        let mut st = IoFaultState::new(&FaultPlan::none().fail_spill_write(1, 1));
        assert!(st.armed());
        assert_eq!(st.next(IoOp::SpillWrite), None);
        assert_eq!(st.next(IoOp::SpillRead), None, "classes are independent");
        assert_eq!(st.next(IoOp::SpillWrite), Some(IoFault::Transient));
        assert_eq!(st.next(IoOp::SpillWrite), None, "window marched past");
        assert_eq!(st.injected(), 1);
        assert!(!IoFaultState::new(&FaultPlan::none()).armed());
    }

    #[test]
    fn io_profiles_parse_and_schedule_storage_faults() {
        let spill = FaultPlan::parse("spill-io").unwrap();
        assert_eq!(spill.io_fault_count(), 3);
        assert_eq!(
            spill.io_fault_at(IoOp::SpillRead, 0),
            Some(IoFault::Transient)
        );
        let ckpt = FaultPlan::parse("checkpoint-io").unwrap();
        assert_eq!(
            ckpt.io_fault_at(IoOp::CheckpointWrite, 3),
            Some(IoFault::Torn)
        );
        assert_eq!(ckpt.io_fault_count(), 3);
        assert_eq!(ckpt.transient_fault_count(), 0, "no device faults");
    }

    #[test]
    fn io_fault_names_are_stable() {
        assert_eq!(IoFault::Transient.name(IoOp::SpillRead), "io.spill.read");
        assert_eq!(
            IoFault::Torn.name(IoOp::CheckpointWrite),
            "torn.checkpoint.write"
        );
        assert_eq!(IoOp::CheckpointWrite.name(), "checkpoint.write");
    }

    #[test]
    fn fault_names_are_stable() {
        assert_eq!(
            DeviceFault::Transient { op: FaultOp::H2d }.name(),
            "transient.h2d"
        );
        assert_eq!(
            DeviceFault::Transient {
                op: FaultOp::Launch
            }
            .name(),
            "kernel.fault"
        );
        assert_eq!(DeviceFault::Lost.name(), "device.lost");
        assert_eq!(DeviceFault::Lost.to_string(), "device lost");
    }
}

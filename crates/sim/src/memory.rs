//! Device-memory capacity accounting.
//!
//! The virtual accelerator does not need a real address space: kernels run on
//! host-resident data. What the framework *does* need — and what the paper's
//! out-of-core behaviour hinges on — is a hard capacity limit: allocations
//! past the device's global-memory size must fail, forcing graph data to be
//! streamed in shards. `MemoryPool` provides that limit with RAII
//! allocations, peak tracking, and an exact OOM error.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Error returned when a device allocation exceeds remaining capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes still free at the time of the request.
    pub available: u64,
    /// Total pool capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B, {} B free of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct PoolState {
    capacity: u64,
    used: u64,
    peak: u64,
    min_available: u64,
    live_allocs: u64,
    total_allocs: u64,
    failed_allocs: u64,
}

impl PoolState {
    fn note_pressure(&mut self) {
        self.peak = self.peak.max(self.used);
        self.min_available = self
            .min_available
            .min(self.capacity.saturating_sub(self.used));
    }
}

/// A capacity-accounted device memory pool. Cheap to clone (shared handle).
#[derive(Clone, Debug)]
pub struct MemoryPool {
    state: Arc<Mutex<PoolState>>,
}

impl MemoryPool {
    /// Create a pool with `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            state: Arc::new(Mutex::new(PoolState {
                capacity,
                used: 0,
                peak: 0,
                min_available: capacity,
                live_allocs: 0,
                total_allocs: 0,
                failed_allocs: 0,
            })),
        }
    }

    /// Reserve `bytes` of device memory. Zero-byte allocations succeed and
    /// consume nothing (matching `cudaMalloc(0)` semantics loosely).
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        let mut s = self.state.lock();
        let available = s.capacity.saturating_sub(s.used);
        if bytes > available {
            s.failed_allocs += 1;
            return Err(OutOfMemory {
                requested: bytes,
                available,
                capacity: s.capacity,
            });
        }
        s.used += bytes;
        s.note_pressure();
        s.live_allocs += 1;
        s.total_allocs += 1;
        Ok(Allocation {
            pool: self.state.clone(),
            bytes,
        })
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.state.lock().used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        let s = self.state.lock();
        s.capacity.saturating_sub(s.used)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.state.lock().capacity
    }

    /// High-water mark of allocated bytes over the pool lifetime.
    pub fn peak(&self) -> u64 {
        self.state.lock().peak
    }

    /// Number of currently live allocations.
    pub fn live_allocations(&self) -> u64 {
        self.state.lock().live_allocs
    }

    /// Number of allocations ever made.
    pub fn total_allocations(&self) -> u64 {
        self.state.lock().total_allocs
    }

    /// Number of allocation requests the pool has refused for lack of
    /// capacity (pressure the memory governor reacts to).
    pub fn failed_allocations(&self) -> u64 {
        self.state.lock().failed_allocs
    }

    /// Low-water mark of free bytes over the pool lifetime: the least
    /// headroom the device ever had. Starts at `capacity`.
    pub fn min_headroom(&self) -> u64 {
        self.state.lock().min_available
    }

    /// Change the pool's capacity at runtime — the memory governor's model
    /// of a device with less free memory than its nominal size (other
    /// tenants, fragmentation, driver reservations). Live allocations are
    /// untouched; shrinking below `used` simply makes every further
    /// allocation fail until enough is released.
    pub fn set_capacity(&self, capacity: u64) {
        let mut s = self.state.lock();
        s.capacity = capacity;
        s.min_available = s.min_available.min(capacity.saturating_sub(s.used));
    }
}

/// An RAII reservation of device memory; releases its bytes on drop.
#[derive(Debug)]
pub struct Allocation {
    pool: Arc<Mutex<PoolState>>,
    bytes: u64,
}

impl Allocation {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow or shrink the reservation in place. Growing can fail with OOM,
    /// in which case the reservation is unchanged.
    pub fn resize(&mut self, new_bytes: u64) -> Result<(), OutOfMemory> {
        let mut s = self.pool.lock();
        if new_bytes > self.bytes {
            let extra = new_bytes - self.bytes;
            let available = s.capacity.saturating_sub(s.used);
            if extra > available {
                s.failed_allocs += 1;
                return Err(OutOfMemory {
                    requested: extra,
                    available,
                    capacity: s.capacity,
                });
            }
            s.used += extra;
            s.note_pressure();
        } else {
            s.used -= self.bytes - new_bytes;
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        let mut s = self.pool.lock();
        s.used -= self.bytes;
        s.live_allocs -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let pool = MemoryPool::new(1000);
        let a = pool.alloc(400).unwrap();
        assert_eq!(pool.used(), 400);
        assert_eq!(pool.available(), 600);
        drop(a);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 400);
    }

    #[test]
    fn oom_exactly_past_capacity() {
        let pool = MemoryPool::new(1000);
        let _a = pool.alloc(1000).unwrap(); // exactly full is fine
        let err = pool.alloc(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(err.available, 0);
        assert_eq!(err.capacity, 1000);
    }

    #[test]
    fn zero_byte_alloc_succeeds() {
        let pool = MemoryPool::new(0);
        let a = pool.alloc(0).unwrap();
        assert_eq!(a.bytes(), 0);
        assert_eq!(pool.live_allocations(), 1);
    }

    #[test]
    fn failed_alloc_changes_nothing() {
        let pool = MemoryPool::new(100);
        let _a = pool.alloc(60).unwrap();
        assert!(pool.alloc(50).is_err());
        assert_eq!(pool.used(), 60);
        assert_eq!(pool.live_allocations(), 1);
        assert_eq!(pool.total_allocations(), 1);
        let _b = pool.alloc(40).unwrap();
        assert_eq!(pool.used(), 100);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let pool = MemoryPool::new(100);
        let mut a = pool.alloc(10).unwrap();
        a.resize(80).unwrap();
        assert_eq!(pool.used(), 80);
        a.resize(20).unwrap();
        assert_eq!(pool.used(), 20);
        // Growing past capacity fails and leaves the reservation intact.
        let _b = pool.alloc(70).unwrap();
        assert!(a.resize(40).is_err());
        assert_eq!(a.bytes(), 20);
        assert_eq!(pool.used(), 90);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let pool = MemoryPool::new(100);
        {
            let _a = pool.alloc(70).unwrap();
        }
        let _b = pool.alloc(30).unwrap();
        assert_eq!(pool.peak(), 70);
    }

    #[test]
    fn oom_error_displays() {
        let pool = MemoryPool::new(10);
        let err = pool.alloc(20).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("requested 20"));
        assert!(msg.contains("10 B free"));
        assert!(msg.contains("of 10 B"), "capacity missing from {msg:?}");
    }

    #[test]
    fn resize_past_capacity_reports_exact_fields() {
        // The fault paths surface resize/alloc OOMs verbatim; the error
        // must carry the *delta* requested, the free bytes at the time,
        // and the pool capacity.
        let pool = MemoryPool::new(100);
        let mut a = pool.alloc(30).unwrap();
        let _b = pool.alloc(50).unwrap();
        let err = a.resize(90).unwrap_err(); // needs 60 more, 20 free
        assert_eq!(err.requested, 60);
        assert_eq!(err.available, 20);
        assert_eq!(err.capacity, 100);
        assert_eq!(a.bytes(), 30, "failed resize must not change the size");
        assert_eq!(pool.used(), 80);
    }

    #[test]
    fn zero_byte_operations_never_oom() {
        // Fault-recovery replays re-allocate whatever the plan asks for,
        // including empty slots; those must succeed even on a full pool.
        let pool = MemoryPool::new(10);
        let _full = pool.alloc(10).unwrap();
        let z = pool.alloc(0).unwrap();
        assert_eq!(z.bytes(), 0);
        assert_eq!(pool.available(), 0);
        let mut a = z;
        a.resize(0).unwrap();
        assert!(a.resize(1).is_err());
        assert_eq!(pool.live_allocations(), 2);
    }

    #[test]
    fn set_capacity_caps_future_allocations() {
        let pool = MemoryPool::new(1000);
        let _a = pool.alloc(300).unwrap();
        pool.set_capacity(400);
        assert_eq!(pool.capacity(), 400);
        assert_eq!(pool.available(), 100);
        assert!(pool.alloc(200).is_err());
        let _b = pool.alloc(100).unwrap();
        assert_eq!(pool.used(), 400);
    }

    #[test]
    fn shrinking_below_used_preserves_live_allocations() {
        let pool = MemoryPool::new(1000);
        let a = pool.alloc(600).unwrap();
        pool.set_capacity(100);
        assert_eq!(pool.used(), 600, "live reservations survive the cap");
        assert_eq!(pool.available(), 0);
        assert!(pool.alloc(1).is_err());
        drop(a);
        assert_eq!(pool.available(), 100);
        let _b = pool.alloc(100).unwrap();
    }

    #[test]
    fn failed_allocations_count_refusals() {
        let pool = MemoryPool::new(100);
        assert_eq!(pool.failed_allocations(), 0);
        assert!(pool.alloc(200).is_err());
        assert!(pool.alloc(101).is_err());
        let _a = pool.alloc(100).unwrap();
        assert_eq!(pool.failed_allocations(), 2);
        let mut b = pool.alloc(0).unwrap();
        assert!(b.resize(1).is_err());
        assert_eq!(pool.failed_allocations(), 3, "failed grows count too");
    }

    #[test]
    fn min_headroom_tracks_low_water_mark() {
        let pool = MemoryPool::new(100);
        assert_eq!(pool.min_headroom(), 100);
        {
            let _a = pool.alloc(70).unwrap();
        }
        assert_eq!(pool.min_headroom(), 30, "low water survives the free");
        pool.set_capacity(20);
        assert_eq!(pool.min_headroom(), 20, "capping tightens headroom");
    }

    #[test]
    fn oom_fields_are_copyable_for_error_plumbing() {
        // EngineError::Alloc carries the struct by value across crates.
        let pool = MemoryPool::new(5);
        let err = pool.alloc(7).unwrap_err();
        let copied: OutOfMemory = err;
        assert_eq!(copied, err);
        assert_eq!(
            copied,
            OutOfMemory {
                requested: 7,
                available: 5,
                capacity: 5
            }
        );
    }
}

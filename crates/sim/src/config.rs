//! Hardware descriptions for the virtual accelerator, the PCIe link, and the
//! host CPU.
//!
//! Presets mirror the paper's evaluation platform (Section 6.1): an NVIDIA
//! Tesla K20c (13 SMX, 4.8 GB usable GDDR5, Hyper-Q) attached over PCIe to a
//! 16-core Intel Xeon E5-2670 with 32 GB DDR3.
//!
//! Scaled presets shrink the device memory capacity by the same factor used
//! to shrink the synthetic datasets, so the paper's in-memory /
//! out-of-memory split (Table 1) is preserved at laptop scale.

use crate::time::SimDuration;

/// Description of the simulated GPU device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name (reported in experiment output).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Achievable device-memory bandwidth in GB/s (not the marketing peak).
    pub mem_bandwidth_gbps: f64,
    /// Usable global memory capacity in bytes.
    pub mem_capacity: u64,
    /// Maximum number of kernels resident concurrently (compute slots).
    pub max_concurrent_kernels: u32,
    /// Number of hardware work queues (Hyper-Q width; 32 on Kepler).
    pub hyperq_width: u32,
    /// Dedicated copy engines: one host-to-device and one device-to-host
    /// DMA engine on Kepler-class parts. `true` means H2D and D2H can
    /// overlap each other; transfers in the same direction always serialize.
    pub dual_copy_engines: bool,
    /// Fixed cost to launch a kernel (driver + dispatch).
    pub kernel_launch_overhead: SimDuration,
    /// Average latency of an uncoalesced (random) global-memory access.
    pub random_access_latency: SimDuration,
    /// Memory-level parallelism: how many random accesses are in flight at
    /// once across the whole device (thousands of resident threads).
    pub mlp: u32,
    /// Instructions retired per core per cycle for well-behaved kernels.
    pub ipc: f64,
    /// Extra latency a kernel pays when the ECC machinery transparently
    /// retries a corrupted access burst (used by fault injection; see
    /// [`crate::fault`]). Zero-cost unless a fault plan schedules a stall.
    pub ecc_retry_stall: SimDuration,
}

impl DeviceConfig {
    /// NVIDIA Tesla K20c as used in the paper.
    pub fn k20c() -> Self {
        DeviceConfig {
            name: "K20c".to_owned(),
            sm_count: 13,
            cores_per_sm: 192,
            clock_ghz: 0.706,
            mem_bandwidth_gbps: 150.0,
            mem_capacity: 4_800_000_000,
            max_concurrent_kernels: 16,
            hyperq_width: 32,
            dual_copy_engines: true,
            kernel_launch_overhead: SimDuration::from_micros(8),
            random_access_latency: SimDuration::from_nanos(400),
            mlp: 4096,
            ipc: 0.8,
            ecc_retry_stall: SimDuration::from_micros(40),
        }
    }

    /// A K20c whose memory capacity is shrunk by `scale` (power of two
    /// recommended). Compute resources are left unchanged: the datasets are
    /// shrunk by the same factor, so relative compute/transfer balance is
    /// roughly preserved while runs stay fast.
    pub fn k20c_scaled(scale: u64) -> Self {
        assert!(scale >= 1, "scale factor must be >= 1");
        let mut cfg = Self::k20c();
        cfg.name = format!("K20c/{scale}");
        cfg.mem_capacity = (cfg.mem_capacity / scale).max(1);
        cfg
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> u64 {
        self.sm_count as u64 * self.cores_per_sm as u64
    }

    /// Peak arithmetic throughput in operations per second.
    pub fn flops_per_sec(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * 1e9 * self.ipc
    }
}

/// Description of the PCIe link between host and device, including the cost
/// characteristics of the three transfer techniques compared in Figure 4.
#[derive(Clone, Debug, PartialEq)]
pub struct PcieConfig {
    /// Effective bandwidth of an explicit `cudaMemcpy` in GB/s
    /// (PCIe 2.0 x16 achieves ~6 GB/s in practice).
    pub explicit_bandwidth_gbps: f64,
    /// Fixed latency of any DMA transfer (driver + doorbell + setup).
    pub transfer_latency: SimDuration,
    /// Host-driver overhead to *issue* one async copy or kernel launch onto
    /// a hardware queue. This is what the spray operation pipelines.
    pub issue_overhead: SimDuration,
    /// Effective bandwidth of zero-copy (pinned/UVA) *sequential* access in
    /// GB/s. Slightly better than explicit copies for pure streaming since
    /// there is no staging (Figure 4, "sequential: pinned best").
    pub pinned_seq_bandwidth_gbps: f64,
    /// Round-trip latency of a single zero-copy *random* access over PCIe.
    pub pinned_random_latency: SimDuration,
    /// How many zero-copy random accesses can be in flight at once (PCIe
    /// non-posted read credits; far fewer than on-device MLP).
    pub pinned_random_mlp: u32,
    /// Managed (unified) memory page size in bytes.
    pub managed_page_size: u64,
    /// Cost to service one managed-memory page fault + migration, excluding
    /// the page's own transfer time.
    pub managed_fault_overhead: SimDuration,
}

impl PcieConfig {
    /// PCIe 2.0 x16 as on the paper's evaluation node.
    pub fn gen2_x16() -> Self {
        PcieConfig {
            explicit_bandwidth_gbps: 6.0,
            transfer_latency: SimDuration::from_micros(10),
            issue_overhead: SimDuration::from_micros(5),
            pinned_seq_bandwidth_gbps: 6.6,
            pinned_random_latency: SimDuration::from_nanos(1200),
            pinned_random_mlp: 8,
            managed_page_size: 4096,
            managed_fault_overhead: SimDuration::from_micros(20),
        }
    }
}

/// Description of the host CPU used to time the CPU-based baseline engines
/// (GraphChi- and X-Stream-style) with a model symmetric to the device's.
#[derive(Clone, Debug, PartialEq)]
pub struct HostConfig {
    /// Human-readable CPU name.
    pub name: String,
    /// Physical cores used by the engines (the paper runs 16 threads).
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Achievable DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Average latency of a cache-missing random access.
    pub random_access_latency: SimDuration,
    /// Outstanding random accesses across the whole socket (line-fill
    /// buffers x cores).
    pub mlp: u32,
    /// Retired scalar operations per core per cycle for graph codes.
    pub ipc: f64,
    /// Fixed per-engine cost of one streaming pass setup (thread fork/join,
    /// partition bookkeeping). CPU frameworks pay this per phase per
    /// partition; it is what makes X-Stream slow on tiny graphs (Table 2).
    pub pass_overhead: SimDuration,
    /// Host DRAM capacity in bytes. Graphs whose footprint exceeds it must
    /// stream shards from storage (the paper's second future-work item).
    pub mem_capacity: u64,
}

impl HostConfig {
    /// 16-core Intel Xeon E5-2670 (2 sockets x 8 cores) @2.6 GHz, 32 GB DDR3.
    pub fn xeon_e5_2670() -> Self {
        HostConfig {
            name: "Xeon E5-2670".to_owned(),
            cores: 16,
            clock_ghz: 2.6,
            mem_bandwidth_gbps: 51.2,
            random_access_latency: SimDuration::from_nanos(90),
            mlp: 160,
            ipc: 1.2,
            pass_overhead: SimDuration::from_micros(200),
            mem_capacity: 32_000_000_000,
        }
    }

    /// Peak arithmetic throughput in operations per second.
    pub fn flops_per_sec(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * 1e9 * self.ipc
    }
}

/// Secondary-storage description: where shards live when a graph does not
/// even fit host memory (Section 8's "usage of SSD and other storage
/// devices" future-work item).
#[derive(Clone, Debug, PartialEq)]
pub struct StorageConfig {
    /// Sustained sequential read bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-request latency.
    pub latency: SimDuration,
}

impl StorageConfig {
    /// A 2012-era SATA SSD like the evaluation node would have carried.
    pub fn sata_ssd() -> Self {
        StorageConfig {
            bandwidth_gbps: 0.5,
            latency: SimDuration::from_micros(100),
        }
    }
}

/// The complete simulated platform: device + link + host + storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    pub device: DeviceConfig,
    pub pcie: PcieConfig,
    pub host: HostConfig,
    pub storage: StorageConfig,
}

impl Platform {
    /// The paper's evaluation node at full scale.
    pub fn paper_node() -> Self {
        Platform {
            device: DeviceConfig::k20c(),
            pcie: PcieConfig::gen2_x16(),
            host: HostConfig::xeon_e5_2670(),
            storage: StorageConfig::sata_ssd(),
        }
    }

    /// The paper's node with device memory shrunk by `scale`, matching
    /// datasets generated at the same scale. Host memory stays at 32 GB:
    /// the paper deliberately chose datasets that fit host RAM ("to avoid
    /// I/O (SSD access) overheads", Section 6.2.1), and so do the scaled
    /// stand-ins. Shrink [`HostConfig::mem_capacity`] explicitly to study
    /// the SSD-backed out-of-host-core extension.
    pub fn paper_node_scaled(scale: u64) -> Self {
        Platform {
            device: DeviceConfig::k20c_scaled(scale),
            pcie: PcieConfig::gen2_x16(),
            host: HostConfig::xeon_e5_2670(),
            storage: StorageConfig::sata_ssd(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20c_shape() {
        let d = DeviceConfig::k20c();
        assert_eq!(d.total_cores(), 13 * 192);
        assert!(d.flops_per_sec() > 1e12); // > 1 Tops scalar-equivalent
        assert_eq!(d.mem_capacity, 4_800_000_000);
    }

    #[test]
    fn scaling_shrinks_memory_only() {
        let d = DeviceConfig::k20c_scaled(64);
        assert_eq!(d.mem_capacity, 4_800_000_000 / 64);
        assert_eq!(d.sm_count, DeviceConfig::k20c().sm_count);
        assert_eq!(d.total_cores(), DeviceConfig::k20c().total_cores());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        DeviceConfig::k20c_scaled(0);
    }

    #[test]
    fn gpu_beats_cpu_on_raw_throughput() {
        // Sanity: the simulated device must out-muscle the simulated host on
        // both flops and bandwidth, as on the real hardware.
        let p = Platform::paper_node();
        assert!(p.device.flops_per_sec() > p.host.flops_per_sec());
        assert!(p.device.mem_bandwidth_gbps > p.host.mem_bandwidth_gbps);
        assert!(p.device.mlp > p.host.mlp);
    }
}

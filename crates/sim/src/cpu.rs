//! Host-CPU cost model, symmetric to the device kernel model.
//!
//! The CPU baseline engines (GraphChi- and X-Stream-style) execute their
//! real data movement and computation on the host and account virtual time
//! with this model, so the CPU-vs-GPU comparison (Tables 2 and 3) is driven
//! by the same roofline methodology on both sides. The decisive differences
//! are structural, not fudge factors: the host has ~25x less random-access
//! memory-level parallelism and ~8x less arithmetic throughput than the
//! device, while the device pays PCIe for every byte it touches.

use crate::config::HostConfig;
use crate::time::SimDuration;

/// Work description of one parallel pass on the host.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuWork {
    /// Trace label (e.g. "xstream.scatter").
    pub label: &'static str,
    /// Parallel work items.
    pub items: u64,
    /// Scalar operations per item (includes branch/bookkeeping overhead —
    /// graph engines burn tens of ops per edge on dispatch and buffering).
    pub ops_per_item: f64,
    /// Streaming (prefetch-friendly) bytes read + written.
    pub seq_bytes: u64,
    /// Cache-missing random accesses.
    pub rand_accesses: u64,
}

impl CpuWork {
    pub fn new(
        label: &'static str,
        items: u64,
        ops_per_item: f64,
        seq_bytes: u64,
        rand_accesses: u64,
    ) -> Self {
        CpuWork {
            label,
            items,
            ops_per_item,
            seq_bytes,
            rand_accesses,
        }
    }
}

/// Simulated duration of `work` on `host` using `threads` worker threads.
pub fn cpu_time(host: &HostConfig, threads: u32, work: &CpuWork) -> SimDuration {
    if work.items == 0 && work.seq_bytes == 0 && work.rand_accesses == 0 {
        return SimDuration::ZERO;
    }
    let threads = threads.clamp(1, host.cores) as f64;
    let compute_secs =
        work.items as f64 * work.ops_per_item / (threads * host.clock_ghz * 1e9 * host.ipc);
    let seq_secs = work.seq_bytes as f64 / (host.mem_bandwidth_gbps * 1e9);
    // Random-access MLP scales with the threads actually running, capped by
    // the socket-wide limit.
    let mlp = (host.mlp as f64 * threads / host.cores as f64).max(1.0);
    let rand_secs = work.rand_accesses as f64 * host.random_access_latency.as_secs_f64() / mlp;
    SimDuration::from_secs_f64(compute_secs.max(seq_secs + rand_secs))
}

/// Accumulator for a CPU engine's virtual clock: phases execute serially
/// (each phase is internally parallel), matching the BSP structure of both
/// CPU baselines.
#[derive(Clone, Debug, Default)]
pub struct CpuClock {
    elapsed: SimDuration,
    passes: u64,
}

impl CpuClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one parallel pass, including the fixed fork/join overhead.
    pub fn charge(&mut self, host: &HostConfig, threads: u32, work: &CpuWork) {
        self.elapsed += host.pass_overhead + cpu_time(host, threads, work);
        self.passes += 1;
    }

    /// Charge a raw duration (e.g. sequential host-side bookkeeping).
    pub fn charge_raw(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    /// Total virtual time elapsed.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Number of parallel passes charged.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostConfig {
        HostConfig::xeon_e5_2670()
    }

    #[test]
    fn empty_work_is_free() {
        assert_eq!(
            cpu_time(&host(), 16, &CpuWork::new("x", 0, 10.0, 0, 0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn more_threads_speed_up_compute() {
        let w = CpuWork::new("x", 100_000_000, 20.0, 8, 0);
        let t1 = cpu_time(&host(), 1, &w);
        let t16 = cpu_time(&host(), 16, &w);
        let ratio = t1.as_secs_f64() / t16.as_secs_f64();
        assert!(ratio > 12.0 && ratio <= 16.5, "ratio {ratio}");
    }

    #[test]
    fn thread_count_clamped_to_cores() {
        let w = CpuWork::new("x", 100_000_000, 20.0, 8, 0);
        assert_eq!(cpu_time(&host(), 16, &w), cpu_time(&host(), 1000, &w));
        assert_eq!(cpu_time(&host(), 0, &w), cpu_time(&host(), 1, &w));
    }

    #[test]
    fn bandwidth_bound_pass() {
        let h = host();
        let bytes = 10u64 << 30;
        let w = CpuWork::new("x", 1, 0.0, bytes, 0);
        let t = cpu_time(&h, 16, &w);
        let expect = bytes as f64 / (h.mem_bandwidth_gbps * 1e9);
        assert!((t.as_secs_f64() - expect).abs() / expect < 0.01);
    }

    #[test]
    fn random_accesses_dominate_sequential_of_same_volume() {
        let h = host();
        let n = 100_000_000u64;
        let seq = cpu_time(&h, 16, &CpuWork::new("s", n, 1.0, n * 8, 0));
        let rand = cpu_time(&h, 16, &CpuWork::new("r", n, 1.0, 0, n));
        assert!(rand > seq * 3);
    }

    #[test]
    fn clock_accumulates_passes_and_overhead() {
        let h = host();
        let mut c = CpuClock::new();
        let w = CpuWork::new("x", 1000, 1.0, 8000, 0);
        c.charge(&h, 16, &w);
        c.charge(&h, 16, &w);
        assert_eq!(c.passes(), 2);
        let two_pass = cpu_time(&h, 16, &w) * 2 + h.pass_overhead * 2;
        assert_eq!(c.elapsed(), two_pass);
        c.charge_raw(SimDuration::from_millis(1));
        assert_eq!(c.elapsed(), two_pass + SimDuration::from_millis(1));
        assert_eq!(c.passes(), 2);
    }
}

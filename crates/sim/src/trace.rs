//! Chrome-trace export of a simulated timeline.
//!
//! `chrome://tracing` (or Perfetto) renders the JSON produced here as a
//! per-resource swim-lane view of the schedule — the fastest way to *see*
//! whether spray copies pipeline, where the BSP barriers sit, and which
//! engine is the bottleneck of an iteration.
//!
//! The actual serialization lives in [`gr_observe::export`]; this module
//! converts a resolved [`Scheduler`] into observe records so a
//! standalone device trace uses the same format as the unified
//! engine+sim trace recorded through an [`gr_observe::Observer`].

use gr_observe::{Recorded, SpanEvent};

use crate::schedule::Scheduler;

/// Convert every resolved op of a schedule into `"sim"`-track span
/// records, laned by hardware resource. Ops that have not been
/// scheduled yet (no flush) are skipped.
pub fn recorded(sched: &Scheduler) -> Recorded {
    let mut rec = Recorded::default();
    for (id, op) in sched.ops() {
        let (Some(start), Some(finish)) = (op.start, op.finish) else {
            continue;
        };
        rec.spans.push(SpanEvent {
            track: "sim",
            lane: sched.resource_name(op.resource).to_string(),
            name: op.label.to_string(),
            start_ns: start.as_nanos(),
            dur_ns: (finish - start).as_nanos(),
            fields: vec![("op", id.index().into())],
        });
    }
    rec
}

/// Serialize every scheduled op as a Chrome Trace Event (`X` complete
/// events; microsecond timestamps as the format requires), one thread
/// lane per resource, named via metadata events.
pub fn chrome_trace(sched: &Scheduler) -> String {
    gr_observe::export::chrome_trace(&recorded(sched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Capacity;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn trace_contains_all_scheduled_ops() {
        let mut s = Scheduler::new();
        let r = s.add_resource("copy", Capacity::Finite(1));
        let a = s.submit(r, SimDuration::from_micros(5), vec![], SimTime::ZERO, "h2d");
        s.submit(
            r,
            SimDuration::from_micros(3),
            vec![a],
            SimTime::ZERO,
            "kernel \"x\"",
        );
        s.flush();
        let json = chrome_trace(&s);
        assert!(json.contains("\"name\":\"h2d\""));
        assert!(json.contains("kernel \\\"x\\\"")); // quotes escaped
        assert!(json.contains("\"dur\":5.000"));
        // Lane metadata names the resource.
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"copy\""));
        assert!(json.trim_start().starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(!json.contains(",]"));
    }

    #[test]
    fn unscheduled_ops_are_skipped() {
        let mut s = Scheduler::new();
        let r = s.add_resource("q", Capacity::Finite(1));
        s.submit(
            r,
            SimDuration::from_micros(1),
            vec![],
            SimTime::ZERO,
            "pending",
        );
        // no flush
        let json = chrome_trace(&s);
        assert!(!json.contains("pending"));
    }
}

//! Chrome-trace export of a simulated timeline.
//!
//! `chrome://tracing` (or Perfetto) renders the JSON produced here as a
//! per-resource swim-lane view of the schedule — the fastest way to *see*
//! whether spray copies pipeline, where the BSP barriers sit, and which
//! engine is the bottleneck of an iteration.

use std::fmt::Write as _;

use crate::schedule::Scheduler;

/// Serialize every scheduled op as a Chrome Trace Event (`X` complete
/// events; microsecond timestamps as the format requires). Ops that have
/// not been scheduled yet (no flush) are skipped. The `pid` is always 0;
/// each resource becomes a `tid` lane named via metadata events.
pub fn chrome_trace(sched: &Scheduler) -> String {
    let mut out = String::from("[\n");
    // Lane-name metadata: one per resource.
    let mut resources: Vec<u32> = sched
        .ops()
        .filter(|(_, op)| op.start.is_some())
        .map(|(_, op)| op.resource.index())
        .collect();
    resources.sort_unstable();
    resources.dedup();
    for r in &resources {
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}},",
            r,
            escape(sched.resource_name(crate::schedule::ResourceId(*r)))
        );
    }
    let mut first = true;
    for (id, op) in sched.ops() {
        let (Some(start), Some(finish)) = (op.start, op.finish) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"op\":{}}}}}",
            escape(op.label),
            op.resource.index(),
            start.as_nanos() as f64 / 1e3,
            (finish - start).as_nanos() as f64 / 1e3,
            id.index(),
        );
    }
    out.push_str("\n]\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Capacity;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn trace_contains_all_scheduled_ops() {
        let mut s = Scheduler::new();
        let r = s.add_resource("copy", Capacity::Finite(1));
        let a = s.submit(r, SimDuration::from_micros(5), vec![], SimTime::ZERO, "h2d");
        s.submit(
            r,
            SimDuration::from_micros(3),
            vec![a],
            SimTime::ZERO,
            "kernel \"x\"",
        );
        s.flush();
        let json = chrome_trace(&s);
        assert!(json.contains("\"name\":\"h2d\""));
        assert!(json.contains("kernel \\\"x\\\"")); // quotes escaped
        assert!(json.contains("\"dur\":5.000"));
        assert!(json.contains("\"name\":\"copy\"")); // lane metadata
        // Valid-ish JSON: balanced brackets, no trailing comma before ].
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn unscheduled_ops_are_skipped() {
        let mut s = Scheduler::new();
        let r = s.add_resource("q", Capacity::Finite(1));
        s.submit(r, SimDuration::from_micros(1), vec![], SimTime::ZERO, "pending");
        // no flush
        let json = chrome_trace(&s);
        assert!(!json.contains("pending"));
    }
}

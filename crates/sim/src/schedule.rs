//! The discrete-event scheduler at the heart of the virtual accelerator.
//!
//! Work is described as a DAG of *operations*. Each op names:
//!
//! * its dependencies (ops that must finish first — stream predecessors,
//!   issue ops, recorded events),
//! * the *resource* it occupies (a hardware queue, the H2D or D2H copy
//!   engine, a kernel slot), and
//! * its duration, computed by a cost model before submission.
//!
//! Resources have finite capacity; an op holds one capacity slot for its
//! whole duration. Scheduling is event-driven, earliest-ready-first with a
//! deterministic tie-break on submission order, which mirrors how GPU
//! hardware queues drain: whichever queued op's dependencies resolve first
//! is dispatched first, and a full resource delays dispatch.
//!
//! Submission is incremental: clients add ops as the host program runs and
//! call [`Scheduler::flush`] at synchronization points. Dependencies may only
//! reference previously submitted ops (streams are in-order; events are
//! recorded before they are waited on), so each flush schedules a closed
//! batch against the persistent resource state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Handle to a submitted operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Raw index (stable across a scheduler's lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Handle to a registered resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Raw index (stable across a scheduler's lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Capacity of a resource: how many ops can occupy it simultaneously.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Capacity {
    /// At most `n` concurrent ops (`n >= 1`).
    Finite(u32),
    /// Unbounded concurrency (used for pure synchronization pseudo-ops).
    Infinite,
}

struct ResourceState {
    name: String,
    capacity: Capacity,
    /// Free-at times of the busiest `capacity` slots (min-heap).
    /// Empty/unused for infinite resources.
    slots: BinaryHeap<Reverse<u64>>,
    /// Total busy time accumulated on this resource.
    busy: SimDuration,
}

/// A scheduled (or not-yet-scheduled) operation record.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Dependencies by id (all strictly earlier than this op).
    pub deps: Vec<OpId>,
    /// Resource the op occupies.
    pub resource: ResourceId,
    /// Modeled duration.
    pub duration: SimDuration,
    /// Lower bound on start time (e.g. a synchronization barrier).
    pub earliest: SimTime,
    /// Free-form label for traces and profiles.
    pub label: &'static str,
    /// Assigned start time; `None` until scheduled.
    pub start: Option<SimTime>,
    /// Assigned finish time; `None` until scheduled.
    pub finish: Option<SimTime>,
}

/// Incremental earliest-ready-first discrete-event scheduler.
pub struct Scheduler {
    resources: Vec<ResourceState>,
    ops: Vec<OpRecord>,
    first_pending: usize,
    makespan: SimTime,
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler {
            resources: Vec::new(),
            ops: Vec::new(),
            first_pending: 0,
            makespan: SimTime::ZERO,
        }
    }

    /// Register a resource and return its handle.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: Capacity) -> ResourceId {
        if let Capacity::Finite(n) = capacity {
            assert!(n >= 1, "finite resource capacity must be >= 1");
        }
        let id = ResourceId(self.resources.len() as u32);
        let slots = match capacity {
            Capacity::Finite(n) => {
                let mut h = BinaryHeap::with_capacity(n as usize);
                for _ in 0..n {
                    h.push(Reverse(0));
                }
                h
            }
            Capacity::Infinite => BinaryHeap::new(),
        };
        self.resources.push(ResourceState {
            name: name.into(),
            capacity,
            slots,
            busy: SimDuration::ZERO,
        });
        id
    }

    /// Submit an operation. Dependencies must reference earlier ops.
    pub fn submit(
        &mut self,
        resource: ResourceId,
        duration: SimDuration,
        deps: Vec<OpId>,
        earliest: SimTime,
        label: &'static str,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        debug_assert!(
            deps.iter().all(|d| d.0 < id.0),
            "dependencies must be earlier ops"
        );
        assert!(
            (resource.0 as usize) < self.resources.len(),
            "unknown resource"
        );
        self.ops.push(OpRecord {
            deps,
            resource,
            duration,
            earliest,
            label,
            start: None,
            finish: None,
        });
        id
    }

    /// Schedule all pending operations; returns the new makespan (the finish
    /// time of the latest op ever scheduled).
    pub fn flush(&mut self) -> SimTime {
        let base = self.first_pending;
        let n = self.ops.len() - base;
        if n == 0 {
            return self.makespan;
        }

        // Indegree among pending ops and reverse edges, offset by `base`.
        let mut indegree = vec![0u32; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Ready lower bound from already-scheduled deps and `earliest`.
        let mut ready = vec![0u64; n];
        for i in 0..n {
            let op = &self.ops[base + i];
            ready[i] = op.earliest.0;
            for &d in &op.deps {
                let di = d.0 as usize;
                if di >= base {
                    indegree[i] += 1;
                    dependents[di - base].push(i as u32);
                } else {
                    let f = self.ops[di]
                        .finish
                        .expect("dependency from earlier batch must be scheduled")
                        .0;
                    ready[i] = ready[i].max(f);
                }
            }
        }

        // Min-heap of (ready_time, pending_index): earliest-ready-first with
        // submission-order tie-break.
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for i in 0..n {
            if indegree[i] == 0 {
                heap.push(Reverse((ready[i], i as u32)));
            }
        }

        let mut scheduled = 0usize;
        while let Some(Reverse((r, i))) = heap.pop() {
            let idx = base + i as usize;
            let (start, finish) = {
                let dur = self.ops[idx].duration;
                let res = &mut self.resources[self.ops[idx].resource.0 as usize];
                let start = match res.capacity {
                    Capacity::Infinite => r,
                    Capacity::Finite(_) => {
                        let Reverse(slot_free) = res.slots.pop().expect("resource has slots");
                        let start = r.max(slot_free);
                        res.slots.push(Reverse(start + dur.0));
                        start
                    }
                };
                res.busy += dur;
                (SimTime(start), SimTime(start + dur.0))
            };
            let op = &mut self.ops[idx];
            op.start = Some(start);
            op.finish = Some(finish);
            self.makespan = self.makespan.max(finish);
            scheduled += 1;

            // Release dependents.
            let deps_of = std::mem::take(&mut dependents[i as usize]);
            for j in deps_of {
                let ji = j as usize;
                indegree[ji] -= 1;
                ready[ji] = ready[ji].max(finish.0);
                if indegree[ji] == 0 {
                    heap.push(Reverse((ready[ji], j)));
                }
            }
        }
        assert_eq!(scheduled, n, "dependency cycle among pending ops");
        self.first_pending = self.ops.len();
        self.makespan
    }

    /// Finish time of the latest scheduled op.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Total busy time accumulated on a resource.
    pub fn resource_busy(&self, r: ResourceId) -> SimDuration {
        self.resources[r.0 as usize].busy
    }

    /// Name a resource was registered with.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0 as usize].name
    }

    /// Access a (possibly scheduled) op record.
    pub fn op(&self, id: OpId) -> &OpRecord {
        &self.ops[id.0 as usize]
    }

    /// Number of submitted ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Iterate over all scheduled op records (for trace dumps and tests).
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpRecord)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId(i as u32), op))
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    #[test]
    fn serial_chain_on_one_resource() {
        let mut s = Scheduler::new();
        let r = s.add_resource("copy", Capacity::Finite(1));
        let a = s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        let b = s.submit(r, d(20), vec![a], SimTime::ZERO, "b");
        s.flush();
        assert_eq!(s.op(a).start, Some(SimTime(0)));
        assert_eq!(s.op(a).finish, Some(SimTime(10)));
        assert_eq!(s.op(b).start, Some(SimTime(10)));
        assert_eq!(s.op(b).finish, Some(SimTime(30)));
        assert_eq!(s.makespan(), SimTime(30));
        assert_eq!(s.resource_busy(r), d(30));
    }

    #[test]
    fn independent_ops_serialize_on_capacity_one() {
        let mut s = Scheduler::new();
        let r = s.add_resource("copy", Capacity::Finite(1));
        s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        s.submit(r, d(10), vec![], SimTime::ZERO, "b");
        assert_eq!(s.flush(), SimTime(20));
    }

    #[test]
    fn independent_ops_overlap_on_capacity_two() {
        let mut s = Scheduler::new();
        let r = s.add_resource("kernels", Capacity::Finite(2));
        s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        s.submit(r, d(10), vec![], SimTime::ZERO, "b");
        s.submit(r, d(10), vec![], SimTime::ZERO, "c");
        assert_eq!(s.flush(), SimTime(20)); // two in parallel, one after
        assert_eq!(s.resource_busy(r), d(30));
    }

    #[test]
    fn infinite_resource_never_delays() {
        let mut s = Scheduler::new();
        let r = s.add_resource("sync", Capacity::Infinite);
        for _ in 0..100 {
            s.submit(r, d(7), vec![], SimTime::ZERO, "x");
        }
        assert_eq!(s.flush(), SimTime(7));
    }

    #[test]
    fn earliest_ready_wins_over_submission_order() {
        let mut s = Scheduler::new();
        let slow = s.add_resource("slow", Capacity::Finite(1));
        let fast = s.add_resource("fast", Capacity::Finite(1));
        // a: long op on `slow`; b depends on a, so b is ready late.
        let a = s.submit(slow, d(100), vec![], SimTime::ZERO, "a");
        let b = s.submit(fast, d(10), vec![a], SimTime::ZERO, "b");
        // c: submitted after b but ready immediately — must run first on fast.
        let c = s.submit(fast, d(10), vec![], SimTime::ZERO, "c");
        s.flush();
        assert_eq!(s.op(c).start, Some(SimTime(0)));
        assert_eq!(s.op(b).start, Some(SimTime(100)));
    }

    #[test]
    fn earliest_lower_bound_respected() {
        let mut s = Scheduler::new();
        let r = s.add_resource("q", Capacity::Finite(1));
        let a = s.submit(r, d(5), vec![], SimTime(42), "a");
        s.flush();
        assert_eq!(s.op(a).start, Some(SimTime(42)));
    }

    #[test]
    fn incremental_flush_preserves_resource_state() {
        let mut s = Scheduler::new();
        let r = s.add_resource("copy", Capacity::Finite(1));
        let a = s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        assert_eq!(s.flush(), SimTime(10));
        // Next batch: new op depends on previous batch; resource slot is at 10.
        let b = s.submit(r, d(5), vec![a], SimTime::ZERO, "b");
        assert_eq!(s.flush(), SimTime(15));
        assert_eq!(s.op(b).start, Some(SimTime(10)));
    }

    #[test]
    fn diamond_dependency() {
        let mut s = Scheduler::new();
        let r = s.add_resource("k", Capacity::Finite(4));
        let a = s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        let b = s.submit(r, d(20), vec![a], SimTime::ZERO, "b");
        let c = s.submit(r, d(5), vec![a], SimTime::ZERO, "c");
        let e = s.submit(r, d(1), vec![b, c], SimTime::ZERO, "e");
        s.flush();
        assert_eq!(s.op(e).start, Some(SimTime(30)));
        assert_eq!(s.makespan(), SimTime(31));
    }

    #[test]
    fn tie_break_is_submission_order() {
        let mut s = Scheduler::new();
        let r = s.add_resource("q", Capacity::Finite(1));
        let a = s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        let b = s.submit(r, d(10), vec![], SimTime::ZERO, "b");
        s.flush();
        assert!(s.op(a).start.unwrap() < s.op(b).start.unwrap());
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut s = Scheduler::new();
        assert_eq!(s.flush(), SimTime::ZERO);
        let _r = s.add_resource("q", Capacity::Finite(1));
        assert_eq!(s.flush(), SimTime::ZERO);
    }

    #[test]
    fn zero_duration_ops() {
        let mut s = Scheduler::new();
        let sync = s.add_resource("sync", Capacity::Infinite);
        let r = s.add_resource("q", Capacity::Finite(1));
        let a = s.submit(r, d(10), vec![], SimTime::ZERO, "a");
        let ev = s.submit(sync, d(0), vec![a], SimTime::ZERO, "event");
        let b = s.submit(r, d(10), vec![ev], SimTime::ZERO, "b");
        s.flush();
        assert_eq!(s.op(ev).finish, Some(SimTime(10)));
        assert_eq!(s.op(b).start, Some(SimTime(10)));
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_rejected() {
        let mut s = Scheduler::new();
        s.submit(ResourceId(3), d(1), vec![], SimTime::ZERO, "bad");
    }
}

//! Virtual time for the discrete-event accelerator simulation.
//!
//! All simulated durations are accounted in integer nanoseconds so that the
//! schedule is exactly deterministic across platforms (no floating-point
//! accumulation in the scheduler itself; cost *models* may compute in f64 and
//! round once on conversion).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant. Saturates to zero if `earlier` is
    /// actually later (never panics: callers often compare overlapping ops).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Convert from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or NaN inputs clamp to zero (cost models can underflow on
    /// empty work items).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(10).since(SimTime(20)), SimDuration::ZERO);
        assert_eq!(SimTime(20).since(SimTime(10)), SimDuration(10));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9), SimDuration(2));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(2.0), SimDuration(2_000_000_000));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d * 4, SimDuration(12_000));
        assert_eq!(d / 3, SimDuration(1_000));
        assert_eq!(d.max(SimDuration(5_000)), SimDuration(5_000));
        assert_eq!(d.min(SimDuration(5_000)), d);
        let total: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration(9_000));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration(12)), "12ns");
        assert_eq!(format!("{}", SimDuration(12_340)), "12.340us");
        assert_eq!(format!("{}", SimDuration(12_340_000)), "12.340ms");
        assert_eq!(format!("{}", SimDuration(2_500_000_000)), "2.500s");
    }
}

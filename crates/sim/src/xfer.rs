//! PCIe data-exchange cost models.
//!
//! Reproduces the behaviour measured in Figure 4 of the paper, which compares
//! three host/device data-exchange techniques under sequential and random
//! access:
//!
//! * **Explicit H2D** (`cudaMemcpy`): pay a bulk DMA copy up front, then all
//!   device accesses hit fast device memory. Best for *random* access.
//! * **Pinned / UVA zero-copy**: no staging copy; every device access is a
//!   load/store over PCIe. Sequential accesses enjoy memory-level parallelism
//!   and prefetching (best for *sequential*); random accesses each pay the
//!   full PCIe round trip with little MLP (worst for random).
//! * **Managed (unified) memory**: pages migrate on demand; page-fault
//!   servicing overhead dominates, making it the slowest sequential option
//!   and intermediate for random.

use crate::config::{DeviceConfig, PcieConfig};
use crate::time::SimDuration;

/// Data-exchange technique between host and device (Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferMode {
    /// Explicit bulk DMA copy (`cudaMemcpy` / `cudaMemcpyAsync`).
    Explicit,
    /// Zero-copy access to pinned host memory through UVA.
    PinnedUva,
    /// CUDA 6 managed memory: on-demand page migration.
    Managed,
}

/// Device-side access pattern over the transferred buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessPattern {
    /// Fully coalesced streaming access.
    Sequential,
    /// Uniformly random element accesses.
    Random,
}

/// Time for one explicit bulk DMA of `bytes` over the link (either
/// direction). This is the cost charged to the copy-engine resource for
/// every `h2d`/`d2h` op in the simulator.
pub fn explicit_copy_time(pcie: &PcieConfig, bytes: u64) -> SimDuration {
    pcie.transfer_latency
        + SimDuration::from_secs_f64(bytes as f64 / (pcie.explicit_bandwidth_gbps * 1e9))
}

/// [`explicit_copy_time`] under a link-degradation factor ≥ 1 (fault
/// injection: contention or retraining windows slow the data phase;
/// the fixed DMA setup latency is unaffected).
pub fn degraded_copy_time(pcie: &PcieConfig, bytes: u64, factor: f64) -> SimDuration {
    pcie.transfer_latency
        + SimDuration::from_secs_f64(
            bytes as f64 * factor.max(1.0) / (pcie.explicit_bandwidth_gbps * 1e9),
        )
}

/// Time for the device to perform `accesses` reads of `elem_bytes` each over
/// a buffer of `bytes` total, where the buffer was made available with
/// `mode`, and accesses follow `pattern`. This models the *whole* exchange:
/// any up-front staging plus the device-side access stream — exactly the
/// quantity Figure 4 plots.
pub fn transfer_access_time(
    pcie: &PcieConfig,
    dev: &DeviceConfig,
    mode: TransferMode,
    pattern: AccessPattern,
    bytes: u64,
    accesses: u64,
    elem_bytes: u64,
) -> SimDuration {
    let dev_seq = |b: u64| SimDuration::from_secs_f64(b as f64 / (dev.mem_bandwidth_gbps * 1e9));
    let dev_rand = |n: u64| {
        SimDuration::from_secs_f64(
            n as f64 * dev.random_access_latency.as_secs_f64() / dev.mlp as f64,
        )
    };
    match (mode, pattern) {
        (TransferMode::Explicit, AccessPattern::Sequential) => {
            explicit_copy_time(pcie, bytes) + dev_seq(accesses * elem_bytes)
        }
        (TransferMode::Explicit, AccessPattern::Random) => {
            explicit_copy_time(pcie, bytes) + dev_rand(accesses)
        }
        (TransferMode::PinnedUva, AccessPattern::Sequential) => {
            // Loads stream over PCIe with full MLP + prefetch: link-limited.
            SimDuration::from_secs_f64(
                (accesses * elem_bytes).max(bytes) as f64 / (pcie.pinned_seq_bandwidth_gbps * 1e9),
            )
        }
        (TransferMode::PinnedUva, AccessPattern::Random) => {
            // Each access is an individual non-posted PCIe read; only a small
            // number are in flight, and prefetching cannot help.
            SimDuration::from_secs_f64(
                accesses as f64 * pcie.pinned_random_latency.as_secs_f64()
                    / pcie.pinned_random_mlp as f64,
            )
        }
        (TransferMode::Managed, pattern) => {
            // Pages migrate on first touch. For sequential sweeps every page
            // is faulted in order; for random access over a large buffer,
            // essentially every page is eventually faulted too (accesses >>
            // pages in the Figure 4 setup), after which accesses hit device
            // memory.
            let pages = bytes.div_ceil(pcie.managed_page_size).max(1);
            let fault =
                SimDuration::from_secs_f64(
                    pages as f64 * pcie.managed_fault_overhead.as_secs_f64(),
                ) + SimDuration::from_secs_f64(bytes as f64 / (pcie.explicit_bandwidth_gbps * 1e9));
            let access = match pattern {
                AccessPattern::Sequential => dev_seq(accesses * elem_bytes),
                AccessPattern::Random => dev_rand(accesses),
            };
            fault + access
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Platform;

    /// The Figure 4 experiment: 100,000,000 doubles, one access per element.
    fn fig4(mode: TransferMode, pattern: AccessPattern) -> SimDuration {
        let p = Platform::paper_node();
        let n = 100_000_000u64;
        transfer_access_time(&p.pcie, &p.device, mode, pattern, n * 8, n, 8)
    }

    #[test]
    fn sequential_ordering_matches_figure4() {
        let explicit = fig4(TransferMode::Explicit, AccessPattern::Sequential);
        let pinned = fig4(TransferMode::PinnedUva, AccessPattern::Sequential);
        let managed = fig4(TransferMode::Managed, AccessPattern::Sequential);
        // Figure 4 (sequential): pinned best, explicit close behind, managed worst.
        assert!(pinned < explicit, "pinned {pinned} !< explicit {explicit}");
        assert!(
            explicit < managed,
            "explicit {explicit} !< managed {managed}"
        );
    }

    #[test]
    fn random_ordering_matches_figure4() {
        let explicit = fig4(TransferMode::Explicit, AccessPattern::Random);
        let pinned = fig4(TransferMode::PinnedUva, AccessPattern::Random);
        let managed = fig4(TransferMode::Managed, AccessPattern::Random);
        // Figure 4 (random): explicit best, pinned worst, managed between.
        assert!(
            explicit < managed,
            "explicit {explicit} !< managed {managed}"
        );
        assert!(managed < pinned, "managed {managed} !< pinned {pinned}");
    }

    #[test]
    fn random_penalty_is_large_for_pinned() {
        // Pinned random must be catastrophically worse than pinned
        // sequential — this asymmetry is what rules out the all-zero-copy
        // design in Section 3.2.
        let seq = fig4(TransferMode::PinnedUva, AccessPattern::Sequential);
        let rand = fig4(TransferMode::PinnedUva, AccessPattern::Random);
        assert!(rand.as_nanos() > 10 * seq.as_nanos());
    }

    #[test]
    fn explicit_copy_scales_linearly() {
        let p = Platform::paper_node();
        let t1 = explicit_copy_time(&p.pcie, 1_000_000);
        let t2 = explicit_copy_time(&p.pcie, 2_000_000);
        let body1 = t1 - p.pcie.transfer_latency;
        let body2 = t2 - p.pcie.transfer_latency;
        assert!((body2.as_nanos() as i64 - 2 * body1.as_nanos() as i64).abs() <= 2);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let p = Platform::paper_node();
        assert_eq!(explicit_copy_time(&p.pcie, 0), p.pcie.transfer_latency);
    }
}

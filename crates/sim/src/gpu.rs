//! The `Gpu` facade: CUDA-style streams, events, async copies, and kernel
//! launches on top of the discrete-event scheduler.
//!
//! Semantics follow the CUDA execution model the paper relies on:
//!
//! * Operations within one stream execute in submission order.
//! * Operations in different streams may overlap, subject to hardware:
//!   one H2D DMA engine, one D2H DMA engine (Kepler has both), and a pool of
//!   concurrent-kernel slots.
//! * Every async submission pays a host-side *issue* cost on the hardware
//!   queue its stream maps to. Kepler's Hyper-Q provides 32 such queues;
//!   streams are assigned round-robin. With a single stream, issue costs
//!   serialize — this is the overhead the spray operation (Section 5.1)
//!   pipelines away by spreading a shard's sub-array copies over many
//!   streams.
//! * Events capture a point in a stream; other streams can wait on them.
//! * `synchronize()` is a full-device barrier: it resolves the schedule and
//!   advances the host's view of virtual time.
//!
//! Kernels' *results* are computed eagerly by the caller on the host (the
//! simulator charges time, not semantics), so host code can inspect outputs
//! immediately — mirroring how the real framework reads back frontier
//! feedback after each phase.

use gr_observe::{InstantEvent, MetricsRegistry, Observer, SpanEvent};

use crate::config::{DeviceConfig, PcieConfig, Platform};
use crate::fault::{DeviceFault, DeviceHealth, FaultOp, FaultPlan, FaultState};
use crate::kernel::{kernel_time, KernelSpec};
use crate::memory::{Allocation, MemoryPool, OutOfMemory};
use crate::profile::Profile;
use crate::schedule::{Capacity, OpId, ResourceId, Scheduler};
use crate::time::{SimDuration, SimTime};
use crate::xfer::{degraded_copy_time, explicit_copy_time};

/// Handle to a created stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamId(usize);

/// A recorded event: a point in some stream other streams can wait on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event(Option<OpId>);

#[derive(Debug)]
struct StreamState {
    /// Hardware queue this stream maps to.
    queue: ResourceId,
    /// Last issue op in this stream (issues are stream-ordered).
    last_issue: Option<OpId>,
    /// Last execution op in this stream (execs are stream-ordered).
    last_exec: Option<OpId>,
    /// Event deps to attach to the next exec op.
    pending_waits: Vec<OpId>,
}

/// Summary statistics of a finished (synchronized) device timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuStats {
    /// Virtual time at the last synchronization (the run's wall time).
    pub elapsed: SimDuration,
    /// Busy time of the copy engines (both directions).
    pub memcpy_busy: SimDuration,
    /// Busy time of the kernel slots (sums overlapped kernels).
    pub kernel_busy: SimDuration,
    /// Bytes moved host-to-device.
    pub bytes_h2d: u64,
    /// Bytes moved device-to-host.
    pub bytes_d2h: u64,
    /// Copy op count (both directions).
    pub copy_ops: u64,
    /// Kernel launch count.
    pub kernel_launches: u64,
}

/// The virtual accelerator device.
///
/// ```
/// use gr_sim::{Gpu, KernelSpec, Platform};
///
/// let mut gpu = Gpu::new(&Platform::paper_node());
/// let copy_stream = gpu.create_stream();
/// let exec_stream = gpu.create_stream();
///
/// // Upload a buffer, launch a kernel that consumes it, read a result back.
/// gpu.h2d(copy_stream, 64 << 20, "input");
/// let ready = gpu.record_event(copy_stream);
/// gpu.wait_event(exec_stream, ready);
/// gpu.launch(exec_stream, &KernelSpec::balanced("sum", 1 << 20, 2.0, 64 << 20, 0));
/// gpu.d2h(exec_stream, 4096, "result");
///
/// let elapsed = gpu.synchronize();
/// assert!(elapsed.as_nanos() > 0);
/// let stats = gpu.stats();
/// assert_eq!(stats.copy_ops, 2);
/// assert_eq!(stats.kernel_launches, 1);
/// ```
pub struct Gpu {
    device: DeviceConfig,
    pcie: PcieConfig,
    sched: Scheduler,
    pool: MemoryPool,
    queues: Vec<ResourceId>,
    h2d_engine: ResourceId,
    d2h_engine: ResourceId,
    kernel_slots: ResourceId,
    sync_resource: ResourceId,
    streams: Vec<StreamState>,
    next_queue: usize,
    barrier: SimTime,
    /// Single source of truth for transfer/launch accounting; the
    /// [`Profile`] view and [`GpuStats`] fields derive from it.
    metrics: MetricsRegistry,
    observer: Observer,
    /// Prefix for event lanes (e.g. `"gpu2/"` in multi-GPU runs).
    lane_prefix: String,
    /// Ops already emitted as spans (resolved ops are emitted
    /// incrementally at each `synchronize`).
    emitted_ops: usize,
    /// Fault-injection state; `None` (the default) keeps every op on the
    /// zero-overhead infallible path.
    faults: Option<Box<FaultState>>,
}

impl Gpu {
    /// Create a device from a platform description.
    pub fn new(platform: &Platform) -> Self {
        Self::with_configs(platform.device.clone(), platform.pcie.clone())
    }

    /// Create a device from explicit device/link configs.
    pub fn with_configs(device: DeviceConfig, pcie: PcieConfig) -> Self {
        let mut sched = Scheduler::new();
        let queues = (0..device.hyperq_width.max(1))
            .map(|i| sched.add_resource(format!("hwq{i}"), Capacity::Finite(1)))
            .collect();
        let h2d_engine = sched.add_resource("h2d", Capacity::Finite(1));
        let d2h_engine = if device.dual_copy_engines {
            sched.add_resource("d2h", Capacity::Finite(1))
        } else {
            h2d_engine
        };
        let kernel_slots = sched.add_resource(
            "kernels",
            Capacity::Finite(device.max_concurrent_kernels.max(1)),
        );
        let sync_resource = sched.add_resource("sync", Capacity::Infinite);
        let pool = MemoryPool::new(device.mem_capacity);
        Gpu {
            device,
            pcie,
            sched,
            pool,
            queues,
            h2d_engine,
            d2h_engine,
            kernel_slots,
            sync_resource,
            streams: Vec::new(),
            next_queue: 0,
            barrier: SimTime::ZERO,
            metrics: MetricsRegistry::new(),
            observer: Observer::disabled(),
            lane_prefix: String::new(),
            emitted_ops: 0,
            faults: None,
        }
    }

    /// Attach a deterministic fault plan (see [`crate::fault`]). The
    /// default [`FaultPlan::none()`] stores nothing: the fallible
    /// `try_*` entry points then delegate straight to their infallible
    /// twins, adding no ops and no stalls.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_none() {
            None
        } else {
            Some(Box::new(FaultState::new(plan)))
        };
    }

    /// Current device health, derived from the fault plan and the
    /// device clock: `Lost` once the scheduled loss time has passed (or
    /// a loss was already observed by an op), `Degraded` while inside a
    /// bandwidth-degradation window.
    pub fn health(&self) -> DeviceHealth {
        let Some(st) = self.faults.as_deref() else {
            return DeviceHealth::Healthy;
        };
        let now = self.barrier.as_nanos();
        if st.is_lost() || st.plan().loss_at().is_some_and(|at| now >= at) {
            DeviceHealth::Lost
        } else if st.plan().degrade_factor_at(now) > 1.0 {
            DeviceHealth::Degraded
        } else {
            DeviceHealth::Healthy
        }
    }

    /// Faults injected so far: transient op faults plus (once) device
    /// loss. ECC stalls and degraded copies are slowdowns, not faults,
    /// and live in the `fault.ecc_stalls` / `fault.degraded_ops`
    /// counters instead.
    pub fn faults_injected(&self) -> u64 {
        self.metrics.counter("fault.injected")
    }

    /// Attach an observer: resolved device ops are emitted as `"sim"`
    /// track spans at every `synchronize`, and OOM rejections as
    /// instants.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// Attach an observer with a lane prefix, so several devices can
    /// share one sink without colliding (lanes become `"gpu0/h2d"`…).
    pub fn set_observer_tagged(&mut self, observer: Observer, prefix: impl Into<String>) {
        self.observer = observer;
        self.lane_prefix = prefix.into();
    }

    /// Device description this GPU was built from.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// PCIe link description.
    pub fn pcie(&self) -> &PcieConfig {
        &self.pcie
    }

    /// Device memory pool (capacity accounting).
    pub fn memory(&self) -> &MemoryPool {
        &self.pool
    }

    /// Cap the device's usable memory below its nominal size — the memory
    /// governor's model of runtime free-memory shortfall (co-tenants,
    /// fragmentation, driver reservations). Existing allocations are kept;
    /// the cap only constrains what can still be reserved.
    pub fn cap_memory(&mut self, bytes: u64) {
        self.pool.set_capacity(bytes.min(self.device.mem_capacity));
    }

    /// Reserve device memory; fails with OOM past capacity (emitting
    /// an `"oom"` instant event when an observer is attached).
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        let result = self.pool.alloc(bytes);
        if let Err(oom) = &result {
            let at = self.barrier.as_nanos();
            let lane = format!("{}memory", self.lane_prefix);
            self.observer.instant(|| InstantEvent {
                track: "sim",
                lane,
                name: "oom".into(),
                at_ns: at,
                fields: vec![
                    ("requested", oom.requested.into()),
                    ("available", oom.available.into()),
                ],
            });
        }
        result
    }

    /// Create a stream, bound round-robin to a hardware queue.
    pub fn create_stream(&mut self) -> StreamId {
        let queue_idx = self.next_queue % self.queues.len();
        let queue = self.queues[queue_idx];
        let stream_idx = self.streams.len();
        let at = self.barrier.as_nanos();
        let lane = format!("{}streams", self.lane_prefix);
        self.observer.instant(|| InstantEvent {
            track: "sim",
            lane,
            name: "stream.created".into(),
            at_ns: at,
            fields: vec![
                ("stream", stream_idx.into()),
                ("hw_queue", queue_idx.into()),
            ],
        });
        self.next_queue += 1;
        self.streams.push(StreamState {
            queue,
            last_issue: None,
            last_exec: None,
            pending_waits: Vec::new(),
        });
        StreamId(self.streams.len() - 1)
    }

    /// Number of created streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Submit one stream op as issue (hardware queue) + body (engine) +
    /// optional latency tail. The tail does not occupy the engine: DMA setup
    /// latency of queued descriptors pipelines behind the previous
    /// transfer's data movement, so back-to-back small copies from different
    /// streams pack at body cadence while a single stream pays
    /// body+latency per copy (its next op waits for *completion*).
    fn submit(
        &mut self,
        stream: StreamId,
        engine: ResourceId,
        body: SimDuration,
        tail: SimDuration,
        label: &'static str,
    ) -> OpId {
        let s = &mut self.streams[stream.0];
        // Issue phase: occupies the hardware queue for the issue overhead,
        // ordered after the stream's previous issue.
        let issue_deps = s.last_issue.into_iter().collect();
        let queue = s.queue;
        let issue = self.sched.submit(
            queue,
            self.pcie.issue_overhead,
            issue_deps,
            self.barrier,
            "issue",
        );
        // Execution phase: occupies the engine, after the issue, the
        // stream's previous op completion, and any pending event waits.
        let s = &mut self.streams[stream.0];
        s.last_issue = Some(issue);
        let mut deps = vec![issue];
        deps.extend(s.last_exec);
        deps.append(&mut s.pending_waits);
        let exec = self.sched.submit(engine, body, deps, self.barrier, label);
        let done = if tail.is_zero() {
            exec
        } else {
            self.sched
                .submit(self.sync_resource, tail, vec![exec], self.barrier, label)
        };
        self.streams[stream.0].last_exec = Some(done);
        done
    }

    /// Account one copy/launch in the device registry (the single
    /// source of truth behind [`Profile`] and [`GpuStats`]).
    fn account(&mut self, kind: &'static str, bytes: u64, dur: SimDuration, label: &'static str) {
        let ns = dur.as_nanos();
        match kind {
            "h2d" => {
                self.metrics.inc("h2d.bytes", bytes);
                self.metrics.inc("h2d.ops", 1);
                self.metrics.inc("h2d.time_ns", ns);
                self.metrics.observe("h2d.size_bytes", bytes);
            }
            "d2h" => {
                self.metrics.inc("d2h.bytes", bytes);
                self.metrics.inc("d2h.ops", 1);
                self.metrics.inc("d2h.time_ns", ns);
                self.metrics.observe("d2h.size_bytes", bytes);
            }
            _ => {
                self.metrics.inc("kernel.launches", 1);
                self.metrics.inc("kernel.time_ns", ns);
                self.metrics.observe("kernel.duration_ns", ns);
            }
        }
        self.metrics.inc_labeled("op.count", label, 1);
        self.metrics.inc_labeled("op.time_ns", label, ns);
        self.metrics.inc_labeled("op.bytes", label, bytes);
    }

    /// Enqueue an async host-to-device copy of `bytes` on `stream`.
    pub fn h2d(&mut self, stream: StreamId, bytes: u64, label: &'static str) -> OpId {
        let dur = explicit_copy_time(&self.pcie, bytes);
        self.account("h2d", bytes, dur, label);
        let body = dur - self.pcie.transfer_latency;
        self.submit(
            stream,
            self.h2d_engine,
            body,
            self.pcie.transfer_latency,
            label,
        )
    }

    /// Enqueue zero-copy (pinned/UVA) sequential streaming of `bytes` on
    /// `stream`: no staging DMA — the kernel's loads stream over PCIe at
    /// the pinned-sequential rate (slightly above the explicit-copy rate,
    /// Figure 4), occupying the H2D engine for the duration. Only valid
    /// for sequentially-accessed buffers; random zero-copy access is
    /// modeled by [`crate::xfer::transfer_access_time`] and is
    /// catastrophic.
    pub fn h2d_zero_copy(&mut self, stream: StreamId, bytes: u64, label: &'static str) -> OpId {
        let dur =
            SimDuration::from_secs_f64(bytes as f64 / (self.pcie.pinned_seq_bandwidth_gbps * 1e9));
        self.account("h2d", bytes, dur, label);
        self.submit(stream, self.h2d_engine, dur, SimDuration::ZERO, label)
    }

    /// Enqueue an async device-to-host copy of `bytes` on `stream`.
    pub fn d2h(&mut self, stream: StreamId, bytes: u64, label: &'static str) -> OpId {
        let dur = explicit_copy_time(&self.pcie, bytes);
        self.account("d2h", bytes, dur, label);
        let body = dur - self.pcie.transfer_latency;
        self.submit(
            stream,
            self.d2h_engine,
            body,
            self.pcie.transfer_latency,
            label,
        )
    }

    /// Enqueue a kernel launch on `stream`; the caller performs the actual
    /// computation on the host (eagerly), this charges its simulated time.
    pub fn launch(&mut self, stream: StreamId, spec: &KernelSpec) -> OpId {
        let dur = kernel_time(&self.device, spec);
        self.account("kernel", 0, dur, spec.label);
        self.submit(
            stream,
            self.kernel_slots,
            dur,
            SimDuration::ZERO,
            spec.label,
        )
    }

    /// Consult the fault plan before an op of class `op`. `Ok(idx)` means
    /// proceed (with the consumed per-class op index, when a plan is
    /// attached); `Err` means the op must not be performed. Device loss
    /// is evaluated against the barrier clock, becomes sticky, and is
    /// counted/emitted exactly once; allocations never observe loss
    /// (they are host-side bookkeeping), so a runner can still be built
    /// on a device that dies at t=0 and then fall back cleanly.
    fn fault_check(&mut self, op: FaultOp) -> Result<Option<u64>, DeviceFault> {
        let Some(state) = self.faults.as_deref_mut() else {
            return Ok(None);
        };
        let now = self.barrier.as_nanos();
        let check_loss = op != FaultOp::Alloc;
        let mut newly_lost = false;
        if check_loss && !state.is_lost() {
            if let Some(at) = state.plan().loss_at() {
                if now >= at {
                    state.mark_lost();
                    newly_lost = true;
                }
            }
        }
        let outcome = if check_loss && state.is_lost() {
            Err(DeviceFault::Lost)
        } else {
            let idx = state.next_index(op);
            if state.plan().faults_at(op, idx) {
                Err(DeviceFault::Transient { op })
            } else {
                Ok(Some(idx))
            }
        };
        match outcome {
            Err(DeviceFault::Lost) if newly_lost => {
                self.metrics.inc("fault.injected", 1);
                self.metrics.inc("fault.device_lost", 1);
                self.emit_fault_instant("fault.device_lost", op, now);
            }
            Err(DeviceFault::Transient { .. }) => {
                self.metrics.inc("fault.injected", 1);
                self.metrics.inc_labeled("fault.transient", op.name(), 1);
                self.emit_fault_instant("fault.transient", op, now);
            }
            _ => {}
        }
        outcome
    }

    fn emit_fault_instant(&self, name: &'static str, op: FaultOp, at_ns: u64) {
        let lane = format!("{}faults", self.lane_prefix);
        self.observer.instant(|| InstantEvent {
            track: "sim",
            lane,
            name: name.into(),
            at_ns,
            fields: vec![("op", op.name().into())],
        });
    }

    /// Copy slowdown factor at the current barrier clock (1.0 nominal).
    fn degrade_factor(&self) -> f64 {
        match self.faults.as_deref() {
            Some(st) => st.plan().degrade_factor_at(self.barrier.as_nanos()),
            None => 1.0,
        }
    }

    /// Charge the partial transfer an aborted copy performed before the
    /// engine errored (half the nominal duration), so injected faults
    /// stay visible on the device timeline and in the byte counters.
    fn charge_aborted_copy(
        &mut self,
        stream: StreamId,
        engine: ResourceId,
        kind: &'static str,
        bytes: u64,
        label: &'static str,
    ) {
        let moved = bytes / 2;
        let dur = explicit_copy_time(&self.pcie, moved);
        self.account(kind, moved, dur, label);
        let body = dur.saturating_sub(self.pcie.transfer_latency);
        self.submit(stream, engine, body, self.pcie.transfer_latency, label);
    }

    /// Fallible variant of [`Gpu::h2d`]: consults the fault plan first.
    /// A transient fault charges a partial (aborted) transfer; inside a
    /// degradation window the copy runs at the degraded rate. With no
    /// plan attached this is exactly `h2d`.
    pub fn try_h2d(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
    ) -> Result<OpId, DeviceFault> {
        match self.fault_check(FaultOp::H2d) {
            Err(f) => {
                if f != DeviceFault::Lost {
                    self.charge_aborted_copy(stream, self.h2d_engine, "h2d", bytes, "fault.h2d");
                }
                Err(f)
            }
            Ok(_) => {
                let factor = self.degrade_factor();
                if factor > 1.0 {
                    self.metrics.inc("fault.degraded_ops", 1);
                    let dur = degraded_copy_time(&self.pcie, bytes, factor);
                    self.account("h2d", bytes, dur, label);
                    let body = dur - self.pcie.transfer_latency;
                    Ok(self.submit(
                        stream,
                        self.h2d_engine,
                        body,
                        self.pcie.transfer_latency,
                        label,
                    ))
                } else {
                    Ok(self.h2d(stream, bytes, label))
                }
            }
        }
    }

    /// Fallible variant of [`Gpu::h2d_zero_copy`] (same fault class as
    /// H2D copies: both occupy the H2D engine).
    pub fn try_h2d_zero_copy(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
    ) -> Result<OpId, DeviceFault> {
        match self.fault_check(FaultOp::H2d) {
            Err(f) => {
                if f != DeviceFault::Lost {
                    self.charge_aborted_copy(stream, self.h2d_engine, "h2d", bytes, "fault.h2d");
                }
                Err(f)
            }
            Ok(_) => {
                let factor = self.degrade_factor();
                if factor > 1.0 {
                    self.metrics.inc("fault.degraded_ops", 1);
                    let dur = SimDuration::from_secs_f64(
                        bytes as f64 * factor / (self.pcie.pinned_seq_bandwidth_gbps * 1e9),
                    );
                    self.account("h2d", bytes, dur, label);
                    Ok(self.submit(stream, self.h2d_engine, dur, SimDuration::ZERO, label))
                } else {
                    Ok(self.h2d_zero_copy(stream, bytes, label))
                }
            }
        }
    }

    /// Fallible variant of [`Gpu::d2h`].
    pub fn try_d2h(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
    ) -> Result<OpId, DeviceFault> {
        match self.fault_check(FaultOp::D2h) {
            Err(f) => {
                if f != DeviceFault::Lost {
                    self.charge_aborted_copy(stream, self.d2h_engine, "d2h", bytes, "fault.d2h");
                }
                Err(f)
            }
            Ok(_) => {
                let factor = self.degrade_factor();
                if factor > 1.0 {
                    self.metrics.inc("fault.degraded_ops", 1);
                    let dur = degraded_copy_time(&self.pcie, bytes, factor);
                    self.account("d2h", bytes, dur, label);
                    let body = dur - self.pcie.transfer_latency;
                    Ok(self.submit(
                        stream,
                        self.d2h_engine,
                        body,
                        self.pcie.transfer_latency,
                        label,
                    ))
                } else {
                    Ok(self.d2h(stream, bytes, label))
                }
            }
        }
    }

    /// Fallible variant of [`Gpu::launch`]. A faulted launch charges a
    /// kernel slot for the fixed launch overhead only (the kernel died
    /// at startup); a launch inside an ECC-stall schedule succeeds but
    /// pays [`DeviceConfig::ecc_retry_stall`] as a latency tail.
    pub fn try_launch(&mut self, stream: StreamId, spec: &KernelSpec) -> Result<OpId, DeviceFault> {
        match self.fault_check(FaultOp::Launch) {
            Err(f) => {
                if f != DeviceFault::Lost {
                    let dur = self.device.kernel_launch_overhead;
                    self.account("kernel", 0, dur, "fault.kernel");
                    self.submit(
                        stream,
                        self.kernel_slots,
                        dur,
                        SimDuration::ZERO,
                        "fault.kernel",
                    );
                }
                Err(f)
            }
            Ok(idx) => {
                let ecc = match (idx, self.faults.as_deref()) {
                    (Some(i), Some(st)) => st.plan().ecc_at(i),
                    _ => false,
                };
                if ecc {
                    let stall = self.device.ecc_retry_stall;
                    self.metrics.inc("fault.ecc_stalls", 1);
                    let at = self.barrier.as_nanos();
                    self.emit_fault_instant("fault.ecc_stall", FaultOp::Launch, at);
                    let dur = kernel_time(&self.device, spec);
                    self.account("kernel", 0, dur + stall, spec.label);
                    Ok(self.submit(stream, self.kernel_slots, dur, stall, spec.label))
                } else {
                    Ok(self.launch(stream, spec))
                }
            }
        }
    }

    /// Fallible variant of [`Gpu::alloc`]: allocation-pressure faults in
    /// the plan synthesize an [`OutOfMemory`] (capacity from the real
    /// pool; `available` reported as 0 because the pressure is
    /// external), emitted as an `"oom"` instant like a real rejection.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        if self.fault_check(FaultOp::Alloc).is_err() {
            let oom = OutOfMemory {
                requested: bytes,
                available: 0,
                capacity: self.pool.capacity(),
            };
            let at = self.barrier.as_nanos();
            let lane = format!("{}memory", self.lane_prefix);
            self.observer.instant(|| InstantEvent {
                track: "sim",
                lane,
                name: "oom".into(),
                at_ns: at,
                fields: vec![
                    ("requested", oom.requested.into()),
                    ("available", oom.available.into()),
                ],
            });
            return Err(oom);
        }
        self.alloc(bytes)
    }

    /// Enqueue a fixed-duration stall on `stream` (host-side work between
    /// device operations: iteration management, result inspection, grid
    /// teardown). Occupies no engine — only the stream's ordering.
    pub fn stall(&mut self, stream: StreamId, duration: SimDuration, label: &'static str) -> OpId {
        self.submit(
            stream,
            self.sync_resource,
            duration,
            SimDuration::ZERO,
            label,
        )
    }

    /// Record an event at the current tail of `stream`.
    pub fn record_event(&self, stream: StreamId) -> Event {
        Event(self.streams[stream.0].last_exec)
    }

    /// Make the next op submitted to `stream` wait for `event`.
    pub fn wait_event(&mut self, stream: StreamId, event: Event) {
        if let Event(Some(op)) = event {
            self.streams[stream.0].pending_waits.push(op);
        }
    }

    /// Full-device barrier: resolve the schedule, advance virtual time.
    /// Returns the device's current virtual clock.
    pub fn synchronize(&mut self) -> SimTime {
        let t = self.sched.flush();
        self.barrier = t;
        self.emit_resolved_ops();
        // A barrier orders everything after it; clear stream tails so their
        // dependency chains don't grow without bound across iterations (the
        // `earliest = barrier` bound subsumes them).
        for s in &mut self.streams {
            s.last_issue = None;
            s.last_exec = None;
            s.pending_waits.clear();
        }
        t
    }

    /// Emit every op resolved since the last emission as a `"sim"`
    /// track span, laned by hardware resource. Flush resolves all
    /// submitted ops, so after a `synchronize` everything up to
    /// `op_count` has a start/finish.
    fn emit_resolved_ops(&mut self) {
        if !self.observer.is_enabled() {
            self.emitted_ops = self.sched.op_count();
            return;
        }
        let from = self.emitted_ops;
        for (_, op) in self.sched.ops().skip(from) {
            let (Some(start), Some(finish)) = (op.start, op.finish) else {
                continue;
            };
            let lane = format!(
                "{}{}",
                self.lane_prefix,
                self.sched.resource_name(op.resource)
            );
            let name = op.label;
            self.observer.span(|| SpanEvent {
                track: "sim",
                lane,
                name: name.into(),
                start_ns: start.as_nanos(),
                dur_ns: finish.since(start).as_nanos(),
                fields: Vec::new(),
            });
        }
        self.emitted_ops = self.sched.op_count();
    }

    /// Resolved `(start_ns, finish_ns)` window of an op; `None` until
    /// the op's schedule has been flushed by a `synchronize`.
    pub fn op_window(&self, op: OpId) -> Option<(u64, u64)> {
        let rec = self.sched.op(op);
        Some((rec.start?.as_nanos(), rec.finish?.as_nanos()))
    }

    /// Virtual time elapsed up to the last synchronization.
    pub fn elapsed(&self) -> SimDuration {
        self.barrier - SimTime::ZERO
    }

    /// Execution profile counters (a view derived from [`Gpu::metrics`]).
    pub fn profile(&self) -> Profile {
        Profile::from_metrics(&self.metrics)
    }

    /// The device's metrics registry: transfer/launch counters, size
    /// and duration histograms, per-label series.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Export the device timeline as Chrome-trace JSON (see
    /// [`crate::trace`]); call after `synchronize`.
    pub fn chrome_trace(&self) -> String {
        crate::trace::chrome_trace(&self.sched)
    }

    /// Summary statistics (call after `synchronize`).
    pub fn stats(&self) -> GpuStats {
        let memcpy_busy = if self.h2d_engine == self.d2h_engine {
            self.sched.resource_busy(self.h2d_engine)
        } else {
            self.sched.resource_busy(self.h2d_engine) + self.sched.resource_busy(self.d2h_engine)
        };
        GpuStats {
            elapsed: self.elapsed(),
            memcpy_busy,
            kernel_busy: self.sched.resource_busy(self.kernel_slots),
            bytes_h2d: self.metrics.counter("h2d.bytes"),
            bytes_d2h: self.metrics.counter("d2h.bytes"),
            copy_ops: self.metrics.counter("h2d.ops") + self.metrics.counter("d2h.ops"),
            kernel_launches: self.metrics.counter("kernel.launches"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(&Platform::paper_node())
    }

    #[test]
    fn stream_ops_serialize_within_stream() {
        let mut g = gpu();
        let s = g.create_stream();
        let a = g.h2d(s, 1_000_000, "a");
        let b = g.h2d(s, 1_000_000, "b");
        g.synchronize();
        let fa = g.sched.op(a).finish.unwrap();
        let sb = g.sched.op(b).start.unwrap();
        assert!(sb >= fa);
    }

    #[test]
    fn copies_on_two_streams_still_share_the_h2d_engine() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        g.h2d(s1, 10_000_000, "a");
        g.h2d(s2, 10_000_000, "b");
        let t2 = g.synchronize();

        let mut g1 = gpu();
        let s = g1.create_stream();
        g1.h2d(s, 10_000_000, "a");
        let t1 = g1.synchronize();
        // Two same-direction copies serialize on the single DMA engine, so
        // elapsed is roughly double (issue overheads overlap, bodies don't).
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 1.8, "ratio {ratio}");
    }

    #[test]
    fn h2d_and_d2h_overlap_with_dual_copy_engines() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        let bytes = 60_000_000;
        g.h2d(s1, bytes, "in");
        g.d2h(s2, bytes, "out");
        let both = g.synchronize();

        let mut g1 = gpu();
        let s = g1.create_stream();
        g1.h2d(s, bytes, "in");
        let one = g1.synchronize();
        // Opposite directions overlap: total ≈ one direction, not two.
        assert!(both.as_secs_f64() < 1.2 * one.as_secs_f64());
    }

    #[test]
    fn copy_and_kernel_overlap_across_streams() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        let bytes = 120_000_000u64; // 20 ms on 6 GB/s link
        let spec = KernelSpec::balanced("k", 50_000_000, 10.0, 2_000_000_000, 0);
        g.h2d(s1, bytes, "copy");
        g.launch(s2, &spec);
        let overlapped = g.synchronize();

        let mut g2 = gpu();
        let s = g2.create_stream();
        g2.h2d(s, bytes, "copy");
        g2.launch(s, &spec);
        let serial = g2.synchronize();
        assert!(
            overlapped.as_secs_f64() < 0.75 * serial.as_secs_f64(),
            "overlap {overlapped:?} vs serial {serial:?}"
        );
    }

    #[test]
    fn events_order_across_streams() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        let a = g.h2d(s1, 50_000_000, "a");
        let ev = g.record_event(s1);
        g.wait_event(s2, ev);
        let spec = KernelSpec::balanced("k", 1000, 1.0, 8000, 0);
        let k = g.launch(s2, &spec);
        g.synchronize();
        assert!(g.sched.op(k).start.unwrap() >= g.sched.op(a).finish.unwrap());
    }

    #[test]
    fn event_on_empty_stream_is_noop() {
        let mut g = gpu();
        let s1 = g.create_stream();
        let s2 = g.create_stream();
        let ev = g.record_event(s1);
        g.wait_event(s2, ev);
        let spec = KernelSpec::balanced("k", 1000, 1.0, 8000, 0);
        let k = g.launch(s2, &spec);
        g.synchronize();
        let op = g.sched.op(k);
        assert_eq!(op.finish.unwrap() - op.start.unwrap(), op.duration);
    }

    #[test]
    fn barrier_orders_iterations() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 1_000_000, "a");
        let t1 = g.synchronize();
        let b = g.h2d(s, 1_000_000, "b");
        g.synchronize();
        assert!(g.sched.op(b).start.unwrap() >= t1);
    }

    #[test]
    fn many_small_copies_on_one_stream_pay_serial_issue() {
        // Spray motivation: 64 small copies on ONE stream pay 64 serialized
        // issue overheads; on 32 streams the issues pipeline with transfers.
        let n = 64u64;
        let bytes = 30_000u64; // transfer body ~5us, comparable to issue cost

        let mut one = gpu();
        let s = one.create_stream();
        for _ in 0..n {
            one.h2d(s, bytes, "sub");
        }
        let t_one = one.synchronize();

        let mut many = gpu();
        let streams: Vec<_> = (0..32).map(|_| many.create_stream()).collect();
        for i in 0..n {
            many.h2d(streams[(i % 32) as usize], bytes, "sub");
        }
        let t_many = many.synchronize();
        assert!(
            t_many.as_secs_f64() < 0.8 * t_one.as_secs_f64(),
            "spray {t_many:?} vs single {t_one:?}"
        );
    }

    #[test]
    fn more_streams_than_queues_share_queues() {
        let mut g = gpu();
        let width = g.device().hyperq_width as usize;
        let ids: Vec<_> = (0..width + 3).map(|_| g.create_stream()).collect();
        // Streams width..width+3 reuse queues 0..3.
        assert_eq!(g.streams[ids[0].0].queue, g.streams[ids[width].0].queue);
    }

    #[test]
    fn alloc_respects_capacity() {
        let g = gpu();
        let cap = g.memory().capacity();
        let _a = g.alloc(cap).unwrap();
        assert!(g.alloc(1).is_err());
    }

    #[test]
    fn observer_sees_resolved_ops_incrementally() {
        let (obs, rec) = Observer::recording();
        let mut g = gpu();
        g.set_observer(obs);
        let s = g.create_stream();
        g.h2d(s, 1_000_000, "in");
        g.synchronize();
        let first = rec.recorded().spans.len();
        // issue + copy at minimum, each exactly once.
        assert!(first >= 2, "{first} spans after first sync");
        // The copy appears once on the DMA engine lane (its latency
        // tail is a separate "sync"-lane op).
        let copies = |r: &gr_observe::Recorded| {
            r.spans
                .iter()
                .filter(|sp| sp.name == "in" && sp.lane == "h2d")
                .count()
        };
        assert_eq!(copies(&rec.recorded()), 1);
        assert!(rec.recorded().spans.iter().all(|sp| sp.track == "sim"));
        // Second iteration adds only the new ops.
        g.launch(s, &KernelSpec::balanced("k", 1_000_000, 2.0, 8_000_000, 0));
        g.synchronize();
        let r = rec.recorded();
        assert_eq!(copies(&r), 1, "old copy op re-emitted");
        assert_eq!(r.spans.iter().filter(|sp| sp.name == "k").count(), 1);
        let k = r.spans.iter().find(|sp| sp.name == "k").unwrap();
        assert_eq!(k.lane, "kernels");
        assert!(k.dur_ns > 0);
        // Stream creation was logged as an instant with its hw queue.
        assert!(r
            .instants
            .iter()
            .any(|i| i.name == "stream.created" && i.lane == "streams"));
    }

    #[test]
    fn observer_lane_prefix_tags_devices() {
        let (obs, rec) = Observer::recording();
        let mut g = gpu();
        g.set_observer_tagged(obs, "gpu3/");
        let s = g.create_stream();
        g.h2d(s, 1_000, "x");
        g.synchronize();
        let r = rec.recorded();
        assert!(r.spans.iter().all(|sp| sp.lane.starts_with("gpu3/")));
    }

    #[test]
    fn oom_emits_instant_event() {
        let (obs, rec) = Observer::recording();
        let mut g = gpu();
        g.set_observer(obs);
        let cap = g.memory().capacity();
        let _a = g.alloc(cap).unwrap();
        assert!(g.alloc(64).is_err());
        let r = rec.recorded();
        let oom = r.instants.iter().find(|i| i.name == "oom").unwrap();
        assert_eq!(oom.lane, "memory");
        assert!(oom
            .fields
            .iter()
            .any(|(k, v)| *k == "requested" && *v == gr_observe::FieldValue::U64(64)));
    }

    #[test]
    fn op_window_resolves_after_synchronize() {
        let mut g = gpu();
        let s = g.create_stream();
        let op = g.h2d(s, 1_000_000, "in");
        assert!(g.op_window(op).is_none());
        g.synchronize();
        let (start, finish) = g.op_window(op).unwrap();
        assert!(finish > start);
    }

    #[test]
    fn profile_is_derived_from_metrics() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 6_000_000, "in");
        g.d2h(s, 3_000_000, "out");
        g.synchronize();
        let p = g.profile();
        assert_eq!(p.bytes_h2d, g.metrics().counter("h2d.bytes"));
        assert_eq!(p.label("in").unwrap().bytes, 6_000_000);
        assert_eq!(g.metrics().histogram("h2d.size_bytes").unwrap().count(), 1);
    }

    #[test]
    fn try_ops_with_no_plan_match_infallible_ops() {
        let spec = KernelSpec::balanced("k", 1_000_000, 2.0, 8_000_000, 0);
        let mut a = gpu();
        let s = a.create_stream();
        a.h2d(s, 1_000_000, "in");
        a.launch(s, &spec);
        a.d2h(s, 1_000, "out");
        let ta = a.synchronize();

        let mut b = gpu();
        b.set_fault_plan(FaultPlan::none());
        let s = b.create_stream();
        b.try_h2d(s, 1_000_000, "in").unwrap();
        b.try_launch(s, &spec).unwrap();
        b.try_d2h(s, 1_000, "out").unwrap();
        let tb = b.synchronize();
        assert_eq!(ta, tb, "FaultPlan::none() must be zero-overhead");
        assert_eq!(b.faults_injected(), 0);
        assert_eq!(b.health(), DeviceHealth::Healthy);
    }

    #[test]
    fn transient_window_faults_the_scheduled_op_then_clears() {
        let mut g = gpu();
        g.set_fault_plan(FaultPlan::none().fail_h2d(1, 1));
        let s = g.create_stream();
        g.try_h2d(s, 1_000, "a").unwrap();
        let err = g.try_h2d(s, 1_000, "b").unwrap_err();
        assert_eq!(err, DeviceFault::Transient { op: FaultOp::H2d });
        // The per-class counter advanced, so the retry succeeds.
        g.try_h2d(s, 1_000, "b").unwrap();
        assert_eq!(g.faults_injected(), 1);
        // The aborted attempt charged a partial copy: 3 h2d ops total.
        assert_eq!(g.metrics().counter("h2d.ops"), 3);
    }

    #[test]
    fn device_loss_is_sticky_and_counted_once() {
        let mut g = gpu();
        g.set_fault_plan(FaultPlan::none().lose_device_at_ns(0));
        let s = g.create_stream();
        let spec = KernelSpec::balanced("k", 1_000, 1.0, 8_000, 0);
        assert_eq!(g.try_h2d(s, 1_000, "a").unwrap_err(), DeviceFault::Lost);
        assert_eq!(g.try_launch(s, &spec).unwrap_err(), DeviceFault::Lost);
        assert_eq!(g.try_d2h(s, 1_000, "b").unwrap_err(), DeviceFault::Lost);
        assert_eq!(g.health(), DeviceHealth::Lost);
        assert_eq!(g.faults_injected(), 1, "loss is one fault, not one per op");
        // Allocations are host-side bookkeeping and still succeed, so an
        // engine can build its runner and then fall back to the host.
        assert!(g.try_alloc(1_000).is_ok());
        // A dead device scheduled nothing.
        assert_eq!(g.synchronize(), SimTime::ZERO);
    }

    #[test]
    fn ecc_stall_adds_exactly_the_configured_latency() {
        let spec = KernelSpec::balanced("k", 1_000_000, 2.0, 8_000_000, 0);
        let mut a = gpu();
        let s = a.create_stream();
        a.try_launch(s, &spec).unwrap();
        let ta = a.synchronize();

        let mut b = gpu();
        b.set_fault_plan(FaultPlan::none().ecc_stall_on_launch(0));
        let s = b.create_stream();
        b.try_launch(s, &spec).unwrap();
        let tb = b.synchronize();
        assert_eq!(tb - ta, b.device().ecc_retry_stall);
        assert_eq!(b.metrics().counter("fault.ecc_stalls"), 1);
        assert_eq!(b.faults_injected(), 0, "a stall is a slowdown, not a fault");
    }

    #[test]
    fn degradation_window_slows_copies_inside_it() {
        let bytes = 10_000_000;
        let mut a = gpu();
        let s = a.create_stream();
        a.try_h2d(s, bytes, "x").unwrap();
        let ta = a.synchronize();

        let mut b = gpu();
        b.set_fault_plan(FaultPlan::none().degrade_bandwidth(0, u64::MAX, 4.0));
        assert_eq!(b.health(), DeviceHealth::Degraded);
        let s = b.create_stream();
        b.try_h2d(s, bytes, "x").unwrap();
        let tb = b.synchronize();
        let ratio = tb.as_secs_f64() / ta.as_secs_f64();
        assert!(ratio > 3.0, "degraded/nominal ratio {ratio}");
        assert_eq!(b.metrics().counter("fault.degraded_ops"), 1);
        assert_eq!(b.faults_injected(), 0);
    }

    #[test]
    fn forced_allocation_pressure_synthesizes_oom() {
        let mut g = gpu();
        g.set_fault_plan(FaultPlan::none().fail_alloc(0, 1));
        let err = g.try_alloc(4096).unwrap_err();
        assert_eq!(err.requested, 4096);
        assert_eq!(err.available, 0);
        assert_eq!(err.capacity, g.memory().capacity());
        assert_eq!(g.memory().used(), 0, "forced OOM must not reserve memory");
        // Window passed: the retry succeeds and really reserves memory.
        let a = g.try_alloc(4096).unwrap();
        assert_eq!(a.bytes(), 4096);
        assert_eq!(g.faults_injected(), 1);
    }

    #[test]
    fn faults_emit_instants_on_the_faults_lane() {
        let (obs, rec) = Observer::recording();
        let mut g = gpu();
        g.set_observer(obs);
        g.set_fault_plan(FaultPlan::none().fail_h2d(0, 1));
        let s = g.create_stream();
        g.try_h2d(s, 1_000, "x").unwrap_err();
        let r = rec.recorded();
        assert!(r
            .instants
            .iter()
            .any(|i| i.name == "fault.transient" && i.lane == "faults"));
    }

    #[test]
    fn stats_report_busy_times_and_bytes() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 6_000_000, "in");
        g.d2h(s, 3_000_000, "out");
        g.launch(s, &KernelSpec::balanced("k", 1_000_000, 2.0, 8_000_000, 0));
        g.synchronize();
        let st = g.stats();
        assert_eq!(st.bytes_h2d, 6_000_000);
        assert_eq!(st.bytes_d2h, 3_000_000);
        assert_eq!(st.copy_ops, 2);
        assert_eq!(st.kernel_launches, 1);
        assert!(st.memcpy_busy > SimDuration::ZERO);
        assert!(st.kernel_busy > SimDuration::ZERO);
        assert!(st.elapsed >= st.memcpy_busy.max(st.kernel_busy));
    }
}

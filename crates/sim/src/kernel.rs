//! SIMT kernel cost model.
//!
//! A kernel's simulated duration follows a roofline-style model: the kernel
//! is limited either by arithmetic throughput or by the memory system
//! (streamed coalesced bytes plus latency-bound uncoalesced accesses), with
//! two multiplicative corrections:
//!
//! * **occupancy** — kernels with fewer work items than the device has
//!   hardware thread slots cannot saturate it; their duration floors at the
//!   serial latency of one item's work. This is why small-frontier launches
//!   waste the GPU (Section 5.2) and why compute-compute overlap pays
//!   (Figure 5): two half-occupancy kernels can genuinely share the device.
//! * **imbalance** — without CTA-style load balancing, the longest thread
//!   block dominates; callers pass the max/mean work ratio (1.0 = balanced).

use crate::config::DeviceConfig;
use crate::time::SimDuration;

/// Work description of one kernel launch, filled in by the framework from
/// shard statistics before submission.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSpec {
    /// Trace label (e.g. "gatherMap").
    pub label: &'static str,
    /// Parallel work items (edges for edge-centric phases, vertices for
    /// vertex-centric ones).
    pub items: u64,
    /// Arithmetic operations per item.
    pub flops_per_item: f64,
    /// Coalesced (streaming) bytes read + written by the whole launch.
    pub seq_bytes: u64,
    /// Uncoalesced (random) accesses performed by the whole launch.
    pub rand_accesses: u64,
    /// Load-imbalance multiplier (max per-CTA work / mean); `>= 1.0`.
    pub imbalance: f64,
}

impl KernelSpec {
    /// A balanced kernel over `items` items with the given per-item costs.
    pub fn balanced(
        label: &'static str,
        items: u64,
        flops_per_item: f64,
        seq_bytes: u64,
        rand_accesses: u64,
    ) -> Self {
        KernelSpec {
            label,
            items,
            flops_per_item,
            seq_bytes,
            rand_accesses,
            imbalance: 1.0,
        }
    }

    /// Returns a copy with the given imbalance factor (clamped to >= 1).
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance.max(1.0);
        self
    }
}

/// Simulated execution time of `spec` on `dev`, excluding queue/issue
/// overheads (those are charged to the hardware queue by the scheduler) but
/// including the device-side launch overhead.
pub fn kernel_time(dev: &DeviceConfig, spec: &KernelSpec) -> SimDuration {
    if spec.items == 0 {
        // Empty launches still cost the dispatch.
        return dev.kernel_launch_overhead;
    }
    // Occupancy: fraction of the device the launch can fill. Each core needs
    // several resident items to hide latency; ~4 per core saturates.
    let slots = (dev.total_cores() * 4) as f64;
    let occupancy = (spec.items as f64 / slots).clamp(1e-3, 1.0);

    let compute_secs = spec.items as f64 * spec.flops_per_item / dev.flops_per_sec();
    let seq_secs = spec.seq_bytes as f64 / (dev.mem_bandwidth_gbps * 1e9);
    let rand_secs =
        spec.rand_accesses as f64 * dev.random_access_latency.as_secs_f64() / dev.mlp as f64;
    let body = (compute_secs.max(seq_secs + rand_secs)) / occupancy * spec.imbalance.max(1.0);
    dev.kernel_launch_overhead + SimDuration::from_secs_f64(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::k20c()
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let t = kernel_time(&dev(), &KernelSpec::balanced("x", 0, 10.0, 0, 0));
        assert_eq!(t, dev().kernel_launch_overhead);
    }

    #[test]
    fn memory_bound_kernel_tracks_bandwidth() {
        // 1 GiB of streaming on a 150 GB/s device, fully occupied:
        let d = dev();
        let items = 100_000_000;
        let t = kernel_time(&d, &KernelSpec::balanced("x", items, 0.1, 1 << 30, 0));
        let expect = (1u64 << 30) as f64 / (d.mem_bandwidth_gbps * 1e9);
        let got = (t - d.kernel_launch_overhead).as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.01,
            "got {got}, want {expect}"
        );
    }

    #[test]
    fn compute_bound_kernel_tracks_flops() {
        let d = dev();
        let items = 100_000_000u64;
        let flops = 100.0;
        let t = kernel_time(&d, &KernelSpec::balanced("x", items, flops, 8, 0));
        let expect = items as f64 * flops / d.flops_per_sec();
        let got = (t - d.kernel_launch_overhead).as_secs_f64();
        assert!((got - expect).abs() / expect < 0.01);
    }

    #[test]
    fn low_occupancy_kernel_does_not_speed_up() {
        // Halving the items of a tiny kernel should NOT halve its time: both
        // are latency-bound at low occupancy, so per-item time is constant.
        let d = dev();
        let small = kernel_time(&d, &KernelSpec::balanced("x", 100, 10.0, 100 * 8, 0));
        let smaller = kernel_time(&d, &KernelSpec::balanced("x", 50, 10.0, 50 * 8, 0));
        let s1 = (small - d.kernel_launch_overhead).as_secs_f64();
        let s2 = (smaller - d.kernel_launch_overhead).as_secs_f64();
        assert!(
            (s1 - s2).abs() / s1 < 0.02,
            "latency-bound regime: {s1} vs {s2}"
        );
    }

    #[test]
    fn imbalance_scales_duration() {
        let d = dev();
        let spec = KernelSpec::balanced("x", 10_000_000, 1.0, 80_000_000, 0);
        let bal = kernel_time(&d, &spec);
        let skew = kernel_time(&d, &spec.clone().with_imbalance(4.0));
        let b = (bal - d.kernel_launch_overhead).as_nanos() as f64;
        let s = (skew - d.kernel_launch_overhead).as_nanos() as f64;
        assert!((s / b - 4.0).abs() < 0.05);
    }

    #[test]
    fn imbalance_below_one_clamps() {
        let spec = KernelSpec::balanced("x", 1000, 1.0, 8000, 0).with_imbalance(0.2);
        assert_eq!(spec.imbalance, 1.0);
    }

    #[test]
    fn random_accesses_cost_more_than_sequential() {
        let d = dev();
        let n = 50_000_000u64;
        let seq = kernel_time(&d, &KernelSpec::balanced("s", n, 0.1, n * 4, 0));
        let rand = kernel_time(&d, &KernelSpec::balanced("r", n, 0.1, 0, n));
        assert!(rand > seq);
    }
}

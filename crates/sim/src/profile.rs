//! Execution counters for the virtual accelerator, derived from the
//! device's `gr-observe` metrics registry.
//!
//! The paper's Section 6.2.3 analysis is driven by exactly these numbers:
//! how much time the copy engines were busy (memcpy time), how much the
//! compute side was busy, and how many bytes crossed PCIe. The `Gpu`
//! facade accounts every submitted op in its [`MetricsRegistry`]; a
//! `Profile` is a *view* built from that single source of truth (it no
//! longer maintains parallel hand-updated counters).

use std::collections::HashMap;

use gr_observe::MetricsRegistry;

use crate::time::SimDuration;

/// Per-label aggregate (e.g. all "gatherMap" launches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of ops with this label.
    pub count: u64,
    /// Sum of modeled durations.
    pub total: SimDuration,
    /// Bytes moved (zero for kernels).
    pub bytes: u64,
}

/// Aggregate counters over all submitted device operations.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Bytes copied host-to-device.
    pub bytes_h2d: u64,
    /// Bytes copied device-to-host.
    pub bytes_d2h: u64,
    /// Number of H2D copy ops.
    pub h2d_ops: u64,
    /// Number of D2H copy ops.
    pub d2h_ops: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Sum of individual H2D durations (not engine busy time; equals it
    /// since copies in one direction serialize).
    pub h2d_time: SimDuration,
    /// Sum of individual D2H durations.
    pub d2h_time: SimDuration,
    /// Sum of individual kernel durations (can exceed wall time when kernels
    /// overlap).
    pub kernel_time: SimDuration,
    /// Per-label breakdown.
    labels: HashMap<&'static str, LabelStats>,
}

impl Profile {
    /// Build the profile view from a device metrics registry (the
    /// counter names are the ones `Gpu` writes on every submission).
    pub fn from_metrics(m: &MetricsRegistry) -> Self {
        let mut labels: HashMap<&'static str, LabelStats> = HashMap::new();
        for (label, count) in m.labels("op.count") {
            let e = labels.entry(label).or_default();
            e.count = count;
            e.total = SimDuration(m.counter_labeled("op.time_ns", label));
            e.bytes = m.counter_labeled("op.bytes", label);
        }
        Profile {
            bytes_h2d: m.counter("h2d.bytes"),
            bytes_d2h: m.counter("d2h.bytes"),
            h2d_ops: m.counter("h2d.ops"),
            d2h_ops: m.counter("d2h.ops"),
            kernel_launches: m.counter("kernel.launches"),
            h2d_time: SimDuration(m.counter("h2d.time_ns")),
            d2h_time: SimDuration(m.counter("d2h.time_ns")),
            kernel_time: SimDuration(m.counter("kernel.time_ns")),
            labels,
        }
    }

    /// Total memcpy work (both directions).
    pub fn memcpy_time(&self) -> SimDuration {
        self.h2d_time + self.d2h_time
    }

    /// Total bytes over PCIe in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_h2d + self.bytes_d2h
    }

    /// Aggregate for one label, if any op carried it.
    pub fn label(&self, label: &str) -> Option<LabelStats> {
        self.labels.get(label).copied()
    }

    /// All labels sorted by total time, descending (for trace dumps).
    pub fn labels_by_time(&self) -> Vec<(&'static str, LabelStats)> {
        let mut v: Vec<_> = self.labels.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Populate a registry exactly as `Gpu` does per op.
    fn account(m: &mut MetricsRegistry, kind: &str, bytes: u64, ns: u64, label: &'static str) {
        match kind {
            "h2d" => {
                m.inc("h2d.bytes", bytes);
                m.inc("h2d.ops", 1);
                m.inc("h2d.time_ns", ns);
            }
            "d2h" => {
                m.inc("d2h.bytes", bytes);
                m.inc("d2h.ops", 1);
                m.inc("d2h.time_ns", ns);
            }
            _ => {
                m.inc("kernel.launches", 1);
                m.inc("kernel.time_ns", ns);
            }
        }
        m.inc_labeled("op.count", label, 1);
        m.inc_labeled("op.time_ns", label, ns);
        m.inc_labeled("op.bytes", label, bytes);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        account(&mut m, "h2d", 100, 10, "in-edges");
        account(&mut m, "h2d", 200, 20, "in-edges");
        account(&mut m, "d2h", 50, 5, "vertices");
        account(&mut m, "kernel", 0, 40, "gatherMap");
        let p = Profile::from_metrics(&m);
        assert_eq!(p.bytes_h2d, 300);
        assert_eq!(p.bytes_d2h, 50);
        assert_eq!(p.h2d_ops, 2);
        assert_eq!(p.d2h_ops, 1);
        assert_eq!(p.kernel_launches, 1);
        assert_eq!(p.memcpy_time(), SimDuration(35));
        assert_eq!(p.total_bytes(), 350);
        let l = p.label("in-edges").unwrap();
        assert_eq!(l.count, 2);
        assert_eq!(l.bytes, 300);
        assert_eq!(l.total, SimDuration(30));
        assert!(p.label("nope").is_none());
    }

    #[test]
    fn labels_sorted_by_time() {
        let mut m = MetricsRegistry::new();
        account(&mut m, "kernel", 0, 5, "small");
        account(&mut m, "kernel", 0, 50, "big");
        let order: Vec<_> = Profile::from_metrics(&m)
            .labels_by_time()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(order, vec!["big", "small"]);
    }
}

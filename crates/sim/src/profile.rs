//! Execution counters for the virtual accelerator.
//!
//! The paper's Section 6.2.3 analysis is driven by exactly these numbers:
//! how much time the copy engines were busy (memcpy time), how much the
//! compute side was busy, and how many bytes crossed PCIe. The `Gpu` facade
//! updates a `Profile` on every submitted op; engines read it back to report
//! Figure 15 and the "memcpy is ~95% of execution" observation.

use std::collections::HashMap;

use crate::time::SimDuration;

/// Per-label aggregate (e.g. all "gatherMap" launches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelStats {
    /// Number of ops with this label.
    pub count: u64,
    /// Sum of modeled durations.
    pub total: SimDuration,
    /// Bytes moved (zero for kernels).
    pub bytes: u64,
}

/// Aggregate counters over all submitted device operations.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Bytes copied host-to-device.
    pub bytes_h2d: u64,
    /// Bytes copied device-to-host.
    pub bytes_d2h: u64,
    /// Number of H2D copy ops.
    pub h2d_ops: u64,
    /// Number of D2H copy ops.
    pub d2h_ops: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Sum of individual H2D durations (not engine busy time; equals it
    /// since copies in one direction serialize).
    pub h2d_time: SimDuration,
    /// Sum of individual D2H durations.
    pub d2h_time: SimDuration,
    /// Sum of individual kernel durations (can exceed wall time when kernels
    /// overlap).
    pub kernel_time: SimDuration,
    /// Per-label breakdown.
    labels: HashMap<&'static str, LabelStats>,
}

impl Profile {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_h2d(&mut self, bytes: u64, dur: SimDuration, label: &'static str) {
        self.bytes_h2d += bytes;
        self.h2d_ops += 1;
        self.h2d_time += dur;
        self.bump(label, dur, bytes);
    }

    pub(crate) fn record_d2h(&mut self, bytes: u64, dur: SimDuration, label: &'static str) {
        self.bytes_d2h += bytes;
        self.d2h_ops += 1;
        self.d2h_time += dur;
        self.bump(label, dur, bytes);
    }

    pub(crate) fn record_kernel(&mut self, dur: SimDuration, label: &'static str) {
        self.kernel_launches += 1;
        self.kernel_time += dur;
        self.bump(label, dur, 0);
    }

    fn bump(&mut self, label: &'static str, dur: SimDuration, bytes: u64) {
        let e = self.labels.entry(label).or_default();
        e.count += 1;
        e.total += dur;
        e.bytes += bytes;
    }

    /// Total memcpy work (both directions).
    pub fn memcpy_time(&self) -> SimDuration {
        self.h2d_time + self.d2h_time
    }

    /// Total bytes over PCIe in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_h2d + self.bytes_d2h
    }

    /// Aggregate for one label, if any op carried it.
    pub fn label(&self, label: &str) -> Option<LabelStats> {
        self.labels.get(label).copied()
    }

    /// All labels sorted by total time, descending (for trace dumps).
    pub fn labels_by_time(&self) -> Vec<(&'static str, LabelStats)> {
        let mut v: Vec<_> = self.labels.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut p = Profile::new();
        p.record_h2d(100, SimDuration(10), "in-edges");
        p.record_h2d(200, SimDuration(20), "in-edges");
        p.record_d2h(50, SimDuration(5), "vertices");
        p.record_kernel(SimDuration(40), "gatherMap");
        assert_eq!(p.bytes_h2d, 300);
        assert_eq!(p.bytes_d2h, 50);
        assert_eq!(p.h2d_ops, 2);
        assert_eq!(p.d2h_ops, 1);
        assert_eq!(p.kernel_launches, 1);
        assert_eq!(p.memcpy_time(), SimDuration(35));
        assert_eq!(p.total_bytes(), 350);
        let l = p.label("in-edges").unwrap();
        assert_eq!(l.count, 2);
        assert_eq!(l.bytes, 300);
        assert_eq!(l.total, SimDuration(30));
        assert!(p.label("nope").is_none());
    }

    #[test]
    fn labels_sorted_by_time() {
        let mut p = Profile::new();
        p.record_kernel(SimDuration(5), "small");
        p.record_kernel(SimDuration(50), "big");
        let order: Vec<_> = p.labels_by_time().into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, vec!["big", "small"]);
    }
}

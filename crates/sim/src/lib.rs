//! # gr-sim — virtual accelerator substrate
//!
//! A discrete-event simulation of a CUDA-class discrete GPU, built as the
//! hardware substrate for the GraphReduce (SC '15) reproduction. The paper's
//! framework is, at its core, a *scheduler of data movement*: shards stream
//! over PCIe on asynchronous streams while kernels run, and every headline
//! optimization (spray copies, frontier-driven copy skipping, phase fusion)
//! changes *what is copied when*. This crate models precisely that layer:
//!
//! * [`config`] — device / PCIe / host descriptions with K20c-era presets;
//! * [`memory`] — capacity-accounted device memory (hard OOM past capacity);
//! * [`schedule`] — the earliest-ready-first discrete-event scheduler;
//! * [`gpu`] — CUDA-semantics streams, events, async copies, kernel
//!   launches, Hyper-Q hardware queues;
//! * [`xfer`] — explicit / pinned / managed transfer cost models (Figure 4);
//! * [`kernel`] — roofline SIMT kernel cost model with occupancy and load
//!   imbalance;
//! * [`cpu`] — the symmetric host-CPU cost model used by baseline engines;
//! * [`fault`] — deterministic, seed-driven fault plans (transient op
//!   failures, ECC stalls, bandwidth degradation, device loss) surfaced
//!   through the `Gpu::try_*` entry points;
//! * [`profile`] — byte/time counters behind the paper's Section 6.2.3
//!   analysis.
//!
//! Kernel *results* are always computed for real on the host (callers run
//! their closures eagerly, typically with rayon); the simulator assigns
//! virtual time. Simulated timings are deterministic: integer-nanosecond
//! arithmetic, no host wall clock anywhere.

pub mod config;
pub mod cpu;
pub mod fault;
pub mod gpu;
pub mod kernel;
pub mod memory;
pub mod profile;
pub mod schedule;
pub mod time;
pub mod trace;
pub mod xfer;

pub use config::{DeviceConfig, HostConfig, PcieConfig, Platform, StorageConfig};
pub use cpu::{cpu_time, CpuClock, CpuWork};
pub use fault::{
    BandwidthWindow, DeviceFault, DeviceHealth, FaultOp, FaultPlan, FaultWindow, IoFault,
    IoFaultState, IoFaultWindow, IoOp,
};
pub use gpu::{Event, Gpu, GpuStats, StreamId};
pub use kernel::{kernel_time, KernelSpec};
pub use memory::{Allocation, MemoryPool, OutOfMemory};
pub use profile::{LabelStats, Profile};
pub use schedule::{Capacity, OpId, ResourceId, Scheduler};
pub use time::{SimDuration, SimTime};
pub use trace::chrome_trace;

//! Property tests for the discrete-event scheduler: for arbitrary DAGs of
//! operations over arbitrary resources, the produced schedule must respect
//! dependencies, never exceed any resource's capacity, and account busy
//! time exactly.

use proptest::prelude::*;

use gr_sim::{Capacity, OpId, Scheduler, SimDuration, SimTime};

/// A generated workload: resources with capacities, ops with (resource,
/// duration, dep fan-in drawn from earlier ops, earliest bound).
#[derive(Clone, Debug)]
struct Workload {
    capacities: Vec<u32>,
    // (resource index, duration ns, dep indices (earlier), earliest ns)
    ops: Vec<(usize, u64, Vec<usize>, u64)>,
    // flush after each op index in this set (tests incremental batching)
    flush_points: Vec<usize>,
}

fn workload() -> impl Strategy<Value = Workload> {
    let caps = prop::collection::vec(1u32..4, 1..4);
    caps.prop_flat_map(|capacities| {
        let nres = capacities.len();
        let ops = prop::collection::vec(
            (
                0..nres,
                1u64..200,
                prop::collection::vec(0usize..1000, 0..4),
                0u64..500,
            ),
            1..60,
        );
        let flushes = prop::collection::vec(0usize..60, 0..4);
        (Just(capacities), ops, flushes).prop_map(|(capacities, raw, flush_points)| {
            let ops = raw
                .into_iter()
                .enumerate()
                .map(|(i, (r, d, deps, e))| {
                    // Deps must point at strictly earlier ops.
                    let deps = deps
                        .into_iter()
                        .filter_map(|x| if i > 0 { Some(x % i) } else { None })
                        .collect();
                    (r, d, deps, e)
                })
                .collect();
            Workload {
                capacities,
                ops,
                flush_points,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedule_is_valid(w in workload()) {
        let mut s = Scheduler::new();
        let rids: Vec<_> = w
            .capacities
            .iter()
            .map(|&c| s.add_resource("r", Capacity::Finite(c)))
            .collect();
        let mut ids: Vec<OpId> = Vec::new();
        for (i, (r, d, deps, e)) in w.ops.iter().enumerate() {
            let dep_ids: Vec<OpId> = deps.iter().map(|&j| ids[j]).collect();
            ids.push(s.submit(
                rids[*r],
                SimDuration::from_nanos(*d),
                dep_ids,
                SimTime(*e),
                "op",
            ));
            if w.flush_points.contains(&i) {
                s.flush();
            }
        }
        let makespan = s.flush();

        // 1. Every op scheduled, with finish = start + duration.
        for (i, &id) in ids.iter().enumerate() {
            let op = s.op(id);
            let (start, finish) = (op.start.unwrap(), op.finish.unwrap());
            prop_assert_eq!(finish - start, op.duration);
            // 2. Starts respect the earliest bound.
            prop_assert!(start >= SimTime(w.ops[i].3));
            // 3. Starts respect dependencies.
            for &d in &op.deps {
                prop_assert!(start >= s.op(d).finish.unwrap());
            }
            prop_assert!(finish <= makespan);
        }

        // 4. Makespan is exactly the max finish.
        let max_finish = ids.iter().map(|&id| s.op(id).finish.unwrap()).max().unwrap();
        prop_assert_eq!(makespan, max_finish);

        // 5. Capacity is never exceeded: sweep each resource's intervals.
        for (ri, &rid) in rids.iter().enumerate() {
            let mut events: Vec<(u64, i64)> = Vec::new();
            let mut busy = 0u64;
            for &id in &ids {
                let op = s.op(id);
                if op.resource == rid && !op.duration.is_zero() {
                    events.push((op.start.unwrap().as_nanos(), 1));
                    events.push((op.finish.unwrap().as_nanos(), -1));
                    busy += op.duration.as_nanos();
                }
            }
            events.sort_by_key(|&(t, delta)| (t, delta)); // finish (-1) before start (+1) at ties
            let mut level = 0i64;
            for (_, delta) in events {
                level += delta;
                prop_assert!(
                    level <= w.capacities[ri] as i64,
                    "resource {ri} over capacity"
                );
            }
            // 6. Busy time accounts the sum of durations.
            prop_assert_eq!(s.resource_busy(rid).as_nanos(), busy);
        }
    }

    #[test]
    fn schedule_is_deterministic(w in workload()) {
        let run = |w: &Workload| {
            let mut s = Scheduler::new();
            let rids: Vec<_> = w
                .capacities
                .iter()
                .map(|&c| s.add_resource("r", Capacity::Finite(c)))
                .collect();
            let mut ids = Vec::new();
            for (r, d, deps, e) in &w.ops {
                let dep_ids: Vec<OpId> = deps.iter().map(|&j| ids[j]).collect();
                ids.push(s.submit(
                    rids[*r],
                    SimDuration::from_nanos(*d),
                    dep_ids,
                    SimTime(*e),
                    "op",
                ));
            }
            s.flush();
            ids.iter().map(|&i| s.op(i).start.unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&w), run(&w));
    }
}

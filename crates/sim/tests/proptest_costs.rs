//! Property tests over the cost models: monotonicity and scale-freedom
//! properties that every calibration must preserve (regressions here mean
//! a figure of the reproduction can silently invert).

use proptest::prelude::*;

use gr_sim::xfer::{explicit_copy_time, transfer_access_time, AccessPattern, TransferMode};
use gr_sim::{cpu_time, kernel_time, CpuWork, KernelSpec, Platform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Kernel time is monotone in items, bytes, random accesses, and
    /// imbalance.
    #[test]
    fn kernel_time_is_monotone(
        items in 1u64..1_000_000_000,
        flops in 0.0f64..64.0,
        seq in 0u64..1_000_000_000,
        rand in 0u64..1_000_000_000,
        imb in 1.0f64..16.0,
    ) {
        let d = Platform::paper_node().device;
        let base = KernelSpec {
            label: "k",
            items,
            flops_per_item: flops,
            seq_bytes: seq,
            rand_accesses: rand,
            imbalance: imb,
        };
        let t = kernel_time(&d, &base);
        let mut more_items = base.clone();
        more_items.items = items.saturating_mul(2);
        prop_assert!(kernel_time(&d, &more_items) >= t);
        let mut more_bytes = base.clone();
        more_bytes.seq_bytes = seq.saturating_mul(2);
        prop_assert!(kernel_time(&d, &more_bytes) >= t);
        let mut more_rand = base.clone();
        more_rand.rand_accesses = rand.saturating_mul(2);
        prop_assert!(kernel_time(&d, &more_rand) >= t);
        let mut more_imb = base.clone();
        more_imb.imbalance = imb * 2.0;
        prop_assert!(kernel_time(&d, &more_imb) >= t);
        // Launch overhead is a hard floor.
        prop_assert!(t >= d.kernel_launch_overhead);
    }

    /// CPU time is monotone in work and antitone in thread count.
    #[test]
    fn cpu_time_is_monotone(
        items in 1u64..1_000_000_000,
        ops in 0.1f64..64.0,
        seq in 0u64..1_000_000_000,
        rand in 0u64..100_000_000,
        threads in 1u32..16,
    ) {
        let h = Platform::paper_node().host;
        let w = CpuWork::new("w", items, ops, seq, rand);
        let t = cpu_time(&h, threads, &w);
        let double = CpuWork::new("w", items.saturating_mul(2), ops, seq.saturating_mul(2), rand.saturating_mul(2));
        prop_assert!(cpu_time(&h, threads, &double) >= t);
        prop_assert!(cpu_time(&h, threads + 1, &w) <= t);
    }

    /// Explicit copies: monotone in bytes, and latency-dominated only for
    /// small transfers.
    #[test]
    fn copy_time_monotone(bytes in 0u64..10_000_000_000) {
        let p = Platform::paper_node().pcie;
        let t = explicit_copy_time(&p, bytes);
        prop_assert!(t >= p.transfer_latency);
        prop_assert!(explicit_copy_time(&p, bytes.saturating_mul(2)) >= t);
    }

    /// The Figure 4 orderings hold for any buffer larger than a few pages,
    /// not just the paper's 100M-double point.
    #[test]
    fn figure4_orderings_are_robust(n in 10_000u64..1_000_000_000) {
        let p = Platform::paper_node();
        let t = |m, a| transfer_access_time(&p.pcie, &p.device, m, a, n * 8, n, 8);
        prop_assert!(
            t(TransferMode::PinnedUva, AccessPattern::Sequential)
                <= t(TransferMode::Explicit, AccessPattern::Sequential)
        );
        prop_assert!(
            t(TransferMode::Explicit, AccessPattern::Random)
                <= t(TransferMode::Managed, AccessPattern::Random)
        );
        prop_assert!(
            t(TransferMode::Managed, AccessPattern::Random)
                <= t(TransferMode::PinnedUva, AccessPattern::Random)
        );
    }
}

//! Model-based property tests for the device memory pool: an arbitrary
//! interleaving of allocations, frees, and resizes must keep accounting
//! exact and fail with OOM precisely when the request exceeds free space.

use proptest::prelude::*;

use gr_sim::MemoryPool;

#[derive(Clone, Debug)]
enum Action {
    Alloc(u64),
    /// Free the i-th live allocation (modulo current count).
    Free(usize),
    /// Resize the i-th live allocation.
    Resize(usize, u64),
}

fn actions() -> impl Strategy<Value = (u64, Vec<Action>)> {
    let action = prop_oneof![
        (0u64..2000).prop_map(Action::Alloc),
        (0usize..16).prop_map(Action::Free),
        ((0usize..16), 0u64..2000).prop_map(|(i, b)| Action::Resize(i, b)),
    ];
    (1u64..5000, prop::collection::vec(action, 0..64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn accounting_is_exact((capacity, acts) in actions()) {
        let pool = MemoryPool::new(capacity);
        let mut live: Vec<gr_sim::Allocation> = Vec::new();
        let mut model_used = 0u64;
        let mut model_peak = 0u64;

        for act in acts {
            match act {
                Action::Alloc(bytes) => {
                    let fits = bytes <= capacity - model_used;
                    match pool.alloc(bytes) {
                        Ok(a) => {
                            prop_assert!(fits, "alloc of {bytes} should have failed");
                            model_used += bytes;
                            model_peak = model_peak.max(model_used);
                            live.push(a);
                        }
                        Err(e) => {
                            prop_assert!(!fits, "alloc of {bytes} should have succeeded");
                            prop_assert_eq!(e.requested, bytes);
                            prop_assert_eq!(e.available, capacity - model_used);
                        }
                    }
                }
                Action::Free(i) => {
                    if !live.is_empty() {
                        let a = live.remove(i % live.len());
                        model_used -= a.bytes();
                        drop(a);
                    }
                }
                Action::Resize(i, bytes) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let old = live[idx].bytes();
                        let fits = bytes <= old || bytes - old <= capacity - model_used;
                        match live[idx].resize(bytes) {
                            Ok(()) => {
                                prop_assert!(fits);
                                model_used = model_used - old + bytes;
                                model_peak = model_peak.max(model_used);
                            }
                            Err(_) => {
                                prop_assert!(!fits);
                                prop_assert_eq!(live[idx].bytes(), old);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(pool.used(), model_used);
            prop_assert_eq!(pool.available(), capacity - model_used);
            prop_assert_eq!(pool.live_allocations(), live.len() as u64);
            prop_assert!(pool.used() <= pool.capacity());
        }
        prop_assert_eq!(pool.peak(), model_peak);
        drop(live);
        prop_assert_eq!(pool.used(), 0);
    }
}

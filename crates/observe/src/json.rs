//! Minimal hand-rolled JSON writing helpers (the workspace builds
//! offline, so no serde). Only what the exporters need: escaping,
//! quoted strings, and float formatting that round-trips cleanly.

use crate::event::FieldValue;

/// Escape a string for inclusion inside JSON quotes: backslash,
/// double quote, and control characters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number for an `f64` (finite values; non-finite become null,
/// which JSON has no other spelling for).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints an exponent for ordinary magnitudes
        // and always round-trips; ensure integral floats stay numbers
        // with a decimal point so consumers see a float type.
        if s.contains('.') || s.contains('e') || s.contains('-') && s.ends_with("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Render a [`FieldValue`] as a JSON value.
pub fn field_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::F64(f) => number(*f),
        FieldValue::Str(s) => string(s),
        FieldValue::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn field_values_render() {
        assert_eq!(field_value(&FieldValue::U64(7)), "7");
        assert_eq!(field_value(&FieldValue::Bool(false)), "false");
        assert_eq!(field_value(&FieldValue::Str("a\"b".into())), "\"a\\\"b\"");
    }
}

//! Exporters over a [`Recorded`] capture: a JSONL event stream and a
//! Chrome/Perfetto trace. Both are pure functions from records to
//! `String`; callers decide where the bytes go.

use crate::event::{Decision, InstantEvent, SpanEvent};
use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::sink::Recorded;

/// One JSON object per line: every span, instant, decision, and
/// metrics snapshot, in emission order within each kind. Suitable for
/// `grep`/`jq` pipelines and append-only log files.
pub fn jsonl(rec: &Recorded) -> String {
    let mut out = String::new();
    for s in &rec.spans {
        out.push_str(&span_line(s));
        out.push('\n');
    }
    for i in &rec.instants {
        out.push_str(&instant_line(i));
        out.push('\n');
    }
    for d in &rec.decisions {
        out.push_str(&decision_line(d));
        out.push('\n');
    }
    for (scope, snap) in &rec.snapshots {
        out.push_str(&snapshot_line(scope, snap));
        out.push('\n');
    }
    out
}

fn fields_json(fields: &[(&'static str, crate::FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!(",{}:{}", json::string(k), json::field_value(v)))
        .collect()
}

fn span_line(s: &SpanEvent) -> String {
    format!(
        "{{\"type\":\"span\",\"track\":{},\"lane\":{},\"name\":{},\"start_ns\":{},\"dur_ns\":{}{}}}",
        json::string(s.track),
        json::string(&s.lane),
        json::string(&s.name),
        s.start_ns,
        s.dur_ns,
        fields_json(&s.fields)
    )
}

fn instant_line(i: &InstantEvent) -> String {
    format!(
        "{{\"type\":\"instant\",\"track\":{},\"lane\":{},\"name\":{},\"at_ns\":{}{}}}",
        json::string(i.track),
        json::string(&i.lane),
        json::string(&i.name),
        i.at_ns,
        fields_json(&i.fields)
    )
}

fn decision_line(d: &Decision) -> String {
    match d {
        Decision::ShardSkip {
            iteration,
            shard,
            interval_bits,
            active_bits,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"shard_skip\",\"iteration\":{iteration},\
             \"shard\":{shard},\"interval_bits\":{interval_bits},\"active_bits\":{active_bits}}}"
        ),
        Decision::PhaseFusion { phases, rationale } => format!(
            "{{\"type\":\"decision\",\"kind\":\"phase_fusion\",\"phases\":{},\"rationale\":{}}}",
            json::string(phases),
            json::string(rationale)
        ),
        Decision::PhaseElimination { phase, rationale } => format!(
            "{{\"type\":\"decision\",\"kind\":\"phase_elimination\",\"phase\":{},\"rationale\":{}}}",
            json::string(phase),
            json::string(rationale)
        ),
        Decision::FaultRetry {
            iteration,
            device,
            op,
            fault,
            attempt,
            backoff_ns,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"fault_retry\",\"iteration\":{iteration},\
             \"device\":{device},\"op\":{},\"fault\":{},\"attempt\":{attempt},\
             \"backoff_ns\":{backoff_ns}}}",
            json::string(op),
            json::string(fault)
        ),
        Decision::Rollback {
            iteration,
            device,
            op,
            fault,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"rollback\",\"iteration\":{iteration},\
             \"device\":{device},\"op\":{},\"fault\":{}}}",
            json::string(op),
            json::string(fault)
        ),
        Decision::DeviceEvict {
            iteration,
            device,
            shards_moved,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"device_evict\",\"iteration\":{iteration},\
             \"device\":{device},\"shards_moved\":{shards_moved}}}"
        ),
        Decision::MemoryPressure {
            device,
            requested,
            available,
            capacity,
            response,
            scope,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"memory_pressure\",\"device\":{device},\
             \"requested\":{requested},\"available\":{available},\"capacity\":{capacity},\
             \"response\":{},\"scope\":{}}}",
            json::string(response),
            json::string(scope)
        ),
        Decision::ShardSplit {
            shard,
            vertices,
            bytes,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"shard_split\",\"shard\":{shard},\
             \"vertices\":{vertices},\"bytes\":{bytes}}}"
        ),
        Decision::ChunkedXfer {
            shard,
            shard_bytes,
            chunk_bytes,
            chunks,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"chunked_xfer\",\"shard\":{shard},\
             \"shard_bytes\":{shard_bytes},\"chunk_bytes\":{chunk_bytes},\"chunks\":{chunks}}}"
        ),
        Decision::HostFallback {
            iteration,
            device,
            rationale,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"host_fallback\",\"iteration\":{iteration},\
             \"device\":{device},\"rationale\":{}}}",
            json::string(rationale)
        ),
        Decision::ShardSpill {
            shard,
            bytes,
            store,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"shard_spill\",\"shard\":{shard},\
             \"bytes\":{bytes},\"store\":{}}}",
            json::string(store)
        ),
        Decision::ShardLoad {
            iteration,
            shard,
            bytes,
            store,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"shard_load\",\"iteration\":{iteration},\
             \"shard\":{shard},\"bytes\":{bytes},\"store\":{}}}",
            json::string(store)
        ),
        Decision::CompressShard {
            shard,
            raw_bytes,
            compressed_bytes,
            codec,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"compress_shard\",\"shard\":{shard},\
             \"raw_bytes\":{raw_bytes},\"compressed_bytes\":{compressed_bytes},\"codec\":{}}}",
            json::string(codec)
        ),
        Decision::DecompressShard {
            iteration,
            shard,
            compressed_bytes,
            raw_bytes,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"decompress_shard\",\"iteration\":{iteration},\
             \"shard\":{shard},\"compressed_bytes\":{compressed_bytes},\"raw_bytes\":{raw_bytes}}}"
        ),
        Decision::CheckpointWrite { iteration, bytes } => format!(
            "{{\"type\":\"decision\",\"kind\":\"checkpoint_write\",\"iteration\":{iteration},\
             \"bytes\":{bytes}}}"
        ),
        Decision::CheckpointRestore { iteration, bytes } => format!(
            "{{\"type\":\"decision\",\"kind\":\"checkpoint_restore\",\"iteration\":{iteration},\
             \"bytes\":{bytes}}}"
        ),
        Decision::StorageRetry {
            iteration,
            op,
            fault,
            shard,
            attempt,
            backoff_ns,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"storage_retry\",\"iteration\":{iteration},\
             \"op\":{},\"fault\":{},\"shard\":{shard},\"attempt\":{attempt},\
             \"backoff_ns\":{backoff_ns}}}",
            json::string(op),
            json::string(fault)
        ),
        Decision::StorageDegraded {
            iteration,
            op,
            shard,
            rationale,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"storage_degraded\",\"iteration\":{iteration},\
             \"op\":{},\"shard\":{shard},\"rationale\":{}}}",
            json::string(op),
            json::string(rationale)
        ),
        Decision::CheckpointSkipped {
            iteration,
            rationale,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"checkpoint_skipped\",\"iteration\":{iteration},\
             \"rationale\":{}}}",
            json::string(rationale)
        ),
        Decision::QueryAdmit {
            query,
            kind,
            queue_depth,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"query_admit\",\"query\":{query},\
             \"query_kind\":{},\"queue_depth\":{queue_depth}}}",
            json::string(kind)
        ),
        Decision::QueryReject {
            kind,
            queue_depth,
            rationale,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"query_reject\",\"query_kind\":{},\
             \"queue_depth\":{queue_depth},\"rationale\":{}}}",
            json::string(kind),
            json::string(rationale)
        ),
        Decision::BatchFormed { batch, size, kind } => format!(
            "{{\"type\":\"decision\",\"kind\":\"batch_formed\",\"batch\":{batch},\
             \"size\":{size},\"query_kind\":{}}}",
            json::string(kind)
        ),
        Decision::QueryDone {
            query,
            batch,
            lane,
            deadline_met,
        } => format!(
            "{{\"type\":\"decision\",\"kind\":\"query_done\",\"query\":{query},\
             \"batch\":{batch},\"lane\":{lane},\"deadline_met\":{deadline_met}}}"
        ),
    }
}

fn snapshot_line(scope: &str, snap: &MetricsSnapshot) -> String {
    format!(
        "{{\"type\":\"snapshot\",\"scope\":{},{}}}",
        json::string(scope),
        snapshot_body(snap)
    )
}

/// The `counters`/`gauges`/`histograms` members of a snapshot object
/// (without surrounding braces), shared with the run-report exporter.
pub fn snapshot_body(snap: &MetricsSnapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{}", json::string(k), v))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, v)| format!("{}:{}", json::string(k), json::number(*v)))
        .collect();
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(lb, c)| format!("[{lb},{c}]"))
                .collect();
            format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json::string(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(",")
            )
        })
        .collect();
    format!(
        "\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Chrome trace (the `chrome://tracing` / Perfetto JSON format), with
/// one *process* per track (`sim`, `engine`, `multi`) and one *thread*
/// per lane, so resource timelines and GAS-phase timelines load as
/// separate named groups in one unified view. Spans become complete
/// (`"X"`) events, instants become instant (`"i"`) events; timestamps
/// convert from virtual nanoseconds to the format's microseconds.
pub fn chrome_trace(rec: &Recorded) -> String {
    let mut tracks: Vec<&'static str> = Vec::new();
    let mut lanes: Vec<(usize, String)> = Vec::new(); // (pid, lane) -> index = tid order
    let mut events: Vec<String> = Vec::new();

    let mut ids = |track: &'static str, lane: &str| -> (usize, usize) {
        let pid = match tracks.iter().position(|t| *t == track) {
            Some(p) => p,
            None => {
                tracks.push(track);
                tracks.len() - 1
            }
        };
        let tid = match lanes
            .iter()
            .filter(|(p, _)| *p == pid)
            .position(|(_, l)| l == lane)
        {
            Some(t) => t,
            None => {
                let t = lanes.iter().filter(|(p, _)| *p == pid).count();
                lanes.push((pid, lane.to_string()));
                t
            }
        };
        (pid, tid)
    };

    for s in &rec.spans {
        let (pid, tid) = ids(s.track, &s.lane);
        events.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{{}}}}}",
            json::string(&s.name),
            pid,
            tid,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            args_json(&s.fields)
        ));
    }
    for i in &rec.instants {
        let (pid, tid) = ids(i.track, &i.lane);
        events.push(format!(
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\
             \"args\":{{{}}}}}",
            json::string(&i.name),
            pid,
            tid,
            i.at_ns as f64 / 1e3,
            args_json(&i.fields)
        ));
    }

    // Metadata first so viewers name processes/threads before events.
    let mut meta: Vec<String> = Vec::new();
    for (pid, track) in tracks.iter().enumerate() {
        meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":{}}}}}",
            pid,
            json::string(track)
        ));
        meta.push(format!(
            "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\
             \"args\":{{\"sort_index\":{pid}}}}}"
        ));
    }
    let mut tid_within = vec![0usize; tracks.len()];
    for (pid, lane) in &lanes {
        let tid = tid_within[*pid];
        tid_within[*pid] += 1;
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":{}}}}}",
            pid,
            tid,
            json::string(lane)
        ));
    }

    let mut all = meta;
    all.extend(events);
    format!("{{\"traceEvents\":[{}]}}", all.join(","))
}

/// [`chrome_trace`] with a wall-clock profile appended as its own
/// `"wall"` process: the profile's samples (real nanoseconds since the
/// profiler was armed, one lane per worker thread) render beside the
/// virtual-time tracks. `None` degrades to plain [`chrome_trace`], so
/// callers can pass an optional profile unconditionally.
pub fn chrome_trace_with_wall(
    rec: &Recorded,
    wall: Option<&crate::profiler::WallProfile>,
) -> String {
    match wall {
        None => chrome_trace(rec),
        Some(profile) => {
            let mut merged = rec.clone();
            merged.spans.extend(profile.to_span_events());
            chrome_trace(&merged)
        }
    }
}

fn args_json(fields: &[(&'static str, crate::FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{}:{}", json::string(k), json::field_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;
    use crate::metrics::MetricsRegistry;
    use crate::sink::Observer;

    fn span(track: &'static str, lane: &str, name: &str, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            track,
            lane: lane.into(),
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
            fields: vec![("iteration", FieldValue::U64(0))],
        }
    }

    /// Minimal JSON parser for validity checks (no serde offline).
    mod jsonck {
        pub fn valid(s: &str) -> bool {
            let b = s.as_bytes();
            let mut i = 0;
            value(b, &mut i) && {
                skip_ws(b, &mut i);
                i == b.len()
            }
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> bool {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => lit(b, i, b"true"),
                Some(b'f') => lit(b, i, b"false"),
                Some(b'n') => lit(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                _ => false,
            }
        }

        fn lit(b: &[u8], i: &mut usize, l: &[u8]) -> bool {
            if b[*i..].starts_with(l) {
                *i += l.len();
                true
            } else {
                false
            }
        }

        fn number(b: &[u8], i: &mut usize) -> bool {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while *i < b.len() && (b[*i].is_ascii_digit() || b"+-.eE".contains(&b[*i])) {
                *i += 1;
            }
            *i > start
        }

        fn string(b: &[u8], i: &mut usize) -> bool {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return true;
                    }
                    b'\\' => *i += 2,
                    0x00..=0x1f => return false, // raw control char
                    _ => *i += 1,
                }
            }
            false
        }

        fn array(b: &[u8], i: &mut usize) -> bool {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return true;
            }
            loop {
                if !value(b, i) {
                    return false;
                }
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }

        fn object(b: &[u8], i: &mut usize) -> bool {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return true;
            }
            loop {
                skip_ws(b, i);
                if b.get(*i) != Some(&b'"') || !string(b, i) {
                    return false;
                }
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return false;
                }
                *i += 1;
                if !value(b, i) {
                    return false;
                }
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }

        #[test]
        fn parser_sanity() {
            assert!(valid(r#"{"a":[1,2.5,"x\"y",true,null],"b":{}}"#));
            assert!(!valid(r#"{"a":}"#));
            assert!(!valid(r#"[1,2"#));
            assert!(!valid("{\"a\":\"\n\"}")); // raw newline in string
        }
    }

    #[test]
    fn empty_capture_exports_valid_empty_trace() {
        let rec = Recorded::default();
        let trace = chrome_trace(&rec);
        assert_eq!(trace, "{\"traceEvents\":[]}");
        assert!(jsonck::valid(&trace));
        assert_eq!(jsonl(&rec), "");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_escaped_labels() {
        let mut rec = Recorded::default();
        rec.spans.push(SpanEvent {
            track: "sim",
            lane: "gpu.copy\"h2d\"".into(),
            name: "copy \\ back".into(),
            start_ns: 1500,
            dur_ns: 500,
            fields: vec![("label", FieldValue::Str("a\"b".into()))],
        });
        let trace = chrome_trace(&rec);
        assert!(jsonck::valid(&trace), "invalid JSON: {trace}");
        assert!(trace.contains(r#""name":"copy \\ back""#));
        assert!(trace.contains(r#"copy\"h2d\""#));
        // ns → µs with three decimals.
        assert!(trace.contains("\"ts\":1.500"));
        assert!(trace.contains("\"dur\":0.500"));
    }

    #[test]
    fn chrome_trace_separates_tracks_and_lanes() {
        let mut rec = Recorded::default();
        rec.spans.push(span("sim", "gpu.kernel", "apply", 0, 10));
        rec.spans.push(span("sim", "pcie.h2d", "h2d", 0, 10));
        rec.spans
            .push(span("engine", "iterations", "iteration 0", 0, 20));
        rec.spans.push(span("engine", "shard 0", "gatherMap", 0, 5));
        rec.instants.push(InstantEvent {
            track: "engine",
            lane: "shard 0".into(),
            name: "skip".into(),
            at_ns: 7,
            fields: vec![],
        });
        let trace = chrome_trace(&rec);
        assert!(jsonck::valid(&trace), "invalid JSON: {trace}");
        // Two processes, named.
        assert!(trace.contains(r#""process_name","ph":"M","pid":0,"args":{"name":"sim"}"#));
        assert!(trace.contains(r#""process_name","ph":"M","pid":1,"args":{"name":"engine"}"#));
        // Lanes get distinct tids within their track, shared across
        // span and instant events.
        assert!(trace.contains(
            r#""name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"pcie.h2d"}"#
        ));
        assert!(trace.contains(
            r#""name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"shard 0"}"#
        ));
        assert!(trace.contains(r#""name":"skip","ph":"i","s":"t","pid":1,"tid":1"#));
    }

    #[test]
    fn nested_engine_spans_share_a_lane() {
        // An iteration span and a phase span on the same lane nest by
        // containment (same tid, phase inside iteration window).
        let mut rec = Recorded::default();
        rec.spans
            .push(span("engine", "shard 1", "shard window", 0, 100));
        rec.spans
            .push(span("engine", "shard 1", "gatherMap", 10, 20));
        let trace = chrome_trace(&rec);
        assert!(jsonck::valid(&trace));
        let tid0 = trace.matches("\"tid\":0").count();
        // metadata + both X events all on tid 0 of pid 0.
        assert_eq!(tid0, 3);
    }

    #[test]
    fn wall_track_round_trips_through_the_chrome_exporter() {
        use crate::profiler::{WallKey, WallProfile, WallSample, WALL_ITERATION, WALL_NO_SHARD};
        let mut rec = Recorded::default();
        rec.spans.push(span("sim", "gpu.kernel", "apply", 0, 10));
        rec.spans
            .push(span("engine", "iterations", "iteration 0", 0, 20));
        let wall = WallProfile::from_samples(
            "bfs".into(),
            vec![
                WallSample {
                    key: WallKey {
                        iteration: 0,
                        shard: WALL_NO_SHARD,
                        phase: WALL_ITERATION,
                        shape: "",
                    },
                    start_ns: 1000,
                    dur_ns: 4500,
                    thread: 0,
                },
                WallSample {
                    key: WallKey {
                        iteration: 0,
                        shard: 2,
                        phase: "apply",
                        shape: "sparse",
                    },
                    start_ns: 1500,
                    dur_ns: 2000,
                    thread: 1,
                },
            ],
        );
        let trace = chrome_trace_with_wall(&rec, Some(&wall));
        assert!(jsonck::valid(&trace), "invalid JSON: {trace}");
        // The wall samples land in their own named process, after the
        // existing tracks, with one lane per worker thread.
        assert!(trace.contains(r#""process_name","ph":"M","pid":2,"args":{"name":"wall"}"#));
        assert!(trace.contains(
            r#""name":"thread_name","ph":"M","pid":2,"tid":1,"args":{"name":"thread 1"}"#
        ));
        // Timestamps round-trip ns → µs with three decimals preserved.
        assert!(trace.contains("\"ts\":1.500") && trace.contains("\"dur\":2.000"));
        assert!(trace.contains("\"shape\":\"sparse\""));
        assert!(trace.contains("\"algorithm\":\"bfs\""));
        // None is exactly the plain exporter; the sim/engine events are
        // byte-identical either way.
        let plain = chrome_trace_with_wall(&rec, None);
        assert_eq!(plain, chrome_trace(&rec));
        assert!(!plain.contains("\"wall\""));
        for ev in plain
            .trim_start_matches("{\"traceEvents\":[")
            .trim_end_matches("]}")
            .split("},{")
        {
            assert!(trace.contains(ev), "wall export altered event {ev}");
        }
    }

    #[test]
    fn jsonl_lines_are_individually_valid() {
        let (obs, sink) = Observer::recording();
        obs.span(|| span("engine", "shard 0", "apply", 5, 5));
        obs.decision(|| Decision::ShardSkip {
            iteration: 2,
            shard: 3,
            interval_bits: 128,
            active_bits: 0,
        });
        obs.decision(|| Decision::PhaseFusion {
            phases: "gatherMap+gatherReduce+apply",
            rationale: "intermediates stay on-device",
        });
        obs.decision(|| Decision::MemoryPressure {
            device: 0,
            requested: 4096,
            available: 1024,
            capacity: 2048,
            response: "reduce-concurrency",
            scope: "plan",
        });
        obs.decision(|| Decision::ShardSplit {
            shard: 1,
            vertices: 64,
            bytes: 9000,
        });
        obs.decision(|| Decision::ChunkedXfer {
            shard: 1,
            shard_bytes: 9000,
            chunk_bytes: 1024,
            chunks: 9,
        });
        obs.decision(|| Decision::ShardSpill {
            shard: 1,
            bytes: 9000,
            store: "file",
        });
        obs.decision(|| Decision::ShardLoad {
            iteration: 0,
            shard: 1,
            bytes: 9000,
            store: "file",
        });
        obs.decision(|| Decision::CheckpointWrite {
            iteration: 2,
            bytes: 65536,
        });
        obs.decision(|| Decision::CheckpointRestore {
            iteration: 2,
            bytes: 65536,
        });
        obs.decision(|| Decision::StorageRetry {
            iteration: 1,
            op: "spill.read",
            fault: "io.spill.read",
            shard: 1,
            attempt: 1,
            backoff_ns: 50_000,
        });
        obs.decision(|| Decision::StorageDegraded {
            iteration: 1,
            op: "spill.read",
            shard: 1,
            rationale: "re-stream from source graph",
        });
        obs.decision(|| Decision::CheckpointSkipped {
            iteration: 3,
            rationale: "io.checkpoint.write",
        });
        let mut m = MetricsRegistry::new();
        m.inc("h2d.bytes", 42);
        m.observe("h2d.size_bytes", 42);
        obs.snapshot("run", || m.snapshot());
        let rec = sink.recorded();
        let out = jsonl(&rec);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 14);
        for line in &lines {
            assert!(jsonck::valid(line), "invalid JSONL line: {line}");
        }
        assert!(lines[1].contains("\"kind\":\"shard_skip\""));
        assert!(lines[1].contains("\"interval_bits\":128"));
        assert!(lines[3].contains("\"kind\":\"memory_pressure\""));
        assert!(lines[3].contains("\"response\":\"reduce-concurrency\""));
        assert!(lines[4].contains("\"kind\":\"shard_split\""));
        assert!(lines[5].contains("\"kind\":\"chunked_xfer\""));
        assert!(lines[5].contains("\"chunks\":9"));
        assert!(lines[6].contains("\"kind\":\"shard_spill\""));
        assert!(lines[6].contains("\"store\":\"file\""));
        assert!(lines[7].contains("\"kind\":\"shard_load\""));
        assert!(lines[8].contains("\"kind\":\"checkpoint_write\""));
        assert!(lines[8].contains("\"bytes\":65536"));
        assert!(lines[9].contains("\"kind\":\"checkpoint_restore\""));
        assert!(lines[10].contains("\"kind\":\"storage_retry\""));
        assert!(lines[10].contains("\"fault\":\"io.spill.read\""));
        assert!(lines[11].contains("\"kind\":\"storage_degraded\""));
        assert!(lines[11].contains("\"rationale\":\"re-stream from source graph\""));
        assert!(lines[12].contains("\"kind\":\"checkpoint_skipped\""));
        assert!(lines[13].contains("\"scope\":\"run\""));
        assert!(lines[13].contains("\"h2d.bytes\":42"));
        assert!(lines[13].contains("\"buckets\":[[32,1]]"));
    }
}

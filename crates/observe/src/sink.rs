//! The [`Sink`] consumer trait, the cheap-to-pass [`Observer`] handle,
//! and the in-memory [`RecordingSink`] used by exporters and tests.

use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{Decision, InstantEvent, SpanEvent};
use crate::metrics::MetricsSnapshot;

/// Consumer of observability records. Methods take `&self` so one sink
/// can be shared by every component of a run; implementations handle
/// their own synchronization.
pub trait Sink: Send + Sync {
    fn span(&self, ev: &SpanEvent);
    fn instant(&self, ev: &InstantEvent);
    fn decision(&self, d: &Decision);
    /// Metrics snapshot at a named scope (`"iteration 3"`, `"run"`).
    fn snapshot(&self, _scope: &str, _snap: &MetricsSnapshot) {}
}

/// Cheap, cloneable handle the instrumented crates hold. Disabled by
/// default: every emit method takes a *closure*, so with no sink
/// attached the event is never constructed — the cost is one branch.
#[derive(Clone, Default)]
pub struct Observer {
    sink: Option<Arc<dyn Sink>>,
}

impl Observer {
    /// The no-op observer (same as `Observer::default()`).
    pub fn disabled() -> Self {
        Observer { sink: None }
    }

    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Observer { sink: Some(sink) }
    }

    /// Convenience: an observer wired to a fresh in-memory recorder.
    pub fn recording() -> (Self, Arc<RecordingSink>) {
        let sink = Arc::new(RecordingSink::default());
        (Observer::new(sink.clone()), sink)
    }

    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    #[inline]
    pub fn span(&self, build: impl FnOnce() -> SpanEvent) {
        if let Some(sink) = &self.sink {
            sink.span(&build());
        }
    }

    #[inline]
    pub fn instant(&self, build: impl FnOnce() -> InstantEvent) {
        if let Some(sink) = &self.sink {
            sink.instant(&build());
        }
    }

    #[inline]
    pub fn decision(&self, build: impl FnOnce() -> Decision) {
        if let Some(sink) = &self.sink {
            sink.decision(&build());
        }
    }

    #[inline]
    pub fn snapshot(&self, scope: &str, build: impl FnOnce() -> MetricsSnapshot) {
        if let Some(sink) = &self.sink {
            sink.snapshot(scope, &build());
        }
    }
}

/// Everything a [`RecordingSink`] captured, in emission order.
#[derive(Clone, Debug, Default)]
pub struct Recorded {
    pub spans: Vec<SpanEvent>,
    pub instants: Vec<InstantEvent>,
    pub decisions: Vec<Decision>,
    pub snapshots: Vec<(String, MetricsSnapshot)>,
}

impl Recorded {
    /// Shard-skip decisions only (the per-iteration frontier calls).
    pub fn shard_skips(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_shard_skip()).count()
    }

    /// Fault-recovery decisions only (retry/rollback/evict/fallback) —
    /// chaos tests check one of these per injected fault.
    pub fn recovery_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_recovery()).count()
    }

    /// Memory-governor decisions only (pressure responses, shard splits,
    /// chunked transfers) — one per degradation, zero when unconstrained.
    pub fn memory_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_memory()).count()
    }

    /// Durability decisions only (shard spill/load, checkpoint
    /// write/restore) — zero unless a checkpoint policy or shard store
    /// is armed.
    pub fn durability_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_durability()).count()
    }

    /// Compression decisions only (per-shard encode accounting, per
    /// stream-in decode charges) — zero unless shard compression is armed.
    pub fn compression_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_compression()).count()
    }

    /// Storage-fault decisions only (retries, degradations, skipped
    /// checkpoints) — chaos tests check one of these per injected
    /// storage fault; zero when no I/O faults are armed.
    pub fn storage_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_storage()).count()
    }

    /// Serving-layer decisions only (admission, rejection, batching,
    /// per-query completion) — the serve equivalence suite checks one
    /// admit + one done per query and one per executed batch; zero for
    /// anything below the serving layer.
    pub fn serve_decisions(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_serve()).count()
    }
}

/// In-memory sink: records everything for later export or assertions.
#[derive(Default)]
pub struct RecordingSink {
    inner: Mutex<Recorded>,
}

impl RecordingSink {
    /// Clone out everything recorded so far.
    pub fn recorded(&self) -> Recorded {
        self.lock().clone()
    }

    /// Move everything recorded so far out, leaving the sink empty.
    pub fn take(&self) -> Recorded {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Recorded> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Sink for RecordingSink {
    fn span(&self, ev: &SpanEvent) {
        self.lock().spans.push(ev.clone());
    }

    fn instant(&self, ev: &InstantEvent) {
        self.lock().instants.push(ev.clone());
    }

    fn decision(&self, d: &Decision) {
        self.lock().decisions.push(d.clone());
    }

    fn snapshot(&self, scope: &str, snap: &MetricsSnapshot) {
        self.lock()
            .snapshots
            .push((scope.to_string(), snap.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    #[test]
    fn disabled_observer_never_builds_events() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        // The closures must not run: a disabled observer costs one
        // branch and zero event construction.
        obs.span(|| unreachable!("span built on disabled observer"));
        obs.instant(|| unreachable!("instant built on disabled observer"));
        obs.decision(|| unreachable!("decision built on disabled observer"));
        obs.snapshot("run", || {
            unreachable!("snapshot built on disabled observer")
        });
    }

    #[test]
    fn recording_sink_captures_in_order() {
        let (obs, rec) = Observer::recording();
        assert!(obs.is_enabled());
        obs.span(|| SpanEvent {
            track: "sim",
            lane: "gpu.kernel".into(),
            name: "apply".into(),
            start_ns: 10,
            dur_ns: 5,
            fields: vec![("shard", FieldValue::U64(0))],
        });
        obs.decision(|| Decision::ShardSkip {
            iteration: 0,
            shard: 1,
            interval_bits: 32,
            active_bits: 0,
        });
        obs.instant(|| InstantEvent {
            track: "sim",
            lane: "mem".into(),
            name: "oom".into(),
            at_ns: 20,
            fields: vec![],
        });
        let got = rec.recorded();
        assert_eq!(got.spans.len(), 1);
        assert_eq!(got.spans[0].name, "apply");
        assert_eq!(got.shard_skips(), 1);
        assert_eq!(got.instants[0].at_ns, 20);
        // take() drains.
        assert_eq!(rec.take().spans.len(), 1);
        assert_eq!(rec.recorded().spans.len(), 0);
    }

    #[test]
    fn observer_clones_share_the_sink() {
        let (obs, rec) = Observer::recording();
        let obs2 = obs.clone();
        obs.instant(|| InstantEvent {
            track: "a",
            lane: "l".into(),
            name: "x".into(),
            at_ns: 0,
            fields: vec![],
        });
        obs2.instant(|| InstantEvent {
            track: "a",
            lane: "l".into(),
            name: "y".into(),
            at_ns: 1,
            fields: vec![],
        });
        assert_eq!(rec.recorded().instants.len(), 2);
    }
}

//! Wall-clock profiling: the *real*-time counterpart of the virtual
//! timeline everything else in this crate records.
//!
//! [`WallProfiler`] is a scoped profiler with the same zero-cost-when-off
//! contract as [`Observer`](crate::Observer): disarmed (the default), a
//! [`WallProfiler::scope`] call is one branch on an `Option` — the key
//! closure never runs, no clock is read, nothing allocates (asserted by
//! the `tests/overhead.rs` guard). Armed, each scope records one
//! [`WallSample`] keyed by (iteration, shard, GAS phase, kernel shape)
//! plus the worker thread it ran on; [`WallProfiler::profile`] aggregates
//! the samples into a [`WallProfile`] — self/total wall time per key,
//! per-phase totals, per-thread busy time, and a fan-out imbalance ratio
//! for the rayon across-shard paths.
//!
//! Timestamps are **real nanoseconds** since the profiler was armed, not
//! virtual simulator time; [`WallProfile::to_span_events`] exports them
//! on the dedicated `"wall"` track so the Chrome/Perfetto exporter keeps
//! the two clocks in visibly separate process groups.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::event::{FieldValue, SpanEvent};

/// `shard` value for scopes not tied to one shard (whole-run setup,
/// whole-iteration windows).
pub const WALL_NO_SHARD: u32 = u32::MAX;

/// The pseudo-phase wrapping one whole BSP iteration's host work; every
/// other phase label is a leaf under it.
pub const WALL_ITERATION: &str = "iteration";

/// Canonical GAS leaf-phase order for per-phase rollups.
pub const WALL_PHASES: [&str; 4] = ["gather", "apply", "scatter", "activate"];

/// Attribution key of one scope: where in the run the time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WallKey {
    pub iteration: u32,
    /// Shard index, or [`WALL_NO_SHARD`] for non-shard scopes.
    pub shard: u32,
    /// GAS phase (`"gather"`, `"apply"`, …), [`WALL_ITERATION`], or a
    /// caller-defined label like `"setup"`.
    pub phase: &'static str,
    /// Kernel shape that executed (`"serial"`/`"dense"`/`"sparse"`), or
    /// `""` when shapes don't apply.
    pub shape: &'static str,
}

/// One recorded scope: a real-time interval attributed to a [`WallKey`]
/// and the worker thread that ran it.
#[derive(Clone, Copy, Debug)]
pub struct WallSample {
    pub key: WallKey,
    /// Real nanoseconds since the profiler was armed.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Dense worker ordinal (0 = first thread that recorded; scoped
    /// rayon workers reuse low ordinals as they come and go).
    pub thread: u32,
}

// Worker-thread ordinals: a global free-list so the ephemeral threads
// `rayon::scope` spawns (one batch per fan-out) reuse low slot numbers
// instead of growing an unbounded id space. A thread leases an ordinal on
// its first sample and returns it when the thread exits.
static ORDINAL_FREE: Mutex<Vec<u32>> = Mutex::new(Vec::new());
static ORDINAL_NEXT: AtomicU32 = AtomicU32::new(0);

struct OrdinalLease(u32);

impl Drop for OrdinalLease {
    fn drop(&mut self) {
        ORDINAL_FREE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(self.0);
    }
}

thread_local! {
    static ORDINAL: OrdinalLease = OrdinalLease(
        ORDINAL_FREE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| ORDINAL_NEXT.fetch_add(1, Ordering::Relaxed)),
    );
}

fn thread_ordinal() -> u32 {
    ORDINAL.with(|l| l.0)
}

struct Inner {
    epoch: Instant,
    algorithm: Mutex<&'static str>,
    samples: Mutex<Vec<WallSample>>,
}

/// Cheap, cloneable scoped wall-clock profiler handle. Disarmed by
/// default; clones share the armed sample store like [`crate::Observer`] clones
/// share a sink.
#[derive(Clone, Default)]
pub struct WallProfiler {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for WallProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "WallProfiler(disarmed)"),
            Some(_) => write!(f, "WallProfiler(armed, {} samples)", self.sample_count()),
        }
    }
}

impl WallProfiler {
    /// The no-op profiler (same as `WallProfiler::default()`).
    pub fn disarmed() -> Self {
        WallProfiler { inner: None }
    }

    /// An armed profiler; real time is measured from this call.
    pub fn armed() -> Self {
        WallProfiler {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                algorithm: Mutex::new(""),
                samples: Mutex::new(Vec::new()),
            })),
        }
    }

    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Record which algorithm the samples belong to (the engine calls
    /// this once at run start). No-op when disarmed.
    pub fn set_algorithm(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            *inner
                .algorithm
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = name;
        }
    }

    /// Open a scope; the interval from this call to the guard's drop is
    /// recorded under `key`. Disarmed, the closure never runs and no
    /// clock is read — the cost is one branch.
    #[inline]
    pub fn scope(&self, key: impl FnOnce() -> WallKey) -> WallScope<'_> {
        match &self.inner {
            None => WallScope { live: None },
            Some(inner) => WallScope {
                live: Some((inner.as_ref(), key(), Instant::now())),
            },
        }
    }

    /// Samples recorded so far (0 when disarmed).
    pub fn sample_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            i.samples
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        })
    }

    /// Drop all recorded samples (e.g. between benchmark trials).
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            inner
                .samples
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
    }

    /// Aggregate everything recorded so far. Empty when disarmed.
    pub fn profile(&self) -> WallProfile {
        match &self.inner {
            None => WallProfile::default(),
            Some(inner) => {
                let algorithm = inner
                    .algorithm
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .to_string();
                let samples = inner
                    .samples
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                WallProfile::from_samples(algorithm, samples)
            }
        }
    }
}

/// RAII guard returned by [`WallProfiler::scope`]; records one sample on
/// drop when armed.
pub struct WallScope<'p> {
    live: Option<(&'p Inner, WallKey, Instant)>,
}

impl Drop for WallScope<'_> {
    fn drop(&mut self) {
        if let Some((inner, key, started)) = self.live.take() {
            let dur_ns = started.elapsed().as_nanos() as u64;
            let start_ns = started.duration_since(inner.epoch).as_nanos() as u64;
            let sample = WallSample {
                key,
                start_ns,
                dur_ns,
                thread: thread_ordinal(),
            };
            inner
                .samples
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(sample);
        }
    }
}

/// One aggregated profile-tree row: all samples sharing a [`WallKey`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WallRow {
    pub key: WallKey,
    /// Scopes merged into this row.
    pub count: u64,
    /// Summed wall time of this row's own scopes (self time; totals are
    /// rollups over rows — see [`WallProfile::phase_totals`]).
    pub self_ns: u64,
}

/// Aggregated wall-clock profile of one run (or one profiler lifetime).
#[derive(Clone, Debug, Default)]
pub struct WallProfile {
    pub algorithm: String,
    /// Profile tree in key order: iteration → shard → phase → shape.
    pub rows: Vec<WallRow>,
    /// Raw samples in recording order, worker ordinals renumbered dense
    /// (0..thread_count) in order of first appearance.
    pub samples: Vec<WallSample>,
    /// Busy nanoseconds per dense worker ordinal, from leaf samples.
    pub thread_busy_ns: Vec<u64>,
}

impl WallProfile {
    /// Aggregate raw samples (exposed so tests and external harnesses can
    /// build profiles without an armed profiler).
    pub fn from_samples(algorithm: String, mut samples: Vec<WallSample>) -> Self {
        // Renumber worker ordinals dense in order of first appearance so
        // profiles are independent of what else ran in this process.
        let mut dense: BTreeMap<u32, u32> = BTreeMap::new();
        for s in samples.iter_mut() {
            let next = dense.len() as u32;
            s.thread = *dense.entry(s.thread).or_insert(next);
        }
        let mut thread_busy_ns = vec![0u64; dense.len()];
        let mut rows: BTreeMap<WallKey, WallRow> = BTreeMap::new();
        for s in &samples {
            if s.key.phase != WALL_ITERATION {
                thread_busy_ns[s.thread as usize] += s.dur_ns;
            }
            let row = rows.entry(s.key).or_insert(WallRow {
                key: s.key,
                count: 0,
                self_ns: 0,
            });
            row.count += 1;
            row.self_ns += s.dur_ns;
        }
        WallProfile {
            algorithm,
            rows: rows.into_values().collect(),
            samples,
            thread_busy_ns,
        }
    }

    /// Total host wall time: the iteration windows when present (they
    /// include merge/bookkeeping time between phases), else all leaves.
    pub fn total_ns(&self) -> u64 {
        let iter_total: u64 = self
            .rows
            .iter()
            .filter(|r| r.key.phase == WALL_ITERATION)
            .map(|r| r.self_ns)
            .sum();
        if iter_total > 0 {
            iter_total
        } else {
            self.kernel_ns()
        }
    }

    /// Summed wall time of the GAS leaf phases (host kernel time proper).
    pub fn kernel_ns(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.key.phase != WALL_ITERATION)
            .map(|r| r.self_ns)
            .sum()
    }

    /// Per-phase wall totals in [`WALL_PHASES`] order, then any other
    /// leaf phases (e.g. `"setup"`) in key order.
    pub fn phase_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = WALL_PHASES.iter().map(|&p| (p, 0u64)).collect();
        for r in &self.rows {
            if r.key.phase == WALL_ITERATION {
                continue;
            }
            match totals.iter_mut().find(|(p, _)| *p == r.key.phase) {
                Some(slot) => slot.1 += r.self_ns,
                None => totals.push((r.key.phase, r.self_ns)),
            }
        }
        totals
    }

    /// Distinct worker threads that recorded leaf samples.
    pub fn thread_count(&self) -> usize {
        self.thread_busy_ns.iter().filter(|&&b| b > 0).count()
    }

    /// Load-imbalance ratio of the across-shard fan-outs: within each
    /// (iteration, phase) group that touched ≥ 2 shards, the slowest
    /// shard's time over the mean shard time (1.0 = perfectly balanced);
    /// groups are combined weighted by their total time. 1.0 when no
    /// fan-out group exists (single-shard runs).
    pub fn imbalance(&self) -> f64 {
        let mut groups: BTreeMap<(u32, &'static str), BTreeMap<u32, u64>> = BTreeMap::new();
        for r in &self.rows {
            if r.key.phase == WALL_ITERATION || r.key.shard == WALL_NO_SHARD {
                continue;
            }
            *groups
                .entry((r.key.iteration, r.key.phase))
                .or_default()
                .entry(r.key.shard)
                .or_insert(0) += r.self_ns;
        }
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for shard_ns in groups.values() {
            if shard_ns.len() < 2 {
                continue;
            }
            let total: u64 = shard_ns.values().sum();
            if total == 0 {
                continue;
            }
            let max = *shard_ns.values().max().expect("non-empty") as f64;
            let mean = total as f64 / shard_ns.len() as f64;
            weighted += total as f64 * (max / mean);
            weight += total as f64;
        }
        if weight > 0.0 {
            weighted / weight
        } else {
            1.0
        }
    }

    /// The compact summary embedded in `RunStats` / the run report.
    /// An empty profile summarizes to `WallSummary::default()`.
    pub fn summary(&self) -> WallSummary {
        if self.rows.is_empty() {
            return WallSummary::default();
        }
        WallSummary {
            total_ns: self.total_ns(),
            kernel_ns: self.kernel_ns(),
            phases: self.phase_totals(),
            threads: self.thread_count().max(usize::from(!self.rows.is_empty())),
            imbalance: self.imbalance(),
        }
    }

    /// Export the raw samples as spans on the `"wall"` track (lane per
    /// worker thread), ready for [`crate::export::chrome_trace`] — wall
    /// time loads as its own process group beside the virtual tracks.
    pub fn to_span_events(&self) -> Vec<SpanEvent> {
        self.samples
            .iter()
            .map(|s| SpanEvent {
                track: "wall",
                lane: format!("thread {}", s.thread),
                name: if s.key.phase == WALL_ITERATION {
                    format!("iteration {}", s.key.iteration)
                } else {
                    s.key.phase.to_string()
                },
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                fields: {
                    let mut f: Vec<(&'static str, FieldValue)> = vec![
                        ("iteration", s.key.iteration.into()),
                        ("algorithm", FieldValue::Str(self.algorithm.clone())),
                    ];
                    if s.key.shard != WALL_NO_SHARD {
                        f.push(("shard", s.key.shard.into()));
                    }
                    if !s.key.shape.is_empty() {
                        f.push(("shape", s.key.shape.into()));
                    }
                    f
                },
            })
            .collect()
    }
}

/// Compact wall-clock rollup of one run: what `RunStats` carries and the
/// run report's `wall` section serializes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WallSummary {
    /// Total real host time (iteration windows, incl. merges).
    pub total_ns: u64,
    /// Real time inside the GAS phase kernels proper.
    pub kernel_ns: u64,
    /// Per-phase wall totals ([`WALL_PHASES`] first, extras after).
    pub phases: Vec<(&'static str, u64)>,
    /// Worker threads that did leaf work.
    pub threads: usize,
    /// Across-shard fan-out imbalance ratio (1.0 = balanced).
    pub imbalance: f64,
}

impl fmt::Display for WallSummary {
    /// The one-line human rollup (`RunStats`' `host wall:` line and the
    /// multi-GPU CLI both print this): totals, worker count, imbalance,
    /// then every nonzero phase.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms total ({:.3} ms in kernels) | {} threads, imbalance {:.2}",
            self.total_ns as f64 / 1e6,
            self.kernel_ns as f64 / 1e6,
            self.threads,
            self.imbalance
        )?;
        for (phase, ns) in &self.phases {
            if *ns > 0 {
                write!(f, " | {phase} {:.3} ms", *ns as f64 / 1e6)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(iteration: u32, shard: u32, phase: &'static str, shape: &'static str) -> WallKey {
        WallKey {
            iteration,
            shard,
            phase,
            shape,
        }
    }

    fn sample(k: WallKey, start_ns: u64, dur_ns: u64, thread: u32) -> WallSample {
        WallSample {
            key: k,
            start_ns,
            dur_ns,
            thread,
        }
    }

    #[test]
    fn disarmed_scope_never_builds_keys() {
        let p = WallProfiler::disarmed();
        assert!(!p.is_armed());
        // The key closure must not run: disarmed cost is one branch.
        let _s = p.scope(|| unreachable!("key built on disarmed profiler"));
        drop(_s);
        assert_eq!(p.sample_count(), 0);
        assert_eq!(p.profile().rows.len(), 0);
        assert_eq!(p.profile().summary(), WallSummary::default());
    }

    #[test]
    fn armed_scopes_record_and_aggregate() {
        let p = WallProfiler::armed();
        p.set_algorithm("bfs");
        for _ in 0..3 {
            let s = p.scope(|| key(0, 1, "apply", "dense"));
            // Spin until the clock visibly advances so dur_ns > 0.
            let t = Instant::now();
            while t.elapsed().as_nanos() == 0 {
                std::hint::spin_loop();
            }
            drop(s);
        }
        {
            let _s = p.scope(|| key(0, WALL_NO_SHARD, WALL_ITERATION, ""));
        }
        assert_eq!(p.sample_count(), 4);
        let prof = p.profile();
        assert_eq!(prof.algorithm, "bfs");
        let apply = prof
            .rows
            .iter()
            .find(|r| r.key.phase == "apply")
            .expect("apply row");
        assert_eq!(apply.count, 3);
        assert!(apply.self_ns > 0);
        assert_eq!(apply.key.shape, "dense");
        assert!(prof.kernel_ns() >= apply.self_ns);
        // Clones share the store; reset drains it.
        let clone = p.clone();
        clone.reset();
        assert_eq!(p.sample_count(), 0);
    }

    #[test]
    fn worker_ordinals_renumber_dense_per_profile() {
        // Raw ordinals 7 and 42 (as if leased in a busy process) come out
        // dense as 0 and 1, first-appearance order.
        let prof = WallProfile::from_samples(
            "x".into(),
            vec![
                sample(key(0, 0, "gather", "sparse"), 0, 10, 42),
                sample(key(0, 1, "gather", "sparse"), 0, 30, 7),
                sample(key(1, 0, "apply", "dense"), 50, 5, 42),
            ],
        );
        assert_eq!(
            prof.samples.iter().map(|s| s.thread).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
        assert_eq!(prof.thread_busy_ns, vec![15, 30]);
        assert_eq!(prof.thread_count(), 2);
    }

    #[test]
    fn threads_actually_running_get_distinct_ordinals() {
        let p = WallProfiler::armed();
        // The barrier keeps both workers (and so both ordinal leases)
        // alive at once — sequential short-lived threads legitimately
        // reuse one slot via the free-list.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for shard in 0..2u32 {
                let p = p.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let w = p.scope(|| key(0, shard, "gather", "dense"));
                    drop(w);
                    barrier.wait();
                });
            }
        });
        let prof = p.profile();
        assert_eq!(prof.samples.len(), 2);
        assert_eq!(prof.thread_count(), 2, "concurrent workers share no slot");
    }

    #[test]
    fn totals_and_phase_rollup() {
        let prof = WallProfile::from_samples(
            "pr".into(),
            vec![
                sample(key(0, 0, "gather", "dense"), 0, 40, 0),
                sample(key(0, 0, "apply", "dense"), 40, 30, 0),
                sample(key(0, 0, "scatter", "serial"), 70, 10, 0),
                sample(key(0, 0, "activate", "sparse"), 80, 15, 0),
                sample(key(0, WALL_NO_SHARD, WALL_ITERATION, ""), 0, 100, 0),
            ],
        );
        // Total prefers the iteration window (includes merge gaps).
        assert_eq!(prof.total_ns(), 100);
        assert_eq!(prof.kernel_ns(), 95);
        let phases = prof.phase_totals();
        assert_eq!(
            phases,
            vec![
                ("gather", 40),
                ("apply", 30),
                ("scatter", 10),
                ("activate", 15)
            ]
        );
        let sum = prof.summary();
        assert_eq!(sum.total_ns, 100);
        assert_eq!(sum.kernel_ns, 95);
        assert_eq!(sum.threads, 1);
    }

    #[test]
    fn imbalance_reflects_shard_skew() {
        // Perfectly balanced fan-out: ratio 1.0.
        let balanced = WallProfile::from_samples(
            "x".into(),
            vec![
                sample(key(0, 0, "gather", "dense"), 0, 50, 0),
                sample(key(0, 1, "gather", "dense"), 0, 50, 1),
            ],
        );
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);
        // One straggler: max 90 over mean 50 → 1.8.
        let skewed = WallProfile::from_samples(
            "x".into(),
            vec![
                sample(key(0, 0, "gather", "dense"), 0, 90, 0),
                sample(key(0, 1, "gather", "dense"), 0, 10, 1),
            ],
        );
        assert!((skewed.imbalance() - 1.8).abs() < 1e-12);
        // Single-shard runs have no fan-out to be imbalanced.
        let single = WallProfile::from_samples(
            "x".into(),
            vec![sample(key(0, 0, "gather", "dense"), 0, 90, 0)],
        );
        assert!((single.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn span_export_targets_the_wall_track() {
        let prof = WallProfile::from_samples(
            "cc".into(),
            vec![
                sample(key(2, 3, "apply", "sparse"), 100, 25, 0),
                sample(key(2, WALL_NO_SHARD, WALL_ITERATION, ""), 90, 60, 0),
            ],
        );
        let spans = prof.to_span_events();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == "wall"));
        let leaf = &spans[0];
        assert_eq!(leaf.name, "apply");
        assert_eq!(leaf.lane, "thread 0");
        assert_eq!(leaf.start_ns, 100);
        assert_eq!(leaf.dur_ns, 25);
        assert!(leaf
            .fields
            .iter()
            .any(|(k, v)| *k == "shape" && *v == FieldValue::Str("sparse".into())));
        let iter = &spans[1];
        assert_eq!(iter.name, "iteration 2");
        assert!(!iter.fields.iter().any(|(k, _)| *k == "shard"));
    }
}

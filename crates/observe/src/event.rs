//! Typed event and decision records.
//!
//! Timestamps are virtual nanoseconds (`u64`), matching `gr-sim`'s
//! `SimTime::as_nanos()`; this crate deliberately has no dependency on
//! the simulator so it can sit below every other crate.

/// A typed key/value attachment on an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// An interval on a timeline: a kernel execution, a copy, a whole
/// BSP iteration. Grouped by `track` (subsystem) and `lane` (timeline
/// within the subsystem); lanes are chosen so spans on one lane never
/// overlap unless they nest.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Subsystem: `"sim"` (hardware resources), `"engine"` (GAS
    /// phases per shard), `"multi"` (per-GPU BSP lanes).
    pub track: &'static str,
    /// Timeline within the track: a resource name, `"shard 3"`, ...
    pub lane: String,
    /// What happened, e.g. `"gatherMap"` or `"h2d"`.
    pub name: String,
    /// Start in virtual nanoseconds.
    pub start_ns: u64,
    /// Duration in virtual nanoseconds.
    pub dur_ns: u64,
    /// Typed attachments (iteration, shard, bytes, ...).
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A point on a timeline: an OOM rejection, a BSP barrier release.
#[derive(Clone, Debug)]
pub struct InstantEvent {
    pub track: &'static str,
    pub lane: String,
    pub name: String,
    /// Timestamp in virtual nanoseconds.
    pub at_ns: u64,
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A dynamic choice made by the engine, recorded with enough context
/// to audit it after the run.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Frontier management skipped a shard: none of the vertices in
    /// its interval were active this iteration.
    ShardSkip {
        iteration: u32,
        shard: u32,
        /// Frontier bits inspected (= vertices in the shard interval).
        interval_bits: u64,
        /// Bits found set (always 0 for a skip; recorded for audit).
        active_bits: u64,
    },
    /// The scheduler fused GAS phases into one launch sequence
    /// instead of materializing intermediates between them.
    PhaseFusion {
        /// Human-readable fusion grouping, e.g.
        /// `"gatherMap+gatherReduce+apply"`.
        phases: &'static str,
        rationale: &'static str,
    },
    /// A phase was eliminated entirely for this program.
    PhaseElimination {
        phase: &'static str,
        rationale: &'static str,
    },
    /// A device op faulted transiently and the engine retried it after
    /// a backoff charged to the device timeline.
    FaultRetry {
        iteration: u32,
        /// Device index (0 for the single-GPU engine).
        device: u32,
        /// Operation that faulted, e.g. `"h2d"` or `"gatherMap"`.
        op: &'static str,
        /// Fault kind, e.g. `"transient.h2d"`.
        fault: &'static str,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Backoff charged before the retry, in virtual nanoseconds.
        backoff_ns: u64,
    },
    /// Retries were exhausted mid-iteration: host shard state was rolled
    /// back to the last checkpoint and the iteration replayed.
    Rollback {
        iteration: u32,
        device: u32,
        /// Operation whose retries were exhausted.
        op: &'static str,
        /// Fault kind that forced the rollback.
        fault: &'static str,
    },
    /// Permanent device loss in a multi-GPU run: the dead device was
    /// evicted and its shards redistributed across the survivors.
    DeviceEvict {
        iteration: u32,
        device: u32,
        /// Shards reassigned away from the dead device.
        shards_moved: u32,
    },
    /// Permanent device loss in a single-GPU run: execution degraded to
    /// the host CPU from the last checkpoint.
    HostFallback {
        iteration: u32,
        device: u32,
        rationale: &'static str,
    },
    /// The memory governor degraded the plan in response to device
    /// memory pressure (shortfall between what the plan needs and what
    /// the device can reserve). Distinct from fault recovery: no fault
    /// was injected, so these never count toward the
    /// decision-per-fault invariant.
    MemoryPressure {
        device: u32,
        /// Bytes the pressured reservation needed.
        requested: u64,
        /// Free bytes at decision time.
        available: u64,
        /// Device capacity after any runtime cap.
        capacity: u64,
        /// Escalation rung taken: `"host-run"`, `"stream"`,
        /// `"reduce-concurrency"`, `"host-shard"`, `"redistribute"`.
        response: &'static str,
        /// What the response applies to: `"run"`, `"plan"`, `"shard"`,
        /// or `"device"`.
        scope: &'static str,
    },
    /// Adaptive shard splitting: one shard's buffer set exceeded the
    /// streaming budget, so its vertex interval was split in two at the
    /// edge-mass midpoint. Exactly one decision per split.
    ShardSplit {
        /// Plan-order shard index at the time of the split.
        shard: u32,
        /// Vertices in the interval before the split.
        vertices: u64,
        /// Buffer footprint in bytes before the split.
        bytes: u64,
    },
    /// Chunked edge transfer: a shard too large even after splitting
    /// streams through a bounded staging slot in pieces. Exactly one
    /// decision per chunked shard, at plan time.
    ChunkedXfer {
        shard: u32,
        /// Full buffer footprint of the shard.
        shard_bytes: u64,
        /// Staging slot size each piece is bounded by.
        chunk_bytes: u64,
        /// Upper bound on pieces per full-shard transfer.
        chunks: u32,
    },
    /// Out-of-host-core spill: a shard's topology was evicted to the
    /// shard store because the working set exceeds host memory (or the
    /// governor forced eviction). Exactly one decision per spilled shard.
    ShardSpill {
        shard: u32,
        /// Bytes evicted to the store.
        bytes: u64,
        /// Store kind, e.g. `"file"` or `"mem"`.
        store: &'static str,
    },
    /// First load of a spilled shard back from the store into the
    /// streaming path. Exactly one decision per spilled shard per run.
    ShardLoad {
        iteration: u32,
        shard: u32,
        /// Bytes read back and verified.
        bytes: u64,
        store: &'static str,
    },
    /// A shard's topology was gap-coded under the run's codec: raw
    /// `(neighbor, edge id)` sub-arrays replaced by a bit-packed stream
    /// on the PCIe and spill paths. Exactly one decision per shard, at
    /// plan time.
    CompressShard {
        shard: u32,
        /// What the full raw buffer set would have shipped.
        raw_bytes: u64,
        /// What the compressed buffer set ships instead.
        compressed_bytes: u64,
        /// Codec name, e.g. `"varint"` or `"zeta3"`.
        codec: &'static str,
    },
    /// A just-streamed gap stream was decoded on-device: the compute
    /// half of the compression tradeoff, one decision per topology
    /// stream-in (so resident runs log one per shard per direction).
    DecompressShard {
        iteration: u32,
        shard: u32,
        /// Gap-stream bytes the decode kernel read.
        compressed_bytes: u64,
        /// Decoded entry bytes it produced for the consuming kernels.
        raw_bytes: u64,
    },
    /// A durable checkpoint snapshot was written (atomically) to disk.
    /// Exactly one decision per snapshot file.
    CheckpointWrite {
        /// Completed iterations the snapshot covers.
        iteration: u32,
        /// Snapshot file size in bytes (checksum included).
        bytes: u64,
    },
    /// A run resumed from a durable snapshot instead of starting cold.
    /// Exactly one decision per resumed run.
    CheckpointRestore {
        /// Completed iterations restored; execution replays from here.
        iteration: u32,
        /// Snapshot file size read back.
        bytes: u64,
    },
    /// A storage op (spill read/write, checkpoint write) faulted and was
    /// retried after a host-side backoff. Exactly one decision per
    /// injected storage fault that a retry absorbed.
    StorageRetry {
        iteration: u32,
        /// Operation that faulted: `"spill.read"`, `"spill.write"`,
        /// `"checkpoint.write"`.
        op: &'static str,
        /// Fault kind, e.g. `"io.spill.read"` or `"torn.checkpoint.write"`.
        fault: &'static str,
        /// Shard index for spill ops; 0 for checkpoint writes.
        shard: u32,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Host-side backoff before the retry, in nanoseconds (never
        /// charged to the virtual device timeline).
        backoff_ns: u64,
    },
    /// Storage retries were exhausted and the engine degraded gracefully
    /// instead of failing the run — e.g. a spill read re-streamed the
    /// shard from the source graph, or a spill write kept the shard
    /// resident. Exactly one decision per exhausting fault.
    StorageDegraded {
        iteration: u32,
        /// Operation whose retries were exhausted.
        op: &'static str,
        /// Shard index for spill ops; 0 otherwise.
        shard: u32,
        /// Degradation taken, e.g. `"re-stream from source graph"`.
        rationale: &'static str,
    },
    /// A durable checkpoint write ultimately failed and was skipped; the
    /// run continues, covered by the previous snapshot. Exactly one
    /// decision per exhausting fault.
    CheckpointSkipped {
        /// Iteration boundary whose snapshot was skipped.
        iteration: u32,
        /// Why, e.g. `"io.checkpoint.write"` after retry exhaustion.
        rationale: &'static str,
    },
    /// The serving layer admitted a query into the pending queue.
    /// Exactly one decision per accepted submission — together with
    /// [`Decision::QueryDone`] this is the query's decision-log lane.
    QueryAdmit {
        /// Serving-layer query id (unique per server).
        query: u64,
        /// Query kind, e.g. `"bfs"`, `"sssp"`, `"pagerank"`, `"cc"`.
        kind: &'static str,
        /// Pending-queue depth *after* admission.
        queue_depth: u64,
    },
    /// The admission controller rejected a submission (queue full).
    /// Exactly one decision per rejected submission.
    QueryReject {
        kind: &'static str,
        /// Pending-queue depth at rejection time (= the configured cap).
        queue_depth: u64,
        rationale: &'static str,
    },
    /// The batcher folded pending compatible queries into one execution
    /// (K point-BFS queries → one MS-BFS sweep). Exactly one decision per
    /// executed batch, including singleton batches.
    BatchFormed {
        /// Serving-layer batch id (unique per server).
        batch: u64,
        /// Queries multiplexed into this execution.
        size: u32,
        kind: &'static str,
    },
    /// A query's result was demultiplexed out of its batch and reported.
    /// Exactly one decision per admitted query.
    QueryDone {
        query: u64,
        /// Batch that carried it.
        batch: u64,
        /// Lane within the batch (bit index for MS-BFS; 0 for singletons).
        lane: u32,
        /// Whether the query met its deadline (true when none was set).
        deadline_met: bool,
    },
}

impl Decision {
    /// True for dynamic-frontier shard skips (the per-iteration,
    /// per-shard decisions; fusion/elimination are per-run).
    pub fn is_shard_skip(&self) -> bool {
        matches!(self, Decision::ShardSkip { .. })
    }

    /// True for fault-recovery decisions (retry, rollback, eviction,
    /// host fallback) — one is recorded per injected fault.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            Decision::FaultRetry { .. }
                | Decision::Rollback { .. }
                | Decision::DeviceEvict { .. }
                | Decision::HostFallback { .. }
        )
    }

    /// True for memory-governor decisions (pressure responses, shard
    /// splits, chunked transfers) — one is recorded per degradation.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Decision::MemoryPressure { .. }
                | Decision::ShardSplit { .. }
                | Decision::ChunkedXfer { .. }
        )
    }

    /// True for durability decisions (shard spill/load, checkpoint
    /// write/restore). A separate class from [`Decision::is_memory`] and
    /// [`Decision::is_recovery`] so the one-decision-per-fault and
    /// one-decision-per-degradation audit invariants stay exact when
    /// durability is armed.
    pub fn is_durability(&self) -> bool {
        matches!(
            self,
            Decision::ShardSpill { .. }
                | Decision::ShardLoad { .. }
                | Decision::CheckpointWrite { .. }
                | Decision::CheckpointRestore { .. }
        )
    }

    /// True for storage-fault decisions (retries, graceful degradation,
    /// skipped checkpoints on the spill/checkpoint I/O path). A class of
    /// its own so the device-fault invariant (one recovery decision per
    /// injected device fault) and the durability accounting stay exact
    /// when storage faults are armed: one storage decision is recorded
    /// per injected storage fault.
    pub fn is_storage(&self) -> bool {
        matches!(
            self,
            Decision::StorageRetry { .. }
                | Decision::StorageDegraded { .. }
                | Decision::CheckpointSkipped { .. }
        )
    }

    /// True for shard-compression decisions (plan-time encode accounting
    /// and per-stream-in decode charges). A class of its own so the
    /// durability and governor audit invariants stay exact when
    /// compression is armed.
    pub fn is_compression(&self) -> bool {
        matches!(
            self,
            Decision::CompressShard { .. } | Decision::DecompressShard { .. }
        )
    }

    /// True for serving-layer decisions (admission, rejection, batching,
    /// per-query completion). A class of its own so every engine-level
    /// audit invariant is untouched by the queries multiplexed above it:
    /// serve decisions carry query/batch ids, engine decisions never do.
    pub fn is_serve(&self) -> bool {
        matches!(
            self,
            Decision::QueryAdmit { .. }
                | Decision::QueryReject { .. }
                | Decision::BatchFormed { .. }
                | Decision::QueryDone { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }

    #[test]
    fn decision_classification() {
        let skip = Decision::ShardSkip {
            iteration: 1,
            shard: 2,
            interval_bits: 64,
            active_bits: 0,
        };
        assert!(skip.is_shard_skip());
        let fuse = Decision::PhaseFusion {
            phases: "apply+scatter",
            rationale: "r",
        };
        assert!(!fuse.is_shard_skip());
        assert!(!skip.is_recovery());
        assert!(!fuse.is_recovery());
    }

    #[test]
    fn recovery_classification() {
        let retry = Decision::FaultRetry {
            iteration: 3,
            device: 0,
            op: "h2d",
            fault: "transient.h2d",
            attempt: 1,
            backoff_ns: 50_000,
        };
        let rollback = Decision::Rollback {
            iteration: 3,
            device: 0,
            op: "h2d",
            fault: "transient.h2d",
        };
        let evict = Decision::DeviceEvict {
            iteration: 2,
            device: 1,
            shards_moved: 4,
        };
        let fallback = Decision::HostFallback {
            iteration: 2,
            device: 0,
            rationale: "device lost",
        };
        for d in [&retry, &rollback, &evict, &fallback] {
            assert!(d.is_recovery());
            assert!(!d.is_shard_skip());
            assert!(!d.is_memory());
        }
    }

    #[test]
    fn memory_classification() {
        let pressure = Decision::MemoryPressure {
            device: 0,
            requested: 4096,
            available: 1024,
            capacity: 2048,
            response: "reduce-concurrency",
            scope: "plan",
        };
        let split = Decision::ShardSplit {
            shard: 3,
            vertices: 256,
            bytes: 8192,
        };
        let chunked = Decision::ChunkedXfer {
            shard: 3,
            shard_bytes: 8192,
            chunk_bytes: 1024,
            chunks: 8,
        };
        for d in [&pressure, &split, &chunked] {
            assert!(d.is_memory());
            assert!(!d.is_recovery(), "governor decisions are not recovery");
            assert!(!d.is_shard_skip());
            assert!(!d.is_durability());
        }
    }

    #[test]
    fn durability_classification() {
        let spill = Decision::ShardSpill {
            shard: 2,
            bytes: 4096,
            store: "file",
        };
        let load = Decision::ShardLoad {
            iteration: 1,
            shard: 2,
            bytes: 4096,
            store: "file",
        };
        let write = Decision::CheckpointWrite {
            iteration: 3,
            bytes: 65536,
        };
        let restore = Decision::CheckpointRestore {
            iteration: 3,
            bytes: 65536,
        };
        for d in [&spill, &load, &write, &restore] {
            assert!(d.is_durability());
            assert!(!d.is_memory(), "durability is not governor pressure");
            assert!(!d.is_recovery(), "durability is not fault recovery");
            assert!(!d.is_shard_skip());
            assert!(!d.is_compression());
            assert!(!d.is_storage(), "durability is not storage-fault handling");
        }
    }

    #[test]
    fn storage_fault_classification() {
        let retry = Decision::StorageRetry {
            iteration: 2,
            op: "spill.read",
            fault: "io.spill.read",
            shard: 3,
            attempt: 1,
            backoff_ns: 50_000,
        };
        let degraded = Decision::StorageDegraded {
            iteration: 2,
            op: "spill.read",
            shard: 3,
            rationale: "re-stream from source graph",
        };
        let skipped = Decision::CheckpointSkipped {
            iteration: 4,
            rationale: "io.checkpoint.write",
        };
        for d in [&retry, &degraded, &skipped] {
            assert!(d.is_storage());
            assert!(!d.is_durability(), "storage faults are not durability work");
            assert!(!d.is_recovery(), "storage faults are not device recovery");
            assert!(!d.is_memory());
            assert!(!d.is_compression());
            assert!(!d.is_shard_skip());
        }
    }

    #[test]
    fn serve_classification() {
        let admit = Decision::QueryAdmit {
            query: 7,
            kind: "bfs",
            queue_depth: 3,
        };
        let reject = Decision::QueryReject {
            kind: "bfs",
            queue_depth: 64,
            rationale: "queue full",
        };
        let batch = Decision::BatchFormed {
            batch: 2,
            size: 32,
            kind: "bfs",
        };
        let done = Decision::QueryDone {
            query: 7,
            batch: 2,
            lane: 5,
            deadline_met: true,
        };
        for d in [&admit, &reject, &batch, &done] {
            assert!(d.is_serve());
            assert!(!d.is_shard_skip());
            assert!(!d.is_recovery(), "serving is not fault recovery");
            assert!(!d.is_memory());
            assert!(!d.is_durability());
            assert!(!d.is_storage());
            assert!(!d.is_compression());
        }
    }

    #[test]
    fn compression_classification() {
        let compress = Decision::CompressShard {
            shard: 1,
            raw_bytes: 12_000,
            compressed_bytes: 3_000,
            codec: "zeta3",
        };
        let decompress = Decision::DecompressShard {
            iteration: 2,
            shard: 1,
            compressed_bytes: 3_000,
            raw_bytes: 12_000,
        };
        for d in [&compress, &decompress] {
            assert!(d.is_compression());
            assert!(!d.is_memory(), "compression is not governor pressure");
            assert!(!d.is_durability(), "compression is not durability");
            assert!(!d.is_recovery());
            assert!(!d.is_shard_skip());
        }
    }
}

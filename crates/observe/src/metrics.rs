//! Counters, gauges, and log2-bucket histograms.
//!
//! A [`MetricsRegistry`] is a plain mutable value (no interior
//! mutability): each component that accounts quantities owns one, and
//! the fact that names are `&'static str` keeps the hot-path cost at
//! a `BTreeMap` probe on a short key. [`MetricsRegistry::snapshot`]
//! produces an owned, exporter-friendly view.

use std::collections::BTreeMap;

/// (metric name, label) — `""` label means the unlabeled series.
type Key = (&'static str, &'static str);

/// Power-of-two bucket histogram for sizes and durations. Bucket `i`
/// counts values `v` with `floor(log2(v)) == i - 1` (bucket 0 counts
/// zeros), so 65 buckets cover the full `u64` range.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; 65];
        }
        self.counts[bucket_index(v)] += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket a value falls into (0, 1, 2, 4, 8…).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower_bound(i), c))
            .collect()
    }
}

/// Owned registry of named series. Labeled counters (e.g. per-kernel
/// time keyed by kernel label) live under the same name with a
/// non-empty label.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry((name, "")).or_insert(0) += by;
    }

    pub fn inc_labeled(&mut self, name: &'static str, label: &'static str, by: u64) {
        *self.counters.entry((name, label)).or_insert(0) += by;
    }

    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert((name, ""), v);
    }

    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry((name, "")).or_default().record(v);
    }

    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(&(name, "")).copied().unwrap_or(0)
    }

    pub fn counter_labeled(&self, name: &'static str, label: &str) -> u64 {
        self.counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// All labeled series under `name`, as `(label, value)` pairs in
    /// label order. Excludes the unlabeled series.
    pub fn labels(&self, name: &'static str) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .filter(|((n, l), _)| *n == name && !l.is_empty())
            .map(|((_, l), &v)| (*l, v))
            .collect()
    }

    pub fn gauge(&self, name: &'static str) -> Option<f64> {
        self.gauges.get(&(name, "")).copied()
    }

    pub fn histogram(&self, name: &'static str) -> Option<&Histogram> {
        self.histograms.get(&(name, ""))
    }

    /// Owned, exporter-friendly view of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        fn render((name, label): &Key) -> String {
            if label.is_empty() {
                (*name).to_string()
            } else {
                format!("{name}{{{label}}}")
            }
        }
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (render(k), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (render(k), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        render(k),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min(),
                            max: h.max(),
                            buckets: h.nonzero_buckets(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Frozen histogram for snapshots: summary stats plus non-empty
/// `(bucket_lower_bound, count)` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

/// Owned point-in-time view of a registry, sorted by series name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1024; MAX.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 1), (1 << 63, 1)]
        );
    }

    #[test]
    fn histogram_mean_of_empty_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn registry_counters_and_labels() {
        let mut m = MetricsRegistry::new();
        m.inc("h2d.bytes", 100);
        m.inc("h2d.bytes", 50);
        m.inc_labeled("kernel.time_ns", "apply", 7);
        m.inc_labeled("kernel.time_ns", "scatter", 3);
        assert_eq!(m.counter("h2d.bytes"), 150);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.counter_labeled("kernel.time_ns", "apply"), 7);
        assert_eq!(
            m.labels("kernel.time_ns"),
            vec![("apply", 7), ("scatter", 3)]
        );
        // The unlabeled series is not a label.
        assert!(m.labels("h2d.bytes").is_empty());
    }

    #[test]
    fn snapshot_renders_labels_and_reads_back() {
        let mut m = MetricsRegistry::new();
        m.inc("ops", 2);
        m.inc_labeled("ops", "h2d", 1);
        m.set_gauge("occupancy", 0.5);
        m.observe("size", 4096);
        let s = m.snapshot();
        assert_eq!(s.counter("ops"), 2);
        assert_eq!(s.counter("ops{h2d}"), 1);
        assert_eq!(s.gauges, vec![("occupancy".to_string(), 0.5)]);
        assert_eq!(s.histograms[0].0, "size");
        assert_eq!(s.histograms[0].1.buckets, vec![(4096, 1)]);
    }
}

//! # gr-observe — structured events, metrics, and decision logs
//!
//! Observability substrate for the GraphReduce reproduction. The other
//! crates never format or file-write telemetry themselves; they emit
//! *typed* events through an [`Observer`] and account quantities in a
//! [`MetricsRegistry`], and everything human- or machine-readable
//! (JSONL streams, Chrome/Perfetto traces, run reports) is derived
//! from those records by the exporters in [`export`].
//!
//! Three kinds of records:
//!
//! - **Events** ([`SpanEvent`], [`InstantEvent`]): things with a place
//!   on a timeline. Spans carry a start and duration in virtual
//!   nanoseconds; instants are points. Both are grouped by `track`
//!   (e.g. `"sim"` for hardware resources, `"engine"` for GAS phases)
//!   and `lane` within the track (a copy engine, a shard, ...).
//! - **Decisions** ([`Decision`]): the engine's dynamic choices — a
//!   shard skipped by frontier management, a phase fused or
//!   eliminated — with enough context to audit each one.
//! - **Metrics** ([`MetricsRegistry`]): monotonic counters, gauges,
//!   and log2-bucket histograms, snapshotable at any granularity.
//!
//! The default [`Observer`] is disabled: emission costs one branch on
//! an `Option` and the event is *never constructed* (emit methods take
//! closures). Enabling costs one `Arc` clone per component.
//!
//! All of the above records **virtual** time. The [`profiler`] module is
//! the real-time counterpart: a scoped wall-clock profiler
//! ([`WallProfiler`]) with the same zero-cost-when-off contract, whose
//! aggregated [`WallProfile`] exports onto a dedicated `"wall"` track.

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod sink;

pub use event::{Decision, FieldValue, InstantEvent, SpanEvent};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profiler::{WallKey, WallProfile, WallProfiler, WallSample, WallSummary};
pub use sink::{Observer, Recorded, RecordingSink, Sink};

//! The disarmed-profiler overhead contract: instrumenting a hot loop
//! with `WallProfiler::scope` must allocate **nothing** and cost <1% of
//! the uninstrumented loop when the profiler is disarmed (documented in
//! docs/OBSERVABILITY.md). The allocation half is asserted exactly via a
//! counting global allocator; the timing half is asserted with paired
//! minimum-of-rounds measurements under a generous threshold so the test
//! never flakes on a noisy machine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Instant;

use gr_observe::{WallKey, WallProfiler};

struct CountingAlloc;

// Per-thread, not global: the harness runs both tests concurrently, and a
// process-wide counter would pick up the sibling test's allocations. The
// const initializer keeps first access allocation-free, and Cell<u64> has
// no destructor to register, so the counter itself never recurses into
// the allocator.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The simulated "hot kernel": enough real work per iteration that one
/// branch on an `Option` is far below 1% of it.
fn kernel(data: &[u64]) -> u64 {
    data.iter().fold(0u64, |a, &x| a.wrapping_add(x ^ (a >> 3)))
}

fn instrumented_pass(p: &WallProfiler, data: &[u64], iters: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        let _scope = p.scope(|| WallKey {
            iteration: i as u32,
            shard: 0,
            phase: "apply",
            shape: "dense",
        });
        acc = acc.wrapping_add(kernel(black_box(data)));
    }
    acc
}

fn bare_pass(data: &[u64], iters: usize) -> u64 {
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(kernel(black_box(data)));
    }
    acc
}

#[test]
fn disarmed_hot_loop_allocates_nothing() {
    let p = WallProfiler::disarmed();
    let data: Vec<u64> = (0..256).collect();
    // Warm up (and fault in) everything outside the measured region.
    black_box(instrumented_pass(&p, &data, 8));
    let before = allocations_on_this_thread();
    black_box(instrumented_pass(&p, &data, 10_000));
    let after = allocations_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "disarmed scopes must not allocate in the hot loop"
    );
    assert_eq!(p.sample_count(), 0);
}

#[test]
fn disarmed_scope_cost_is_within_the_overhead_budget() {
    let p = WallProfiler::disarmed();
    let data: Vec<u64> = (0..1024).map(|i| i * 2654435761).collect();
    let iters = 2_000;
    // Warm up both paths.
    black_box(bare_pass(&data, iters));
    black_box(instrumented_pass(&p, &data, iters));
    // Paired min-of-rounds: the minimum is the stable statistic on a
    // shared machine; interleaving the pairs cancels drift.
    let mut best_bare = f64::INFINITY;
    let mut best_inst = f64::INFINITY;
    for _ in 0..7 {
        let t = Instant::now();
        black_box(bare_pass(&data, iters));
        best_bare = best_bare.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(instrumented_pass(&p, &data, iters));
        best_inst = best_inst.min(t.elapsed().as_secs_f64());
    }
    // Contract: <1% on this workload. Guarded at 15% so scheduler noise
    // can never fail the suite; a real regression (building keys or
    // reading clocks while disarmed) costs far more than that.
    assert!(
        best_inst <= best_bare * 1.15,
        "disarmed instrumentation overhead too high: bare {best_bare:.6}s vs instrumented {best_inst:.6}s"
    );
}

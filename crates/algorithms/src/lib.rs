//! # gr-algorithms — GAS programs for the GraphReduce reproduction
//!
//! The four algorithms the paper evaluates (Section 6.1) plus two more GAS
//! workloads it names in Section 2.1:
//!
//! * [`bfs::Bfs`] — Breadth-First Search (Apply-only: exercises phase
//!   elimination);
//! * [`sssp::Sssp`] — Single-Source Shortest Paths;
//! * [`pagerank::PageRank`] — PageRank with frontier-based convergence;
//! * [`cc::Cc`] — Connected Components (the paper's Figure 6 example);
//! * [`spmv::Spmv`] — sparse matrix-vector product (one-shot GAS);
//! * [`heat::Heat`] — heat diffusion with mutable edge state (exercises the
//!   Scatter phase and edge-value write-back);
//! * [`msbfs::MsBfs`] — bit-parallel multi-source BFS (OR-reduction).
//!
//! [`mod@reference`] holds the sequential oracles every engine is validated
//! against.

pub mod bfs;
pub mod cc;
pub mod heat;
pub mod msbfs;
pub mod pagerank;
pub mod reference;
pub mod spmv;
pub mod sssp;

pub use bfs::{Bfs, UNREACHED};
pub use cc::Cc;
pub use heat::Heat;
pub use msbfs::{MsBfs, MsBfsLevels, MsBfsLevelsValue, MsBfsValue};
pub use pagerank::{PageRank, PrValue};
pub use spmv::{Spmv, SpmvValue};
pub use sssp::{Sssp, UNREACHABLE};

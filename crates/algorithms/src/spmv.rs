//! Sparse matrix-vector multiplication as a one-iteration GAS program
//! (Section 2.1 lists sparse linear algebra among the GAS-expressible
//! workloads). The graph is the matrix: edge `(u, v)` with weight `w`
//! contributes `w * x[u]` to `y[v]`.

use graphreduce::{GasProgram, InitialFrontier};

/// Per-vertex SpMV state: the input vector entry and the output entry.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SpmvValue {
    /// Input vector component `x[v]`.
    pub x: f32,
    /// Output component `y[v]` (valid after the run).
    pub y: f32,
}

graphreduce::impl_state_bytes!(SpmvValue { x: f32, y: f32 });

/// `y = A·x` where `A[v][u] = weight(u → v)`. The input vector is supplied
/// by a function of the vertex id so the program stays `Sync` + cheap.
pub struct Spmv<F: Fn(u32) -> f32 + Sync> {
    /// Input vector generator.
    pub x: F,
}

impl<F: Fn(u32) -> f32 + Sync> Spmv<F> {
    pub fn new(x: F) -> Self {
        Spmv { x }
    }
}

impl<F: Fn(u32) -> f32 + Sync> GasProgram for Spmv<F> {
    type VertexValue = SpmvValue;
    type EdgeValue = ();
    type Gather = f32;

    fn name(&self) -> &'static str {
        "spmv"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> SpmvValue {
        SpmvValue {
            x: (self.x)(v),
            y: 0.0,
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> f32 {
        0.0
    }

    fn gather_map(&self, _dst: &SpmvValue, src: &SpmvValue, _e: &(), weight: f32) -> f32 {
        weight * src.x
    }

    fn gather_reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, v: &mut SpmvValue, r: f32, _iteration: u32) -> bool {
        v.y = r;
        false // one pass; nothing activates
    }

    fn scatter(&self, _s: &SpmvValue, _d: &SpmvValue, _e: &mut ()) {}

    fn max_iterations(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    #[test]
    fn matches_direct_multiplication() {
        let layout = GraphLayout::build(&gen::with_random_weights(
            gen::uniform(128, 1024, 51),
            4.0,
            52,
        ));
        let x = |v: u32| (v % 13) as f32 * 0.5;
        let out = GraphReduce::new(
            Spmv::new(x),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let want = reference::spmv(&layout, &(0..128).map(x).collect::<Vec<_>>());
        for (got, want) in out.vertex_values.iter().zip(&want) {
            assert_eq!(got.y, *want);
        }
        assert_eq!(out.stats.iterations, 1);
    }

    #[test]
    fn zero_matrix_gives_zero_vector() {
        let layout = GraphLayout::build(&gr_graph::EdgeList::new(10));
        let out = GraphReduce::new(
            Spmv::new(|_| 1.0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert!(out.vertex_values.iter().all(|v| v.y == 0.0));
    }
}

//! Sequential reference implementations used to validate every engine
//! (GraphReduce and all baselines).
//!
//! Two kinds of oracle:
//!
//! * [`run_gas`] — a tiny, obviously-correct sequential interpreter of the
//!   GAS semantics (BSP phases, frontier gating, change-driven activation).
//!   Engines must match it **exactly**, including float bit patterns: both
//!   fold gather contributions in CSC order.
//! * Independent classical algorithms (queue BFS, Bellman-Ford, power
//!   iteration, union-find) that validate the GAS formulations themselves,
//!   so the check is not circular.

use gr_graph::{Bitmap, GraphLayout};
use graphreduce::{GasProgram, InitialFrontier};

/// Sequential GAS interpreter: the semantic ground truth.
pub fn run_gas<P: GasProgram>(
    program: &P,
    layout: &GraphLayout,
) -> (Vec<P::VertexValue>, Vec<P::EdgeValue>, u32) {
    let n = layout.num_vertices();
    let m = layout.num_edges() as usize;
    let mut values: Vec<P::VertexValue> = (0..n)
        .map(|v| program.init_vertex(v, layout.csr.degree(v) as u32))
        .collect();
    let mut edges = vec![P::EdgeValue::default(); m];
    let mut frontier = match program.initial_frontier() {
        InitialFrontier::All => Bitmap::full(n),
        InitialFrontier::Single(v) => {
            let mut b = Bitmap::new(n);
            if n > 0 {
                b.set(v);
            }
            b
        }
    };
    let mut iter = 0;
    while iter < program.max_iterations() && frontier.count() > 0 {
        // Gather (reads pre-iteration values).
        let mut temp: Vec<P::Gather> = Vec::with_capacity(n as usize);
        for v in 0..n {
            let mut acc = program.gather_identity();
            if program.has_gather() && frontier.get(v) {
                let dst_val = values[v as usize];
                for eid in layout.csc.range(v) {
                    let src = layout.csc.neighbors[eid];
                    acc = program.gather_reduce(
                        acc,
                        program.gather_map(
                            &dst_val,
                            &values[src as usize],
                            &edges[eid],
                            layout.weights[eid],
                        ),
                    );
                }
            }
            temp.push(acc);
        }
        // Apply.
        let mut changed = Bitmap::new(n);
        for v in 0..n {
            if frontier.get(v) && program.apply(&mut values[v as usize], temp[v as usize], iter) {
                changed.set(v);
            }
        }
        // Scatter.
        if program.has_scatter() {
            for v in changed.iter_set() {
                let src_val = values[v as usize];
                for (dst, eid) in layout.csr.entries(v) {
                    let dst_val = values[dst as usize];
                    program.scatter(&src_val, &dst_val, &mut edges[eid as usize]);
                }
            }
        }
        // FrontierActivate.
        let mut next = Bitmap::new(n);
        for v in changed.iter_set() {
            for (dst, _) in layout.csr.entries(v) {
                next.set(dst);
            }
        }
        frontier = next;
        iter += 1;
    }
    (values, edges, iter)
}

/// Classical queue-based BFS depths from `source` (u32::MAX = unreached).
pub fn bfs(layout: &GraphLayout, source: u32) -> Vec<u32> {
    let n = layout.num_vertices();
    let mut depth = vec![u32::MAX; n as usize];
    if n == 0 {
        return depth;
    }
    depth[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for (dst, _) in layout.csr.entries(v) {
            if depth[dst as usize] == u32::MAX {
                depth[dst as usize] = depth[v as usize] + 1;
                queue.push_back(dst);
            }
        }
    }
    depth
}

/// Bellman-Ford shortest distances from `source` over `layout.weights`.
pub fn sssp(layout: &GraphLayout, source: u32) -> Vec<f32> {
    let n = layout.num_vertices() as usize;
    let mut dist = vec![f32::INFINITY; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0.0;
    loop {
        let mut changed = false;
        for v in 0..layout.num_vertices() {
            if dist[v as usize].is_finite() {
                let dv = dist[v as usize];
                for (dst, eid) in layout.csr.entries(v) {
                    let nd = dv + layout.weights[eid as usize];
                    if nd < dist[dst as usize] {
                        dist[dst as usize] = nd;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Frontier-gated PageRank, sequentially (exact oracle for the GAS
/// programs): identical formula, tolerance, and gating.
pub fn pagerank_frontier(
    layout: &GraphLayout,
    damping: f32,
    epsilon: f32,
    max_iters: u32,
) -> Vec<f32> {
    let (values, _, _) = run_gas(
        &crate::pagerank::PageRank {
            damping,
            epsilon,
            max_iters,
        },
        layout,
    );
    values.into_iter().map(|v| v.rank).collect()
}

/// Classical synchronous power iteration (approximate oracle).
pub fn pagerank_power(layout: &GraphLayout, damping: f32, iters: u32) -> Vec<f32> {
    let n = layout.num_vertices();
    let out_deg: Vec<u32> = (0..n).map(|v| layout.csr.degree(v) as u32).collect();
    let mut rank = vec![1.0 - damping; n as usize];
    for _ in 0..iters {
        let mut next = vec![0.0f32; n as usize];
        for v in 0..n {
            let mut acc = 0.0f32;
            for (src, _) in layout.csc.entries(v) {
                if out_deg[src as usize] > 0 {
                    acc += rank[src as usize] / out_deg[src as usize] as f32;
                }
            }
            next[v as usize] = (1.0 - damping) + damping * acc;
        }
        rank = next;
    }
    rank
}

/// Validate CC labels: every vertex's label must equal the minimum vertex
/// id of its (undirected) connected component. Panics with context on
/// mismatch.
pub fn check_cc_labels(layout: &GraphLayout, labels: &[u32]) {
    let n = layout.num_vertices() as usize;
    assert_eq!(labels.len(), n);
    // Union-find over undirected edges.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in 0..layout.num_vertices() {
        for (dst, _) in layout.csr.entries(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, dst));
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
            }
        }
    }
    // Component minimum per root.
    let mut min_of_root = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = find(&mut parent, v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    for v in 0..n as u32 {
        let r = find(&mut parent, v) as usize;
        assert_eq!(
            labels[v as usize], min_of_root[r],
            "vertex {v}: label {} but component minimum is {}",
            labels[v as usize], min_of_root[r]
        );
    }
}

/// Direct SpMV: `y[v] = Σ_{(u,v)} w(u,v) · x[u]`, folded in CSC order for
/// bit-exact agreement with the GAS formulation.
pub fn spmv(layout: &GraphLayout, x: &[f32]) -> Vec<f32> {
    (0..layout.num_vertices())
        .map(|v| {
            let mut acc = 0.0f32;
            for eid in layout.csc.range(v) {
                let src = layout.csc.neighbors[eid];
                acc += layout.weights[eid] * x[src as usize];
            }
            acc
        })
        .collect()
}

/// Heat-diffusion oracle: the GAS interpreter over [`crate::heat::Heat`].
pub fn heat(layout: &GraphLayout, alpha: f32, epsilon: f32, max_iters: u32, hot: f32) -> Vec<f32> {
    let (values, _, _) = run_gas(
        &crate::heat::Heat {
            alpha,
            epsilon,
            max_iters,
            hot,
        },
        layout,
    );
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_graph::gen;

    #[test]
    fn bfs_on_a_cycle() {
        let el = gr_graph::EdgeList::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let layout = GraphLayout::build(&el);
        assert_eq!(bfs(&layout, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sssp_prefers_cheap_detours() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): best 0->1 is 3.
        let el = gr_graph::EdgeList::from_edges(3, vec![(0, 1), (0, 2), (2, 1)])
            .with_weights(vec![10.0, 1.0, 2.0]);
        let layout = GraphLayout::build(&el);
        assert_eq!(sssp(&layout, 0), vec![0.0, 3.0, 1.0]);
    }

    #[test]
    fn power_iteration_sums_to_n() {
        // With the non-normalized formula, total rank approaches |V| on
        // closed graphs (every vertex has out-edges).
        let el = gr_graph::EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let layout = GraphLayout::build(&el);
        let r = pagerank_power(&layout, 0.85, 200);
        let total: f32 = r.iter().sum();
        assert!((total - 4.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn cc_checker_catches_bad_labels() {
        let el = gr_graph::EdgeList::from_edges(4, vec![(0, 1)]).symmetrize();
        let layout = GraphLayout::build(&el);
        check_cc_labels(&layout, &[0, 0, 2, 3]); // correct
        let bad = std::panic::catch_unwind(|| {
            let layout =
                GraphLayout::build(&gr_graph::EdgeList::from_edges(4, vec![(0, 1)]).symmetrize());
            check_cc_labels(&layout, &[0, 1, 2, 3]);
        });
        assert!(bad.is_err());
    }

    #[test]
    fn gas_interpreter_is_deterministic() {
        let layout = GraphLayout::build(&gen::uniform(100, 700, 71).symmetrize());
        let (a, _, ia) = run_gas(&crate::cc::Cc, &layout);
        let (b, _, ib) = run_gas(&crate::cc::Cc, &layout);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
    }
}

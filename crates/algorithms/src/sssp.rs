//! Single-Source Shortest Paths over non-negative static edge weights
//! (frontier-driven Bellman-Ford relaxation, as in the paper's evaluation).

use graphreduce::{GasProgram, InitialFrontier};

/// Distance of unreachable vertices.
pub const UNREACHABLE: f32 = f32::INFINITY;

/// SSSP from a single source; vertex values become shortest distances.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// Source vertex.
    pub source: u32,
}

impl Sssp {
    pub fn new(source: u32) -> Self {
        Sssp { source }
    }
}

impl GasProgram for Sssp {
    type VertexValue = f32;
    type EdgeValue = ();
    type Gather = f32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> f32 {
        if v == self.source {
            0.0
        } else {
            UNREACHABLE
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::Single(self.source)
    }

    fn gather_identity(&self) -> f32 {
        UNREACHABLE
    }

    fn gather_map(&self, _dst: &f32, src: &f32, _e: &(), weight: f32) -> f32 {
        src + weight
    }

    fn gather_reduce(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, v: &mut f32, r: f32, iteration: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            // The source relaxes nothing at iteration 0 (its own gather is
            // infinite) but must still seed the frontier wave.
            iteration == 0 && *v == 0.0
        }
    }

    fn scatter(&self, _s: &f32, _d: &f32, _e: &mut ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    fn weighted_layout(seed: u64) -> GraphLayout {
        GraphLayout::build(&gen::with_random_weights(
            gen::uniform(400, 3000, seed),
            16.0,
            seed + 1,
        ))
    }

    #[test]
    fn matches_bellman_ford() {
        let layout = weighted_layout(21);
        let out = GraphReduce::new(
            Sssp::new(7),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, reference::sssp(&layout, 7));
    }

    #[test]
    fn out_of_core_matches() {
        let layout = weighted_layout(22);
        let a = GraphReduce::new(
            Sssp::new(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let b = GraphReduce::new(
            Sssp::new(0),
            &layout,
            Platform::paper_node_scaled(1 << 16),
            Options::unoptimized(),
        )
        .run()
        .unwrap();
        assert_eq!(a.vertex_values, b.vertex_values);
    }

    #[test]
    fn unit_weights_reduce_to_bfs_depths() {
        // "BFS is essentially SSSP with equal edge weights" (Section 6.2.3).
        let el = gen::uniform(200, 1200, 23); // default weight 1.0
        let layout = GraphLayout::build(&el);
        let sssp = GraphReduce::new(
            Sssp::new(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let depths = reference::bfs(&layout, 0);
        for (d, s) in depths.iter().zip(&sssp.vertex_values) {
            if *d == u32::MAX {
                assert_eq!(*s, UNREACHABLE);
            } else {
                assert_eq!(*s, *d as f32);
            }
        }
    }
}

//! PageRank with frontier-based convergence.
//!
//! Section 2.1's running example: Gather accumulates `rank(u)/out_deg(u)`
//! over in-edges, Apply computes the damped update and reports a change when
//! the rank moved by more than the tolerance. Vertices that have converged
//! drop out of the frontier — the behaviour behind the declining PageRank
//! frontier curves of Figures 3 and 16. No Scatter phase (out-edge values
//! never change), so phase elimination drops the out-edge value movement.

use graphreduce::{GasProgram, InitialFrontier};

/// Per-vertex PageRank state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrValue {
    /// Current rank.
    pub rank: f32,
    /// Out-degree (fixed at init; folded into the gather contribution).
    pub out_degree: u32,
}

graphreduce::impl_state_bytes!(PrValue {
    rank: f32,
    out_degree: u32
});

/// PageRank program.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper).
    pub damping: f32,
    /// Convergence tolerance on per-vertex rank change.
    pub epsilon: f32,
    /// Iteration cap (the usual PR evaluation fixes a budget).
    pub max_iters: u32,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            epsilon: 1e-4,
            max_iters: 100,
        }
    }
}

impl GasProgram for PageRank {
    type VertexValue = PrValue;
    type EdgeValue = ();
    type Gather = f32;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init_vertex(&self, _v: u32, out_degree: u32) -> PrValue {
        PrValue {
            rank: 1.0 - self.damping,
            out_degree,
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> f32 {
        0.0
    }

    fn gather_map(&self, _dst: &PrValue, src: &PrValue, _e: &(), _w: f32) -> f32 {
        if src.out_degree == 0 {
            0.0
        } else {
            src.rank / src.out_degree as f32
        }
    }

    fn gather_reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, v: &mut PrValue, r: f32, _iteration: u32) -> bool {
        let new_rank = (1.0 - self.damping) + self.damping * r;
        let changed = (new_rank - v.rank).abs() > self.epsilon;
        v.rank = new_rank;
        changed
    }

    fn scatter(&self, _s: &PrValue, _d: &PrValue, _e: &mut ()) {}

    fn max_iterations(&self) -> u32 {
        self.max_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    #[test]
    fn matches_frontier_gated_reference_exactly() {
        let layout = GraphLayout::build(&gen::rmat_g500(9, 4000, 31));
        let pr = PageRank::default();
        let out = GraphReduce::new(pr, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        let want = reference::pagerank_frontier(&layout, pr.damping, pr.epsilon, pr.max_iters);
        let got: Vec<f32> = out.vertex_values.iter().map(|v| v.rank).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn approximates_power_iteration() {
        let layout = GraphLayout::build(&gen::uniform(200, 2000, 32));
        let pr = PageRank {
            epsilon: 1e-7,
            max_iters: 300,
            ..Default::default()
        };
        let out = GraphReduce::new(pr, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        let exact = reference::pagerank_power(&layout, 0.85, 400);
        for (v, e) in out.vertex_values.iter().zip(&exact) {
            assert!(
                (v.rank - e).abs() < 1e-3,
                "rank {} vs power-iteration {e}",
                v.rank
            );
        }
    }

    #[test]
    fn frontier_shrinks_as_ranks_converge() {
        let layout = GraphLayout::build(&gen::stencil3d(4096, 4096 * 8, 33));
        let out = GraphReduce::new(
            PageRank::default(),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let sizes = out.stats.frontier_sizes();
        assert_eq!(sizes[0], 4096); // starts with every vertex
        assert!(
            *sizes.last().unwrap() < 4096 / 4,
            "frontier should collapse: {sizes:?}"
        );
    }

    #[test]
    fn identical_across_option_sets() {
        let layout = GraphLayout::build(&gen::rmat_g500(9, 4000, 34));
        let plat = Platform::paper_node_scaled(1 << 15);
        let a = GraphReduce::new(
            PageRank::default(),
            &layout,
            plat.clone(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let b = GraphReduce::new(PageRank::default(), &layout, plat, Options::unoptimized())
            .run()
            .unwrap();
        assert_eq!(a.vertex_values, b.vertex_values);
        assert_eq!(a.stats.iterations, b.stats.iterations);
    }
}

//! Breadth-First Search.
//!
//! The paper's phase-elimination showcase (Section 5.3): BFS defines *only*
//! the Apply phase — each newly reached vertex marks its tree depth with the
//! iteration number — so GraphReduce never moves in-edge buffers at all and
//! fuses Apply with FrontierActivate.

use graphreduce::{GasProgram, InitialFrontier};

/// Depth value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS from a single source; vertex values become tree depths.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Source vertex.
    pub source: u32,
}

impl Bfs {
    pub fn new(source: u32) -> Self {
        Bfs { source }
    }
}

impl GasProgram for Bfs {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = ();

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_vertex(&self, _v: u32, _out_degree: u32) -> u32 {
        UNREACHED
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::Single(self.source)
    }

    fn gather_identity(&self) {}

    fn gather_map(&self, _dst: &u32, _src: &u32, _e: &(), _w: f32) {}

    fn gather_reduce(&self, _a: (), _b: ()) {}

    fn apply(&self, v: &mut u32, _r: (), iteration: u32) -> bool {
        if *v == UNREACHED {
            *v = iteration;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}

    fn has_gather(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    #[test]
    fn matches_reference_on_random_graph() {
        let layout = GraphLayout::build(&gen::uniform(300, 1500, 9));
        let out = GraphReduce::new(
            Bfs::new(3),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, reference::bfs(&layout, 3));
    }

    #[test]
    fn out_of_core_matches_in_core() {
        let layout = GraphLayout::build(&gen::rmat_g500(10, 8000, 4).symmetrize());
        let big = GraphReduce::new(
            Bfs::new(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let small = GraphReduce::new(
            Bfs::new(0),
            &layout,
            Platform::paper_node_scaled(1 << 15),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(big.vertex_values, small.vertex_values);
        assert!(small.stats.num_shards > big.stats.num_shards);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let el = gr_graph::EdgeList::from_edges(5, vec![(0, 1), (1, 2)]);
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(
            Bfs::new(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, vec![0, 1, 2, UNREACHED, UNREACHED]);
    }
}

//! Multi-source BFS: bit-parallel reachability from up to 64 sources at
//! once.
//!
//! Each vertex carries a 64-bit mask of the sources that have reached it;
//! Gather ORs the in-neighbors' masks, Apply records newly arrived bits
//! (and the iteration at which the *first* source arrived). One run
//! answers 64 reachability queries — the classic MS-BFS trick, and a GAS
//! program whose reduction (`|`) differs from the min/sum family the
//! paper's four algorithms use, exercising the framework's generality
//! claim (Section 2.1).

use graphreduce::{GasProgram, InitialFrontier};

/// Per-vertex MS-BFS state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MsBfsValue {
    /// Bit `i` set ⇔ source `i` reaches this vertex.
    pub reached_by: u64,
    /// Iteration at which the first source arrived (`u32::MAX` = never).
    pub first_hit: u32,
}

graphreduce::impl_state_bytes!(MsBfsValue {
    reached_by: u64,
    first_hit: u32,
});

/// Multi-source BFS from up to 64 sources.
#[derive(Clone, Debug)]
pub struct MsBfs {
    /// Source vertices (bit `i` of every mask corresponds to
    /// `sources[i]`). At most 64.
    pub sources: Vec<u32>,
}

impl MsBfs {
    pub fn new(sources: Vec<u32>) -> Self {
        assert!(
            (1..=64).contains(&sources.len()),
            "MS-BFS runs 1..=64 sources per pass"
        );
        MsBfs { sources }
    }

    fn initial_mask(&self, v: u32) -> u64 {
        let mut m = 0;
        for (i, &s) in self.sources.iter().enumerate() {
            if s == v {
                m |= 1 << i;
            }
        }
        m
    }
}

impl GasProgram for MsBfs {
    type VertexValue = MsBfsValue;
    type EdgeValue = ();
    type Gather = u64;

    fn name(&self) -> &'static str {
        "ms-bfs"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> MsBfsValue {
        let mask = self.initial_mask(v);
        MsBfsValue {
            reached_by: mask,
            first_hit: if mask != 0 { 0 } else { u32::MAX },
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        // Multiple seeds: emulate by activating everything for iteration 0;
        // only seeded vertices report a change there, so iteration 1's
        // frontier collapses to the true seed neighborhood.
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u64 {
        0
    }

    fn gather_map(&self, _dst: &MsBfsValue, src: &MsBfsValue, _e: &(), _w: f32) -> u64 {
        src.reached_by
    }

    fn gather_reduce(&self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn apply(&self, v: &mut MsBfsValue, r: u64, iteration: u32) -> bool {
        if iteration == 0 {
            // Seeding round: only the sources propagate.
            return v.reached_by != 0;
        }
        let new_bits = r & !v.reached_by;
        if new_bits == 0 {
            return false;
        }
        v.reached_by |= new_bits;
        if v.first_hit == u32::MAX {
            v.first_hit = iteration;
        }
        true
    }

    fn scatter(&self, _s: &MsBfsValue, _d: &MsBfsValue, _e: &mut ()) {}
}

/// Per-vertex state for [`MsBfsLevels`]: the reachability mask plus one
/// BFS depth *per source lane*.
///
/// `levels[i]` is the iteration at which source `i`'s wave first reached
/// this vertex — exactly the depth the standalone [`crate::Bfs`] program
/// records (its Apply writes the iteration number on first touch, and the
/// MS-BFS wave advances one hop per iteration from the same seeds), with
/// [`crate::UNREACHED`] for lanes that never arrive. This is what lets a
/// serving layer batch K point-BFS queries into one sweep and demultiplex
/// bit-identical per-query answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsBfsLevelsValue {
    /// Bit `i` set ⇔ source `i` reaches this vertex.
    pub reached_by: u64,
    /// Per-lane BFS depth (`u32::MAX` = lane never arrived).
    pub levels: [u32; 64],
}

impl Default for MsBfsLevelsValue {
    fn default() -> Self {
        MsBfsLevelsValue {
            reached_by: 0,
            levels: [u32::MAX; 64],
        }
    }
}

// `impl_state_bytes!` handles named scalar fields only; the lane array is
// serialized manually (fixed-width little-endian, like every other state).
impl graphreduce::StateBytes for MsBfsLevelsValue {
    const BYTES: usize = 8 + 4 * 64;

    fn write_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.reached_by.to_le_bytes());
        for (i, l) in self.levels.iter().enumerate() {
            let o = 8 + i * 4;
            out[o..o + 4].copy_from_slice(&l.to_le_bytes());
        }
    }

    fn read_bytes(src: &[u8]) -> Self {
        let reached_by = u64::from_le_bytes(src[..8].try_into().unwrap());
        let mut levels = [u32::MAX; 64];
        for (i, l) in levels.iter_mut().enumerate() {
            let o = 8 + i * 4;
            *l = u32::from_le_bytes(src[o..o + 4].try_into().unwrap());
        }
        MsBfsLevelsValue { reached_by, levels }
    }
}

/// Multi-source BFS recording a full per-lane depth vector: the batched
/// form of K independent [`crate::Bfs`] runs (up to 64 per sweep).
///
/// Same wavefront as [`MsBfs`] — `Gather` ORs in-neighbor masks, the
/// seeding round activates everything once — but Apply stamps the arrival
/// iteration into every newly set lane instead of collapsing to a single
/// first-hit, so each lane demultiplexes to the exact standalone BFS
/// depth vector for its source.
#[derive(Clone, Debug)]
pub struct MsBfsLevels {
    /// Source vertices (lane `i` answers the query "BFS from
    /// `sources[i]`"). At most 64; duplicates are allowed (identical
    /// lanes).
    pub sources: Vec<u32>,
}

impl MsBfsLevels {
    pub fn new(sources: Vec<u32>) -> Self {
        assert!(
            (1..=64).contains(&sources.len()),
            "MS-BFS runs 1..=64 sources per pass"
        );
        MsBfsLevels { sources }
    }

    fn initial_mask(&self, v: u32) -> u64 {
        let mut m = 0;
        for (i, &s) in self.sources.iter().enumerate() {
            if s == v {
                m |= 1 << i;
            }
        }
        m
    }

    /// Lane `i`'s depth vector over `values` — the standalone
    /// `Bfs::new(sources[i])` answer.
    pub fn lane_depths(values: &[MsBfsLevelsValue], lane: usize) -> Vec<u32> {
        values.iter().map(|v| v.levels[lane]).collect()
    }

    /// Demultiplex the first `lanes` lanes in one pass over `values`:
    /// `result[i] == lane_depths(values, i)`. A serving batch demuxes
    /// every lane, and one scan of the (large) value array beats `lanes`
    /// strided scans by the lane count.
    pub fn all_lane_depths(values: &[MsBfsLevelsValue], lanes: usize) -> Vec<Vec<u32>> {
        assert!(lanes <= 64, "at most 64 lanes per sweep");
        let mut out = vec![vec![0u32; values.len()]; lanes];
        for (v_idx, v) in values.iter().enumerate() {
            for (lane, depths) in out.iter_mut().enumerate() {
                depths[v_idx] = v.levels[lane];
            }
        }
        out
    }
}

impl GasProgram for MsBfsLevels {
    type VertexValue = MsBfsLevelsValue;
    type EdgeValue = ();
    type Gather = u64;

    fn name(&self) -> &'static str {
        "ms-bfs-levels"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> MsBfsLevelsValue {
        let mask = self.initial_mask(v);
        let mut levels = [u32::MAX; 64];
        let mut bits = mask;
        while bits != 0 {
            levels[bits.trailing_zeros() as usize] = 0;
            bits &= bits - 1;
        }
        MsBfsLevelsValue {
            reached_by: mask,
            levels,
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u64 {
        0
    }

    fn gather_map(&self, _dst: &MsBfsLevelsValue, src: &MsBfsLevelsValue, _e: &(), _w: f32) -> u64 {
        src.reached_by
    }

    fn gather_reduce(&self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn apply(&self, v: &mut MsBfsLevelsValue, r: u64, iteration: u32) -> bool {
        if iteration == 0 {
            // Seeding round: only the sources propagate.
            return v.reached_by != 0;
        }
        let new_bits = r & !v.reached_by;
        if new_bits == 0 {
            return false;
        }
        v.reached_by |= new_bits;
        let mut bits = new_bits;
        while bits != 0 {
            v.levels[bits.trailing_zeros() as usize] = iteration;
            bits &= bits - 1;
        }
        true
    }

    fn scatter(&self, _s: &MsBfsLevelsValue, _d: &MsBfsLevelsValue, _e: &mut ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    fn run(layout: &GraphLayout, sources: Vec<u32>) -> Vec<MsBfsValue> {
        GraphReduce::new(
            MsBfs::new(sources),
            layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap()
        .vertex_values
    }

    #[test]
    fn matches_64_individual_bfs_runs() {
        let layout = GraphLayout::build(&gen::uniform(300, 1800, 21));
        let sources: Vec<u32> = (0..64).map(|i| i * 4 + 1).collect();
        let got = run(&layout, sources.clone());
        for (bit, &s) in sources.iter().enumerate() {
            let depths = reference::bfs(&layout, s);
            for v in 0..300usize {
                let reachable = depths[v] != u32::MAX;
                assert_eq!(
                    got[v].reached_by >> bit & 1 == 1,
                    reachable,
                    "source {s} vs vertex {v}"
                );
            }
        }
    }

    #[test]
    fn first_hit_is_min_depth_over_sources() {
        let layout = GraphLayout::build(&gen::uniform(200, 1400, 22));
        let sources = vec![3u32, 77, 150];
        let got = run(&layout, sources.clone());
        let per_source: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| reference::bfs(&layout, s))
            .collect();
        for v in 0..200usize {
            let best = per_source.iter().map(|d| d[v]).min().unwrap();
            if best == 0 {
                // A source itself: first_hit 0 by initialization.
                assert_eq!(got[v].first_hit, 0);
            } else if best == u32::MAX {
                assert_eq!(got[v].first_hit, u32::MAX, "vertex {v}");
            } else {
                // Iteration 0 seeds; the wave then advances one hop per
                // iteration, so depth-d vertices are applied at iteration d.
                assert_eq!(got[v].first_hit, best, "vertex {v}");
            }
        }
    }

    #[test]
    fn single_source_degenerates_to_bfs_reachability() {
        let layout = GraphLayout::build(&gen::grid2d_with_edges(400, 1500, 23));
        let got = run(&layout, vec![0]);
        let depths = reference::bfs(&layout, 0);
        for v in 0..400usize {
            assert_eq!(got[v].reached_by == 1, depths[v] != u32::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_too_many_sources() {
        MsBfs::new((0..65).collect());
    }

    fn run_levels(layout: &GraphLayout, sources: Vec<u32>) -> Vec<MsBfsLevelsValue> {
        GraphReduce::new(
            MsBfsLevels::new(sources),
            layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap()
        .vertex_values
    }

    #[test]
    fn every_lane_matches_its_standalone_bfs_depths() {
        let layout = GraphLayout::build(&gen::uniform(300, 1800, 21));
        let sources: Vec<u32> = (0..64).map(|i| i * 4 + 1).collect();
        let got = run_levels(&layout, sources.clone());
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(
                MsBfsLevels::lane_depths(&got, lane),
                reference::bfs(&layout, s),
                "lane {lane} (source {s})"
            );
        }
    }

    #[test]
    fn lane_depths_match_the_engine_bfs_bit_for_bit() {
        let layout = GraphLayout::build(&gen::rmat_g500(9, 4000, 33).symmetrize());
        let sources = vec![0u32, 7, 500, 7]; // duplicate lanes allowed
        let got = run_levels(&layout, sources.clone());
        for (lane, &s) in sources.iter().enumerate() {
            let standalone = GraphReduce::new(
                crate::Bfs::new(s),
                &layout,
                Platform::paper_node(),
                Options::optimized(),
            )
            .run()
            .unwrap();
            assert_eq!(
                MsBfsLevels::lane_depths(&got, lane),
                standalone.vertex_values,
                "lane {lane} (source {s})"
            );
        }
    }

    #[test]
    fn all_lane_depths_matches_per_lane_demux() {
        let layout = GraphLayout::build(&gen::uniform(150, 900, 34));
        let sources = vec![1u32, 50, 149];
        let got = run_levels(&layout, sources.clone());
        let all = MsBfsLevels::all_lane_depths(&got, sources.len());
        assert_eq!(all.len(), sources.len());
        for (lane, depths) in all.iter().enumerate() {
            assert_eq!(*depths, MsBfsLevels::lane_depths(&got, lane));
        }
    }

    #[test]
    fn levels_state_bytes_round_trip() {
        use graphreduce::StateBytes;
        let mut v = MsBfsLevelsValue {
            reached_by: 0xdead_beef_0451,
            ..Default::default()
        };
        v.levels[0] = 3;
        v.levels[63] = 41;
        let mut buf = vec![0u8; MsBfsLevelsValue::BYTES];
        v.write_bytes(&mut buf);
        assert_eq!(MsBfsLevelsValue::read_bytes(&buf), v);
    }
}

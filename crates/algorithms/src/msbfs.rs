//! Multi-source BFS: bit-parallel reachability from up to 64 sources at
//! once.
//!
//! Each vertex carries a 64-bit mask of the sources that have reached it;
//! Gather ORs the in-neighbors' masks, Apply records newly arrived bits
//! (and the iteration at which the *first* source arrived). One run
//! answers 64 reachability queries — the classic MS-BFS trick, and a GAS
//! program whose reduction (`|`) differs from the min/sum family the
//! paper's four algorithms use, exercising the framework's generality
//! claim (Section 2.1).

use graphreduce::{GasProgram, InitialFrontier};

/// Per-vertex MS-BFS state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MsBfsValue {
    /// Bit `i` set ⇔ source `i` reaches this vertex.
    pub reached_by: u64,
    /// Iteration at which the first source arrived (`u32::MAX` = never).
    pub first_hit: u32,
}

graphreduce::impl_state_bytes!(MsBfsValue {
    reached_by: u64,
    first_hit: u32,
});

/// Multi-source BFS from up to 64 sources.
#[derive(Clone, Debug)]
pub struct MsBfs {
    /// Source vertices (bit `i` of every mask corresponds to
    /// `sources[i]`). At most 64.
    pub sources: Vec<u32>,
}

impl MsBfs {
    pub fn new(sources: Vec<u32>) -> Self {
        assert!(
            (1..=64).contains(&sources.len()),
            "MS-BFS runs 1..=64 sources per pass"
        );
        MsBfs { sources }
    }

    fn initial_mask(&self, v: u32) -> u64 {
        let mut m = 0;
        for (i, &s) in self.sources.iter().enumerate() {
            if s == v {
                m |= 1 << i;
            }
        }
        m
    }
}

impl GasProgram for MsBfs {
    type VertexValue = MsBfsValue;
    type EdgeValue = ();
    type Gather = u64;

    fn name(&self) -> &'static str {
        "ms-bfs"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> MsBfsValue {
        let mask = self.initial_mask(v);
        MsBfsValue {
            reached_by: mask,
            first_hit: if mask != 0 { 0 } else { u32::MAX },
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        // Multiple seeds: emulate by activating everything for iteration 0;
        // only seeded vertices report a change there, so iteration 1's
        // frontier collapses to the true seed neighborhood.
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u64 {
        0
    }

    fn gather_map(&self, _dst: &MsBfsValue, src: &MsBfsValue, _e: &(), _w: f32) -> u64 {
        src.reached_by
    }

    fn gather_reduce(&self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn apply(&self, v: &mut MsBfsValue, r: u64, iteration: u32) -> bool {
        if iteration == 0 {
            // Seeding round: only the sources propagate.
            return v.reached_by != 0;
        }
        let new_bits = r & !v.reached_by;
        if new_bits == 0 {
            return false;
        }
        v.reached_by |= new_bits;
        if v.first_hit == u32::MAX {
            v.first_hit = iteration;
        }
        true
    }

    fn scatter(&self, _s: &MsBfsValue, _d: &MsBfsValue, _e: &mut ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    fn run(layout: &GraphLayout, sources: Vec<u32>) -> Vec<MsBfsValue> {
        GraphReduce::new(
            MsBfs::new(sources),
            layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap()
        .vertex_values
    }

    #[test]
    fn matches_64_individual_bfs_runs() {
        let layout = GraphLayout::build(&gen::uniform(300, 1800, 21));
        let sources: Vec<u32> = (0..64).map(|i| i * 4 + 1).collect();
        let got = run(&layout, sources.clone());
        for (bit, &s) in sources.iter().enumerate() {
            let depths = reference::bfs(&layout, s);
            for v in 0..300usize {
                let reachable = depths[v] != u32::MAX;
                assert_eq!(
                    got[v].reached_by >> bit & 1 == 1,
                    reachable,
                    "source {s} vs vertex {v}"
                );
            }
        }
    }

    #[test]
    fn first_hit_is_min_depth_over_sources() {
        let layout = GraphLayout::build(&gen::uniform(200, 1400, 22));
        let sources = vec![3u32, 77, 150];
        let got = run(&layout, sources.clone());
        let per_source: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| reference::bfs(&layout, s))
            .collect();
        for v in 0..200usize {
            let best = per_source.iter().map(|d| d[v]).min().unwrap();
            if best == 0 {
                // A source itself: first_hit 0 by initialization.
                assert_eq!(got[v].first_hit, 0);
            } else if best == u32::MAX {
                assert_eq!(got[v].first_hit, u32::MAX, "vertex {v}");
            } else {
                // Iteration 0 seeds; the wave then advances one hop per
                // iteration, so depth-d vertices are applied at iteration d.
                assert_eq!(got[v].first_hit, best, "vertex {v}");
            }
        }
    }

    #[test]
    fn single_source_degenerates_to_bfs_reachability() {
        let layout = GraphLayout::build(&gen::grid2d_with_edges(400, 1500, 23));
        let got = run(&layout, vec![0]);
        let depths = reference::bfs(&layout, 0);
        for v in 0..400usize {
            assert_eq!(got[v].reached_by == 1, depths[v] != u32::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_too_many_sources() {
        MsBfs::new((0..65).collect());
    }
}

//! Heat simulation with explicit message passing through mutable edge
//! state — the one evaluated workload class (Section 2.1 mentions "Heat
//! Simulation") that exercises the Scatter phase and therefore the
//! out-edge value write-back path.
//!
//! Semantics (Pregel-style): each iteration, Scatter stamps every out-edge
//! of a changed vertex with the vertex's temperature; next iteration,
//! Gather averages the stamped in-edge temperatures and Apply relaxes the
//! vertex toward that average. Iteration 0 only stamps (the gather of a
//! cold start reads unset edges and is ignored).

use graphreduce::{GasProgram, InitialFrontier};

/// Gather accumulator: sum of stamped neighbor temperatures + count.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HeatGather {
    pub sum: f32,
    pub count: u32,
}

graphreduce::impl_state_bytes!(HeatGather {
    sum: f32,
    count: u32
});

/// Heat diffusion program.
#[derive(Clone, Copy, Debug)]
pub struct Heat {
    /// Relaxation rate toward the neighborhood average, in (0, 1].
    pub alpha: f32,
    /// Convergence tolerance on per-vertex temperature change.
    pub epsilon: f32,
    /// Iteration cap.
    pub max_iters: u32,
    /// Initial temperature of vertex 0 (the "hot" seed); all others start
    /// at 0.
    pub hot: f32,
}

impl Default for Heat {
    fn default() -> Self {
        Heat {
            alpha: 0.5,
            epsilon: 1e-3,
            max_iters: 200,
            hot: 100.0,
        }
    }
}

impl GasProgram for Heat {
    type VertexValue = f32;
    /// Stamped source temperature from the previous Scatter.
    type EdgeValue = f32;
    type Gather = HeatGather;

    fn name(&self) -> &'static str {
        "heat"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> f32 {
        if v == 0 {
            self.hot
        } else {
            0.0
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> HeatGather {
        HeatGather::default()
    }

    fn gather_map(&self, _dst: &f32, _src: &f32, edge: &f32, _w: f32) -> HeatGather {
        HeatGather {
            sum: *edge,
            count: 1,
        }
    }

    fn gather_reduce(&self, a: HeatGather, b: HeatGather) -> HeatGather {
        HeatGather {
            sum: a.sum + b.sum,
            count: a.count + b.count,
        }
    }

    fn apply(&self, v: &mut f32, r: HeatGather, iteration: u32) -> bool {
        if iteration == 0 {
            // Cold start: edges are not stamped yet; just seed the wave.
            return true;
        }
        if r.count == 0 {
            return false;
        }
        let avg = r.sum / r.count as f32;
        let next = *v + self.alpha * (avg - *v);
        let changed = (next - *v).abs() > self.epsilon;
        *v = next;
        changed
    }

    fn scatter(&self, src: &f32, _dst: &f32, edge: &mut f32) {
        *edge = *src;
    }

    fn has_scatter(&self) -> bool {
        true
    }

    fn max_iterations(&self) -> u32 {
        self.max_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    #[test]
    fn matches_sequential_reference() {
        let layout = GraphLayout::build(&gen::grid2d_with_edges(256, 900, 61).symmetrize());
        let h = Heat::default();
        let out = GraphReduce::new(h, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        let want = reference::heat(&layout, h.alpha, h.epsilon, h.max_iters, h.hot);
        assert_eq!(out.vertex_values, want);
    }

    #[test]
    fn heat_spreads_from_the_seed() {
        let el = gr_graph::EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).symmetrize();
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(
            Heat::default(),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        // Everyone warmed up; closer vertices are warmer early in the decay.
        assert!(out.vertex_values[1] > 0.0);
        assert!(out.vertex_values[3] > 0.0);
        // Edge state was actually mutated (scatter ran).
        assert!(out.edge_values.iter().any(|&e| e != 0.0));
    }

    #[test]
    fn scatter_costs_show_up_in_data_movement() {
        let layout = GraphLayout::build(&gen::uniform(512, 6000, 62).symmetrize());
        let plat = Platform::paper_node_scaled(1 << 14);
        let heat = GraphReduce::new(Heat::default(), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        // A scatter-less program of the same shape moves fewer D2H bytes.
        let cc = GraphReduce::new(crate::cc::Cc, &layout, plat, Options::optimized())
            .run()
            .unwrap();
        let heat_d2h_per_iter = heat.stats.bytes_d2h / heat.stats.iterations.max(1) as u64;
        let cc_d2h_per_iter = cc.stats.bytes_d2h / cc.stats.iterations.max(1) as u64;
        assert!(
            heat_d2h_per_iter > cc_d2h_per_iter,
            "heat {heat_d2h_per_iter} vs cc {cc_d2h_per_iter}"
        );
    }
}

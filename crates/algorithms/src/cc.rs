//! Connected Components by min-label flooding — the paper's Figure 6 code
//! example, transcribed: `gatherMap` forwards the source label,
//! `gatherReduce` is `min`, `apply` keeps the smaller label, and there is no
//! scatter operation.
//!
//! Inputs must be symmetric (the paper stores undirected graphs as pairs of
//! directed edges); [`Cc::run_expects_symmetric`] documents the contract.

use graphreduce::{GasProgram, InitialFrontier};

/// Connected components; vertex values converge to the smallest vertex id
/// in each (weakly, if the input is symmetrized) connected component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cc;

impl Cc {
    /// The algorithm computes *undirected* components only when every edge
    /// appears in both directions, as in the paper's dataset preparation.
    pub fn run_expects_symmetric() -> &'static str {
        "store undirected graphs as pairs of directed edges"
    }
}

impl GasProgram for Cc {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> u32 {
        v
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_map(&self, _dst: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
        *src
    }

    fn gather_reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, v: &mut u32, r: u32, _iteration: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::{GraphReduce, Options};

    #[test]
    fn labels_equal_component_minimum() {
        let layout = GraphLayout::build(&gen::uniform(500, 900, 41).symmetrize());
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        reference::check_cc_labels(&layout, &out.vertex_values);
    }

    #[test]
    fn many_components() {
        // Disjoint pairs: 0-1, 2-3, ...
        let n = 100u32;
        let el = gr_graph::EdgeList::from_edges(
            n,
            (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect::<Vec<_>>(),
        )
        .symmetrize();
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        for i in 0..n / 2 {
            assert_eq!(out.vertex_values[(2 * i) as usize], 2 * i);
            assert_eq!(out.vertex_values[(2 * i + 1) as usize], 2 * i);
        }
    }

    #[test]
    fn road_like_graph_converges_slowly() {
        // Long path: label 0 must flood hop by hop — many iterations with
        // shrinking frontier (the road-network pattern of Figure 16).
        let n = 300u32;
        let el =
            gr_graph::EdgeList::from_edges(n, (0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>())
                .symmetrize();
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        assert!(out.vertex_values.iter().all(|&l| l == 0));
        assert!(out.stats.iterations >= n - 1);
        let sizes = out.stats.frontier_sizes();
        assert_eq!(sizes[0] as u32, n);
        assert!(*sizes.last().unwrap() <= 2);
    }
}

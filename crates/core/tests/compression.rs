//! Differential harness for compressed shards: a run with
//! [`Options::with_shard_compression`] must be bit-identical to the raw
//! run — same vertex state, same mutable edge state, same per-iteration
//! trace — because compression only changes how topology crosses PCIe,
//! never what the kernels compute. Covers every test program, both codec
//! families, the memory-governed (25% cap) regime, the spill-armed
//! fingerprint path, and the paper's headline claim: compressed shards
//! cut host↔device traffic by well over 2.5x on scale-16 RMAT.
//!
//! See docs/COMPRESSION.md for the encoding and where the bytes go.

use gr_graph::{gen, CompressionCodec, GraphLayout};
use gr_observe::{Decision, Observer};
use gr_sim::Platform;
use graphreduce::testprog::{Bfs, Cc, Pr, Sssp};
use graphreduce::{GasProgram, GraphReduce, Options, RunResult};

/// Weighted graph so compressed runs still ship the raw weight array
/// (weights stay uncompressed; only topology is coded).
fn weighted_graph() -> GraphLayout {
    let el = gen::with_random_weights(gen::uniform(512, 4096, 3).symmetrize(), 64.0, 11);
    GraphLayout::build(&el)
}

/// Out-of-core platform: shards actually stream, so the codec is on the
/// hot path rather than a no-op against a resident graph.
fn platform() -> Platform {
    Platform::paper_node_scaled(16384)
}

fn run<P: GasProgram + Copy>(prog: P, layout: &GraphLayout, opts: Options) -> RunResult<P> {
    GraphReduce::new(prog, layout, platform(), opts)
        .run()
        .unwrap()
}

/// Every codec × {streamed, memory-governed} cell must match the raw run
/// bit-for-bit and must actually have exercised the codec.
fn assert_differential<P>(prog: P, tag: &str)
where
    P: GasProgram + Copy,
    P::VertexValue: PartialEq + std::fmt::Debug,
    P::EdgeValue: PartialEq + std::fmt::Debug,
{
    let layout = weighted_graph();
    let base = run(prog, &layout, Options::optimized());
    assert_eq!(base.stats.compression_codec, None);
    assert_eq!(base.stats.decompress_launches, 0);
    for codec in [CompressionCodec::Varint, CompressionCodec::Zeta(3)] {
        for capped in [false, true] {
            let mut opts = Options::optimized().with_shard_compression(codec);
            if capped {
                opts = opts.with_mem_cap(platform().device.mem_capacity / 4);
            }
            let z = run(prog, &layout, opts);
            let cell = format!("{tag}/{}/capped={capped}", codec.name());
            assert_eq!(z.vertex_values, base.vertex_values, "{cell}: vertex state");
            assert_eq!(z.edge_values, base.edge_values, "{cell}: edge state");
            assert_eq!(
                z.stats.per_iteration, base.stats.per_iteration,
                "{cell}: iteration trace"
            );
            assert_eq!(z.stats.compression_codec, Some(codec.name()), "{cell}");
            assert!(
                z.stats.compression_ratio() > Some(1.0),
                "{cell}: topology must shrink (ratio {:?})",
                z.stats.compression_ratio()
            );
            assert!(
                z.stats.decompress_launches > 0,
                "{cell}: decompress kernels must be priced"
            );
            assert!(
                z.stats.bytes_h2d < base.stats.bytes_h2d,
                "{cell}: compressed run must move fewer bytes ({} vs {})",
                z.stats.bytes_h2d,
                base.stats.bytes_h2d
            );
        }
    }
}

#[test]
fn cc_compressed_runs_are_bit_identical() {
    assert_differential(Cc, "cc");
}

#[test]
fn bfs_compressed_runs_are_bit_identical() {
    assert_differential(Bfs(0), "bfs");
}

#[test]
fn sssp_compressed_runs_are_bit_identical() {
    assert_differential(Sssp(0), "sssp");
}

#[test]
fn pr_compressed_runs_are_bit_identical() {
    assert_differential(Pr, "pr");
}

/// Fresh scratch directory (no tempfile crate in the workspace).
fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gr-compress-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Spill-armed runs compute a state fingerprint; compression must not
/// perturb it (the fingerprint hashes decoded state, not frames), and
/// the compressed frames must shrink on the medium (`with_spill_dir`
/// rebuilds the file store with the codec).
#[test]
fn spill_armed_fingerprint_matches_raw() {
    let layout = weighted_graph();
    let mut plat = platform();
    plat.host.mem_capacity = 100_000;
    let run_with = |opts: Options| {
        GraphReduce::new(Cc, &layout, plat.clone(), opts)
            .run()
            .unwrap()
    };
    let dir = scratch("spill");
    let raw = run_with(Options::optimized().with_spill_dir(&dir));
    let zdir = scratch("spill-z");
    let z = run_with(
        Options::optimized()
            .with_spill_dir(&zdir)
            .with_shard_compression(CompressionCodec::Zeta(3)),
    );
    assert!(raw.stats.spilled_shards > 0, "host cap must force spilling");
    assert!(z.stats.spilled_shards > 0);
    assert!(
        z.stats.spilled_bytes < raw.stats.spilled_bytes,
        "compressed spill frames must shrink on the medium ({} vs {})",
        z.stats.spilled_bytes,
        raw.stats.spilled_bytes
    );
    assert_eq!(z.vertex_values, raw.vertex_values);
    assert!(raw.stats.state_fingerprint.is_some());
    assert_eq!(z.stats.state_fingerprint, raw.stats.state_fingerprint);
}

/// Acceptance: on scale-16 RMAT, compressed shards cut host↔device bytes
/// by at least 2.5x, the ratio is visible in `RunStats`, and the codec's
/// decisions land in the observer log.
#[test]
fn scale_16_rmat_compressed_cuts_transfers_2_5x() {
    let layout = GraphLayout::build(&gen::rmat_g500(16, 1 << 20, 42).symmetrize());
    // Device large enough for scale-16 static vertex state, small enough
    // that the 2M-edge topology still streams shard by shard.
    let plat = Platform::paper_node_scaled(1024);
    let raw = GraphReduce::new(Bfs(0), &layout, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    let (obs, sink) = Observer::recording();
    let z = GraphReduce::new(
        Bfs(0),
        &layout,
        plat,
        Options::optimized().with_shard_compression(CompressionCodec::Zeta(3)),
    )
    .with_observer(obs)
    .run()
    .unwrap();
    assert_eq!(z.vertex_values, raw.vertex_values);
    let raw_moved = raw.stats.bytes_h2d + raw.stats.bytes_d2h;
    let z_moved = z.stats.bytes_h2d + z.stats.bytes_d2h;
    let transfer_ratio = raw_moved as f64 / z_moved as f64;
    assert!(
        transfer_ratio >= 2.5,
        "scale-16 RMAT must cut PCIe traffic >= 2.5x, got {transfer_ratio:.2}x \
         ({raw_moved} -> {z_moved} bytes)"
    );
    assert!(
        z.stats.compression_ratio() >= Some(2.5),
        "topology ratio must be reported in RunStats, got {:?}",
        z.stats.compression_ratio()
    );
    assert!(z.stats.decompress_launches > 0);
    let rec = sink.recorded();
    // Decompression is priced on the device timeline, so the compressed
    // run cannot claim the transfer savings for free.
    let decompress_ns: u64 = rec
        .spans
        .iter()
        .filter(|s| s.name == "decompress")
        .map(|s| s.dur_ns)
        .sum();
    assert!(
        decompress_ns > 0,
        "decompress kernels must occupy simulated time"
    );
    let compress = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::CompressShard { .. }))
        .count();
    assert_eq!(
        compress, z.stats.num_shards as usize,
        "one CompressShard decision per shard"
    );
}

//! Property tests for the GraphReduce engine: on arbitrary graphs and
//! arbitrary optimization settings, results must equal the sequential GAS
//! oracle bit-for-bit, the partition plan must satisfy Equation (1), and
//! optimizations must never *increase* data movement.

use proptest::prelude::*;

use gr_graph::{EdgeList, GraphLayout};
use gr_sim::Platform;
use graphreduce::{
    plan_partition, GasProgram, GatherMode, GraphReduce, InitialFrontier, Options, SizeModel,
};

/// Min-label flood (CC) — the Figure 6 program.
struct Cc;

impl GasProgram for Cc {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn init_vertex(&self, v: u32, _d: u32) -> u32 {
        v
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
        *src
    }

    fn gather_reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
}

/// Sequential oracle with identical BSP semantics.
fn oracle(layout: &GraphLayout) -> Vec<u32> {
    let n = layout.num_vertices();
    let mut label: Vec<u32> = (0..n).collect();
    let mut frontier: Vec<bool> = vec![true; n as usize];
    loop {
        let mut changed = vec![false; n as usize];
        let mut any = false;
        let snapshot = label.clone();
        for v in 0..n {
            if !frontier[v as usize] {
                continue;
            }
            let mut best = u32::MAX;
            for (src, _) in layout.csc.entries(v) {
                best = best.min(snapshot[src as usize]);
            }
            if best < label[v as usize] {
                label[v as usize] = best;
                changed[v as usize] = true;
                any = true;
            }
        }
        if !any {
            break;
        }
        let mut next = vec![false; n as usize];
        for v in 0..n {
            if changed[v as usize] {
                for (dst, _) in layout.csr.entries(v) {
                    next[dst as usize] = true;
                }
            }
        }
        frontier = next;
    }
    label
}

fn graphs() -> impl Strategy<Value = EdgeList> {
    (2u32..120).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 1..500)
            .prop_map(move |edges| EdgeList::from_edges(n, edges))
    })
}

fn options() -> impl Strategy<Value = Options> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        1u32..4,
        prop_oneof![
            Just(GatherMode::Hybrid),
            Just(GatherMode::VertexCentric),
            Just(GatherMode::EdgeCentricAtomic)
        ],
    )
        .prop_map(|(a, s, f, ph, cta, k, gm)| {
            Options::optimized()
                .with_async_streams(a)
                .with_spray(s)
                .with_frontier_management(f)
                .with_phase_fusion(ph)
                .with_cta_load_balance(cta)
                .with_concurrent_shards(k)
                .with_gather_mode(gm)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Results are oracle-exact under every option combination and device
    /// size (in-memory and out-of-core paths).
    #[test]
    fn engine_matches_oracle(el in graphs(), opts in options(), scale_log in 0u32..22) {
        let layout = GraphLayout::build(&el);
        let want = oracle(&layout);
        let platform = Platform::paper_node_scaled(1u64 << scale_log);
        match GraphReduce::new(Cc, &layout, platform, opts).run() {
            Ok(out) => prop_assert_eq!(out.vertex_values, want),
            // Tiny devices may legitimately refuse the vertex set / shard.
            Err(e) => prop_assert!(scale_log > 12, "unexpected plan failure {e:?}"),
        }
    }

    /// The plan satisfies Equation (1): K slots of the largest shard plus
    /// the static buffers fit device memory, and shards partition V.
    #[test]
    fn plan_satisfies_equation_one(el in graphs(), k in 1u32..5, scale_log in 0u32..16) {
        let layout = GraphLayout::build(&el);
        let sizes = SizeModel {
            vertex_value: 4,
            gather: 4,
            edge_value: 0,
            has_gather: true,
            has_scatter: false,
        };
        let platform = Platform::paper_node_scaled(1u64 << scale_log);
        if let Ok(plan) = plan_partition(&layout, &sizes, &platform.device, &platform.pcie, k, None) {
            prop_assert!(
                plan.static_bytes + plan.concurrent as u64 * plan.max_shard_bytes
                    <= platform.device.mem_capacity
            );
            prop_assert!(plan.concurrent >= 1 && plan.concurrent <= k.max(1));
            gr_graph::validate_partition(
                &plan.shards.iter().map(|s| s.interval).collect::<Vec<_>>(),
                layout.num_vertices(),
            )
            .unwrap();
        }
    }

    /// Each optimization may only reduce (never increase) bytes moved,
    /// holding everything else fixed.
    #[test]
    fn optimizations_never_add_traffic(el in graphs()) {
        let layout = GraphLayout::build(&el);
        let platform = Platform::paper_node_scaled(1 << 10);
        let run = |o: Options| {
            GraphReduce::new(Cc, &layout, platform.clone(), o)
                .run()
                .map(|r| r.stats.bytes_h2d + r.stats.bytes_d2h)
        };
        if let (Ok(base), Ok(fm), Ok(fused)) = (
            run(Options::unoptimized()),
            run(Options::unoptimized().with_frontier_management(true)),
            run(Options::unoptimized().with_phase_fusion(true)),
        ) {
            prop_assert!(fm <= base, "frontier management added traffic: {fm} > {base}");
            prop_assert!(fused <= base, "fusion added traffic: {fused} > {base}");
        }
    }
}

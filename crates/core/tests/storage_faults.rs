//! Storage-fault chaos: injected I/O faults on the spill and durable-
//! checkpoint paths must be absorbed by capped retries or degrade
//! gracefully — never change results, never corrupt a snapshot, and
//! leave exactly one decision-log entry per injected fault. Disarmed
//! plans must be byte-identical to runs without this machinery.
//!
//! See docs/FAULTS.md (I/O fault model) and docs/DURABILITY.md (the
//! degradation ladder these tests pin down).

use gr_graph::{gen, GraphLayout};
use gr_observe::{Decision, Observer, Recorded};
use gr_sim::Platform;
use graphreduce::testprog::Cc;
use graphreduce::{
    CheckpointPolicy, EngineError, FaultPlan, GraphReduce, MemShardStore, Options, RunResult,
};

fn small_graph() -> GraphLayout {
    GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
}

fn platform() -> Platform {
    Platform::paper_node_scaled(16384)
}

/// Host RAM far below the graph's footprint: every run spills shards.
fn host_capped_platform() -> Platform {
    let mut plat = platform();
    plat.host.mem_capacity = 100_000;
    plat
}

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gr-iofault-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn oracle() -> RunResult<Cc> {
    GraphReduce::new(Cc, &small_graph(), host_capped_platform(), spill_opts())
        .run()
        .unwrap()
}

fn spill_opts() -> Options {
    Options::optimized().with_shard_store(MemShardStore::new())
}

/// Run CC on the host-capped platform under `opts`, asserting the
/// one-decision-per-injected-I/O-fault invariant.
fn run_io_faulted(opts: Options) -> (RunResult<Cc>, Recorded) {
    let layout = small_graph();
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(Cc, &layout, host_capped_platform(), opts)
        .with_observer(obs)
        .run()
        .unwrap();
    let rec = sink.recorded();
    (out, rec)
}

#[test]
fn transient_spill_faults_absorbed_bit_identical() {
    let want = oracle();
    let plan = FaultPlan::none()
        .fail_spill_write(0, 2)
        .fail_spill_read(0, 2);
    let injected = plan.io_fault_count();
    let (out, rec) = run_io_faulted(spill_opts().with_fault_plan(plan));
    assert_eq!(out.vertex_values, want.vertex_values);
    assert_eq!(out.stats.spilled_shards, want.stats.spilled_shards);
    assert_eq!(out.stats.storage_retries, injected, "all faults absorbed");
    assert_eq!(out.stats.spill_restreams, 0);
    assert_eq!(
        rec.storage_decisions() as u64,
        injected,
        "one decision per injected fault"
    );
    assert!(rec
        .decisions
        .iter()
        .filter(|d| d.is_storage())
        .all(|d| matches!(d, Decision::StorageRetry { .. })));
}

#[test]
fn exhausted_spill_read_restreams_bit_identical() {
    let want = oracle();
    // 4 consecutive read faults exhaust the default 3-retry budget on the
    // first spilled-shard load: that load degrades to re-streaming the
    // shard's topology from the source graph.
    let plan = FaultPlan::none().fail_spill_read(0, 4);
    let injected = plan.io_fault_count();
    let (out, rec) = run_io_faulted(spill_opts().with_fault_plan(plan));
    assert_eq!(
        out.vertex_values, want.vertex_values,
        "re-streaming must reproduce the exact shard"
    );
    assert_eq!(out.stats.spill_restreams, 1);
    assert_eq!(out.stats.storage_retries, injected - 1);
    assert_eq!(
        out.stats.spill_loads,
        want.stats.spill_loads - 1,
        "a re-streamed shard is not a store load"
    );
    assert_eq!(rec.storage_decisions() as u64, injected);
    let degradations = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::StorageDegraded { .. }))
        .count();
    assert_eq!(degradations, 1, "exactly one degradation decision");
}

#[test]
fn exhausted_spill_write_leaves_shard_host_resident() {
    let want = oracle();
    let plan = FaultPlan::none().fail_spill_write(0, 4);
    let injected = plan.io_fault_count();
    let (out, rec) = run_io_faulted(spill_opts().with_fault_plan(plan));
    assert_eq!(out.vertex_values, want.vertex_values);
    assert_eq!(
        out.stats.spilled_shards,
        want.stats.spilled_shards - 1,
        "the abandoned write must not count as a spill"
    );
    assert_eq!(out.stats.storage_retries, injected - 1);
    assert_eq!(rec.storage_decisions() as u64, injected);
    assert!(matches!(
        rec.decisions.iter().find(|d| d.is_storage()).unwrap(),
        Decision::StorageRetry { .. }
    ));
}

#[test]
fn checkpoint_write_faults_are_retried_and_resume_still_works() {
    let layout = small_graph();
    let dir = scratch("ckpt-retry");
    let plan = FaultPlan::none().fail_checkpoint_write(0, 2);
    let injected = plan.io_fault_count();
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1))
            .with_fault_plan(plan),
    )
    .with_observer(obs)
    .run()
    .unwrap();
    assert_eq!(out.stats.storage_retries, injected);
    assert_eq!(out.stats.checkpoints_skipped, 0);
    assert_eq!(sink.recorded().storage_decisions() as u64, injected);
    // The absorbed faults never reduced durable coverage: resume replays
    // to the identical answer.
    let resumed = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1)),
    )
    .resume(&dir)
    .unwrap();
    assert_eq!(resumed.vertex_values, out.vertex_values);
    assert_eq!(resumed.stats.state_fingerprint, out.stats.state_fingerprint);
}

#[test]
fn exhausted_checkpoint_write_skips_and_the_run_continues() {
    let layout = small_graph();
    let dir = scratch("ckpt-skip");
    // An endless checkpoint-fault window: every durable write exhausts
    // its retries and is skipped; the run itself must still converge.
    let plan = FaultPlan::none().fail_checkpoint_write(0, u64::MAX);
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1))
            .with_fault_plan(plan),
    )
    .with_observer(obs)
    .run()
    .unwrap();
    let clean = GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap();
    assert_eq!(out.vertex_values, clean.vertex_values);
    assert!(out.stats.checkpoints_skipped > 0);
    assert_eq!(out.stats.checkpoint_writes, 0, "nothing reached disk");
    let rec = sink.recorded();
    let skips = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::CheckpointSkipped { .. }))
        .count() as u64;
    assert_eq!(skips, out.stats.checkpoints_skipped);
    // One decision per injected fault: every retry plus every skip.
    assert_eq!(
        rec.storage_decisions() as u64,
        out.stats.storage_retries + out.stats.checkpoints_skipped
    );
    // No durable file ever appeared.
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "grck"))
        .count();
    assert_eq!(snapshots, 0);
}

#[test]
fn torn_checkpoint_writes_never_install_a_corrupt_snapshot() {
    let layout = small_graph();
    let dir = scratch("torn");
    // Tear the first three checkpoint writes mid-file. Each retry must
    // install the complete bytes behind the rename barrier; the
    // truncated `.tmp` debris is invisible to the resume scanner.
    let plan = FaultPlan::none().torn_checkpoint_write(0, 3);
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1))
            .with_fault_plan(plan),
    )
    .run()
    .unwrap();
    assert!(out.stats.checkpoint_writes > 0);
    let resumed = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1)),
    )
    .resume(&dir)
    .unwrap();
    assert_eq!(resumed.vertex_values, out.vertex_values);
    assert_eq!(resumed.stats.state_fingerprint, out.stats.state_fingerprint);
}

#[test]
fn disarmed_io_plan_is_byte_identical_to_no_plan() {
    let want = oracle();
    let (out, rec) = run_io_faulted(spill_opts());
    assert_eq!(out.vertex_values, want.vertex_values);
    assert_eq!(out.stats.elapsed, want.stats.elapsed);
    assert_eq!(out.stats.storage_retries, 0);
    assert_eq!(out.stats.spill_restreams, 0);
    assert_eq!(out.stats.checkpoints_skipped, 0);
    assert_eq!(rec.storage_decisions(), 0, "zero decisions when disarmed");
}

#[test]
fn io_fault_profiles_parse_and_recover_bit_identical() {
    let want = oracle();
    for profile in ["spill-io", "checkpoint-io"] {
        let plan = FaultPlan::profile(profile, 0).unwrap();
        assert!(plan.has_io_faults(), "{profile}");
        let injected = plan.io_fault_count();
        let dir = scratch(&format!("profile-{profile}"));
        let (obs, sink) = Observer::recording();
        let out = GraphReduce::new(
            Cc,
            &small_graph(),
            host_capped_platform(),
            spill_opts()
                .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1))
                .with_fault_plan(plan),
        )
        .with_observer(obs)
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, want.vertex_values, "{profile}");
        assert_eq!(
            sink.recorded().storage_decisions() as u64,
            injected,
            "{profile}: one decision per injected fault"
        );
    }
}

#[test]
fn io_faults_never_touch_the_device_timeline() {
    // Storage faults live on the host side of the wall: retries and
    // degradations must not move the simulated clock.
    let want = oracle();
    let plan = FaultPlan::none()
        .fail_spill_read(0, 4)
        .fail_spill_write(0, 2);
    let (out, _) = run_io_faulted(spill_opts().with_fault_plan(plan));
    assert_eq!(out.stats.elapsed, want.stats.elapsed);
    assert_eq!(out.stats.faults_injected, 0, "no device faults injected");
}

#[test]
fn kill_during_io_faults_still_resumes_exactly() {
    let layout = small_graph();
    let dir = scratch("kill-io");
    let clean = GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1))
            .with_fault_plan(
                FaultPlan::none()
                    .torn_checkpoint_write(0, 1)
                    .kill_at_iteration(2),
            ),
    )
    .run();
    assert!(matches!(res, Err(EngineError::Killed { iteration: 2 })));
    let resumed = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1)),
    )
    .resume(&dir)
    .unwrap();
    assert_eq!(resumed.vertex_values, clean.vertex_values);
    assert_eq!(resumed.stats.checkpoint_restores, 1);
}

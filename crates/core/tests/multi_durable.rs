//! Multi-GPU durable recovery: checkpoints taken at BSP barrier
//! boundaries by the orchestrator must resume bit-identically — same
//! vertex values, same per-iteration trace, same state fingerprint —
//! including after a process kill, on *fewer* devices than the run was
//! checkpointed on, and under delta snapshots. Durable writes are
//! host-side only: device timelines and barrier counts stay untouched.
//!
//! See docs/DURABILITY.md (multi-GPU resume semantics) and the
//! single-GPU kill-restart family in tests/chaos.rs these mirror.

use gr_graph::{gen, GraphLayout};
use gr_observe::{Decision, Observer};
use gr_sim::{FaultPlan, Platform};
use graphreduce::testprog::{Bfs, Cc, Pr, Sssp};
use graphreduce::{CheckpointPolicy, EngineError, GasProgram, MultiGraphReduce, MultiRunResult};

fn multi_layout() -> GraphLayout {
    GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
}

fn platform() -> Platform {
    Platform::paper_node_scaled(1 << 14)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gr-multidur-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn durable(dir: &std::path::Path) -> CheckpointPolicy {
    CheckpointPolicy::durable(dir, 1)
}

/// Kill a durable `gpus`-GPU run of `p` at boundary `kill_at`, then
/// resume it on `resume_gpus` devices and return the finished result.
fn kill_then_resume<P: GasProgram + Clone>(
    p: &P,
    layout: &GraphLayout,
    gpus: u32,
    resume_gpus: u32,
    kill_at: u32,
    tag: &str,
) -> MultiRunResult<P> {
    let dir = scratch(tag);
    let res = MultiGraphReduce::new(p.clone(), layout, platform(), gpus)
        .with_checkpoint_policy(durable(&dir))
        .with_fault_plan(0, FaultPlan::none().kill_at_iteration(kill_at))
        .run();
    match res {
        Err(EngineError::Killed { iteration }) => {
            assert_eq!(
                iteration, kill_at,
                "{tag}: killed at the requested boundary"
            )
        }
        Err(e) => panic!("{tag}: wrong error {e}"),
        Ok(_) => panic!("{tag}: run must not survive the kill"),
    }
    MultiGraphReduce::new(p.clone(), layout, platform(), resume_gpus)
        .with_checkpoint_policy(durable(&dir))
        .resume(&dir)
        .unwrap()
}

/// The kill-restart family on N GPUs: kill at the first, a middle, and
/// the last boundary; every resumed run must match the uninterrupted
/// oracle bit-for-bit.
fn assert_multi_kill_restart<P: GasProgram + Clone>(p: P, gpus: u32, tag: &str)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
{
    let layout = multi_layout();
    let oracle_dir = scratch(&format!("{tag}-oracle"));
    let oracle = MultiGraphReduce::new(p.clone(), &layout, platform(), gpus)
        .with_checkpoint_policy(durable(&oracle_dir))
        .run()
        .unwrap();
    let iters = oracle.stats.iterations;
    assert!(
        iters >= 3,
        "{tag}: graph too easy to kill mid-run ({iters})"
    );
    let fp = oracle
        .stats
        .state_fingerprint
        .expect("durable multi runs fingerprint state");
    for kill_at in [0, iters / 2, iters - 1] {
        let out = kill_then_resume(
            &p,
            &layout,
            gpus,
            gpus,
            kill_at,
            &format!("{tag}-k{kill_at}"),
        );
        assert_eq!(
            out.vertex_values, oracle.vertex_values,
            "{tag} kill@{kill_at}"
        );
        assert_eq!(out.stats.iterations, iters, "{tag} kill@{kill_at}");
        assert_eq!(
            out.stats.per_iteration.len(),
            oracle.stats.per_iteration.len(),
            "{tag} kill@{kill_at}: full trace restored"
        );
        let frontiers = |s: &graphreduce::MultiRunStats| {
            s.per_iteration
                .iter()
                .map(|i| i.frontier_size)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            frontiers(&out.stats),
            frontiers(&oracle.stats),
            "{tag} kill@{kill_at}: per-iteration trace bit-identical"
        );
        assert_eq!(
            out.stats.state_fingerprint,
            Some(fp),
            "{tag} kill@{kill_at}"
        );
        assert_eq!(out.stats.checkpoint_restores, 1, "{tag} kill@{kill_at}");
    }
}

#[test]
fn bfs_multi_kill_restart_resumes_bit_identical() {
    assert_multi_kill_restart(Bfs(0), 2, "bfs-x2");
}

#[test]
fn cc_multi_kill_restart_resumes_bit_identical() {
    assert_multi_kill_restart(Cc, 4, "cc-x4");
}

#[test]
fn resume_on_fewer_devices_redistributes_and_matches() {
    // Checkpoint on 4 GPUs, come back up with 2: the recorded placement
    // is advisory — ownership is re-derived for the surviving device set
    // and the answer matches an uninterrupted 2-GPU run exactly.
    let layout = multi_layout();
    let oracle = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .run()
        .unwrap();
    let out = kill_then_resume(&Cc, &layout, 4, 2, 2, "shrink");
    assert_eq!(out.vertex_values, oracle.vertex_values);
    assert_eq!(out.stats.num_gpus, 2, "resumed run reports its own width");
    assert_eq!(out.stats.iterations, oracle.stats.iterations);
    assert_eq!(out.stats.checkpoint_restores, 1);
}

#[test]
fn resume_emits_exactly_one_restore_decision() {
    let layout = multi_layout();
    let dir = scratch("one-restore");
    let res = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_checkpoint_policy(durable(&dir))
        .with_fault_plan(1, FaultPlan::none().kill_at_iteration(2))
        .run();
    assert!(matches!(res, Err(EngineError::Killed { iteration: 2 })));
    let (obs, sink) = Observer::recording();
    let out = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_observer(obs)
        .with_checkpoint_policy(durable(&dir))
        .resume(&dir)
        .unwrap();
    let rec = sink.recorded();
    let restores = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::CheckpointRestore { .. }))
        .count() as u64;
    assert_eq!(restores, 1);
    let writes = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::CheckpointWrite { .. }))
        .count() as u64;
    assert_eq!(
        writes, out.stats.checkpoint_writes,
        "one decision per write"
    );
    assert!(out.stats.checkpoint_bytes_written > 0);
}

#[test]
fn durable_checkpointing_leaves_multi_timeline_untouched() {
    // Snapshot writes are host-side: elapsed virtual time, exchange
    // bytes, and results must be byte-identical with and without them.
    let layout = multi_layout();
    let clean = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .run()
        .unwrap();
    let dir = scratch("timeline");
    let durable_run = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_checkpoint_policy(durable(&dir))
        .run()
        .unwrap();
    assert_eq!(clean.vertex_values, durable_run.vertex_values);
    assert_eq!(clean.stats.elapsed, durable_run.stats.elapsed);
    assert_eq!(clean.stats.exchange_bytes, durable_run.stats.exchange_bytes);
    assert!(durable_run.stats.checkpoint_writes > 0);
    assert_eq!(clean.stats.checkpoint_writes, 0);
    assert_eq!(clean.stats.state_fingerprint, None, "zero cost when off");
}

/// Delta-vs-full differential for one program: identical results and
/// fingerprints, and the delta run's on-disk footprint splits into full
/// + delta bytes that sum to the total.
fn assert_delta_matches_full<P: GasProgram + Clone>(p: P, tag: &str) -> (u64, u64)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
{
    let layout = multi_layout();
    let full_dir = scratch(&format!("{tag}-full"));
    let full = MultiGraphReduce::new(p.clone(), &layout, platform(), 2)
        .with_checkpoint_policy(CheckpointPolicy::durable(&full_dir, 1))
        .run()
        .unwrap();
    let delta_dir = scratch(&format!("{tag}-delta"));
    let delta = MultiGraphReduce::new(p.clone(), &layout, platform(), 2)
        .with_checkpoint_policy(CheckpointPolicy::durable_delta(&delta_dir, 1, 4))
        .run()
        .unwrap();
    assert_eq!(full.vertex_values, delta.vertex_values, "{tag}");
    assert_eq!(
        full.stats.state_fingerprint, delta.stats.state_fingerprint,
        "{tag}"
    );
    assert_eq!(
        full.stats.iterations, delta.stats.iterations,
        "{tag}: snapshot cadence must not change the computation"
    );
    assert!(delta.stats.checkpoint_delta_writes > 0, "{tag}");
    assert_eq!(
        delta.stats.checkpoint_full_bytes + delta.stats.checkpoint_delta_bytes,
        delta.stats.checkpoint_bytes_written,
        "{tag}: full + delta bytes account for every byte written"
    );
    // A kill mid-run must restore through the delta chain (one full +
    // one delta) to the exact same answer.
    let dir = scratch(&format!("{tag}-delta-kill"));
    let kill_at = full.stats.iterations - 1;
    let res = MultiGraphReduce::new(p.clone(), &layout, platform(), 2)
        .with_checkpoint_policy(CheckpointPolicy::durable_delta(&dir, 1, 4))
        .with_fault_plan(0, FaultPlan::none().kill_at_iteration(kill_at))
        .run();
    assert!(matches!(res, Err(EngineError::Killed { .. })), "{tag}");
    let resumed = MultiGraphReduce::new(p, &layout, platform(), 2)
        .with_checkpoint_policy(CheckpointPolicy::durable_delta(&dir, 1, 4))
        .resume(&dir)
        .unwrap();
    assert_eq!(resumed.vertex_values, full.vertex_values, "{tag}");
    assert_eq!(
        resumed.stats.state_fingerprint, full.stats.state_fingerprint,
        "{tag}: delta-chain resume lands on the same fingerprint"
    );
    (
        delta.stats.checkpoint_full_bytes
            / delta
                .stats
                .checkpoint_writes
                .saturating_sub(delta.stats.checkpoint_delta_writes)
                .max(1),
        delta.stats.checkpoint_delta_bytes / delta.stats.checkpoint_delta_writes.max(1),
    )
}

#[test]
fn delta_snapshots_match_fulls_across_algorithms() {
    assert_delta_matches_full(Cc, "cc");
    assert_delta_matches_full(Sssp(0), "sssp");
    assert_delta_matches_full(Pr, "pr");
}

#[test]
fn sparse_frontier_deltas_are_measurably_smaller_than_fulls() {
    // BFS touches a shrinking frontier each iteration: a delta snapshot
    // serializes only the dirty rows, so its average on-disk size must
    // land well under the average full snapshot.
    let (avg_full, avg_delta) = assert_delta_matches_full(Bfs(0), "bfs");
    assert!(
        avg_delta < avg_full / 2,
        "delta snapshots must be measurably smaller: avg delta {avg_delta} vs avg full {avg_full}"
    );
}

#[test]
fn multi_checkpoint_write_faults_degrade_gracefully() {
    // I/O faults on the orchestrator's checkpoint path: absorbed faults
    // retry, exhaustion skips the write, and the run still converges to
    // the clean answer with one decision per injected fault.
    let layout = multi_layout();
    let clean = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .run()
        .unwrap();
    let dir = scratch("multi-io");
    let plan = FaultPlan::none()
        .fail_checkpoint_write(0, 2)
        .torn_checkpoint_write(3, 1);
    let injected = plan.io_fault_count();
    let (obs, sink) = Observer::recording();
    let out = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_observer(obs)
        .with_checkpoint_policy(durable(&dir))
        .with_fault_plan(0, plan)
        .run()
        .unwrap();
    assert_eq!(out.vertex_values, clean.vertex_values);
    assert_eq!(out.stats.storage_retries, injected, "all faults absorbed");
    assert_eq!(out.stats.checkpoints_skipped, 0);
    assert_eq!(
        sink.recorded().storage_decisions() as u64,
        injected,
        "one decision per injected I/O fault"
    );
    // The hardened writes stayed durable: resume replays exactly.
    let resumed = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_checkpoint_policy(durable(&dir))
        .resume(&dir)
        .unwrap();
    assert_eq!(resumed.vertex_values, clean.vertex_values);
}

#[test]
fn multi_snapshots_carry_the_placement_frame() {
    // The files a multi run writes are GRCM-framed; the single-GPU
    // engine accepts them too (placement is advisory), so a multi
    // checkpoint can even be resumed single-GPU.
    let layout = multi_layout();
    let dir = scratch("grcm");
    let multi = MultiGraphReduce::new(Cc, &layout, platform(), 2)
        .with_checkpoint_policy(durable(&dir))
        .run()
        .unwrap();
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "grck"))
        .max()
        .expect("a snapshot was written");
    let bytes = std::fs::read(&newest).unwrap();
    assert_eq!(
        &bytes[..4],
        b"GRCM",
        "multi snapshots lead with the placement frame"
    );
    let single = graphreduce::GraphReduce::new(
        Cc,
        &layout,
        platform(),
        graphreduce::Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable(&dir, 1)),
    )
    .resume(&dir)
    .unwrap();
    assert_eq!(single.vertex_values, multi.vertex_values);
    assert_eq!(
        single.stats.state_fingerprint,
        multi.stats.state_fingerprint
    );
}

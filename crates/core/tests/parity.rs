//! Single/multi execution parity: a 1-GPU `MultiGraphReduce` run goes
//! through the same shared `exec` layers as the single-GPU engine —
//! host results from `exec::driver::HostState`, device ops through
//! `exec::device::DeviceCtx`, kernel pricing from `exec::compute`, and
//! rollback bookkeeping from `exec::driver::roll_back`. These tests pin
//! that down as observable behavior: identical results, iteration
//! traces, skip/fusion/elimination decision logs, governor silence when
//! uncapped, and — for identical fault schedules — identical recovery
//! decisions and identical simulated recovery time on both paths.

use gr_graph::{gen, GraphLayout};
use gr_observe::{Decision, Observer, Recorded};
use gr_sim::{Platform, SimDuration};
use graphreduce::testprog::{Bfs, Cc};
use graphreduce::{FaultPlan, GraphReduce, MultiGraphReduce, Options};

fn layout() -> GraphLayout {
    GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
}

/// Out-of-core platform (many shards) so frontier skips actually happen.
fn platform() -> Platform {
    Platform::paper_node_scaled(1 << 14)
}

fn shard_skips(rec: &Recorded) -> Vec<(u32, u32, u64, u64)> {
    rec.decisions
        .iter()
        .filter_map(|d| match d {
            Decision::ShardSkip {
                iteration,
                shard,
                interval_bits,
                active_bits,
            } => Some((*iteration, *shard, *interval_bits, *active_bits)),
            _ => None,
        })
        .collect()
}

fn plan_decisions(rec: &Recorded) -> Vec<Decision> {
    rec.decisions
        .iter()
        .filter(|d| {
            matches!(
                d,
                Decision::PhaseFusion { .. } | Decision::PhaseElimination { .. }
            )
        })
        .cloned()
        .collect()
}

/// `FaultRetry` with the op label erased: both paths must charge the same
/// backoff schedule even though the faulted op is named differently
/// (`init.vertices` vs `multi.init.vertices`).
fn retries_modulo_op(rec: &Recorded) -> Vec<(u32, u32, &'static str, u32, u64)> {
    rec.decisions
        .iter()
        .filter_map(|d| match d {
            Decision::FaultRetry {
                iteration,
                device,
                fault,
                attempt,
                backoff_ns,
                ..
            } => Some((*iteration, *device, *fault, *attempt, *backoff_ns)),
            _ => None,
        })
        .collect()
}

fn rollbacks_modulo_op(rec: &Recorded) -> Vec<(u32, u32, &'static str)> {
    rec.decisions
        .iter()
        .filter_map(|d| match d {
            Decision::Rollback {
                iteration,
                device,
                fault,
                ..
            } => Some((*iteration, *device, *fault)),
            _ => None,
        })
        .collect()
}

/// The full differential: one fault-free run per path, all observable
/// engine behavior compared — vertex state, iteration trace, frontier
/// skips, fusion/elimination planning, and governor silence.
#[test]
fn one_gpu_multi_matches_single_engine_end_to_end() {
    let l = layout();
    let plat = platform();

    let (sobs, ssink) = Observer::recording();
    let single = GraphReduce::new(Bfs(0), &l, plat.clone(), Options::optimized())
        .with_observer(sobs)
        .run()
        .unwrap();
    let (mobs, msink) = Observer::recording();
    let multi = MultiGraphReduce::new(Bfs(0), &l, plat, 1)
        .with_observer(mobs)
        .run()
        .unwrap();
    let srec = ssink.recorded();
    let mrec = msink.recorded();

    // Results and iteration trace.
    assert_eq!(multi.vertex_values, single.vertex_values);
    assert_eq!(multi.stats.iterations, single.stats.iterations);
    let sf: Vec<u64> = single.stats.frontier_sizes();
    let mf: Vec<u64> = multi
        .stats
        .per_iteration
        .iter()
        .map(|i| i.frontier_size)
        .collect();
    assert_eq!(sf, mf);
    for (s, m) in single
        .stats
        .per_iteration
        .iter()
        .zip(multi.stats.per_iteration.iter())
    {
        assert_eq!(s.changed, m.changed);
        assert_eq!(s.activated, m.activated);
        assert_eq!(s.gathered_edges, m.gathered_edges);
        assert_eq!(s.shards_processed, m.shards_processed);
        assert_eq!(s.shards_skipped, m.shards_skipped);
    }

    // Frontier-management skip decisions: same shards skipped on the same
    // iterations, with the same audit fields (both paths partition with
    // the default K=2 plan, so shard geometry is identical).
    let skips = shard_skips(&srec);
    assert!(!skips.is_empty(), "BFS on a sharded plan must skip shards");
    assert_eq!(skips, shard_skips(&mrec));

    // Fusion/elimination planning decisions come from the same
    // `exec::plan` emitter on both paths.
    let plans = plan_decisions(&srec);
    assert!(!plans.is_empty(), "BFS must eliminate the gather phase");
    assert_eq!(plans, plan_decisions(&mrec));

    // Uncapped runs: the governor stays silent on both paths.
    assert_eq!(srec.memory_decisions(), 0);
    assert_eq!(mrec.memory_decisions(), 0);
    assert_eq!(srec.recovery_decisions(), 0);
    assert_eq!(mrec.recovery_decisions(), 0);
}

/// Retry/backoff alignment (the drift the refactor removed): for an
/// identical fault schedule, both paths must log identical retry
/// decisions — same attempts, same exponential backoffs — and charge
/// identical *simulated recovery time* (faulted minus fault-free
/// elapsed). Before the shared `DeviceCtx::retry`, `multi_retry` was a
/// hand-maintained copy of the engine's loop; any backoff drift between
/// them breaks this test.
#[test]
fn identical_fault_schedules_charge_identical_sim_time() {
    let l = layout();
    let plat = platform();
    // Fault the first two H2D copies: the very first upload on either
    // path (`init.vertices` / `multi.init.vertices`), retried twice with
    // escalating backoff, succeeding within the retry budget — no
    // rollback, so the elapsed delta is pure recovery charge.
    let schedule = FaultPlan::none().fail_h2d(0, 2);

    let clean_single = GraphReduce::new(Cc, &l, plat.clone(), Options::optimized())
        .run()
        .unwrap();
    let (sobs, ssink) = Observer::recording();
    let faulted_single = GraphReduce::new(
        Cc,
        &l,
        plat.clone(),
        Options::optimized().with_fault_plan(schedule.clone()),
    )
    .with_observer(sobs)
    .run()
    .unwrap();

    let clean_multi = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
        .run()
        .unwrap();
    let (mobs, msink) = Observer::recording();
    let faulted_multi = MultiGraphReduce::new(Cc, &l, plat, 1)
        .with_fault_plan(0, schedule)
        .with_observer(mobs)
        .run()
        .unwrap();

    // Same faults seen, same results as fault-free.
    assert_eq!(faulted_single.stats.faults_injected, 2);
    assert_eq!(faulted_multi.stats.faults_injected, 2);
    assert_eq!(faulted_single.vertex_values, clean_single.vertex_values);
    assert_eq!(faulted_multi.vertex_values, clean_multi.vertex_values);

    // Identical retry decisions modulo the op label.
    let sretries = retries_modulo_op(&ssink.recorded());
    let mretries = retries_modulo_op(&msink.recorded());
    assert_eq!(sretries.len(), 2, "one retry decision per injected fault");
    assert_eq!(sretries, mretries);
    // Exponential backoff actually escalates (attempt 1 then 2).
    assert_eq!(sretries[0].3, 1);
    assert_eq!(sretries[1].3, 2);
    assert!(sretries[1].4 > sretries[0].4);

    // The recovery charge — faulted minus fault-free wall time — is
    // identical on both paths.
    let single_delta: SimDuration = faulted_single.stats.elapsed - clean_single.stats.elapsed;
    let multi_delta: SimDuration = faulted_multi.stats.elapsed - clean_multi.stats.elapsed;
    assert!(single_delta > SimDuration::ZERO, "faults must cost time");
    assert_eq!(single_delta, multi_delta);
}

/// Exhausted retries roll back through the shared
/// `exec::driver::roll_back` on both paths: same retry ladder, then the
/// same rollback decision, then a successful replay.
#[test]
fn exhausted_retries_roll_back_identically() {
    let l = layout();
    let plat = platform();
    // Four consecutive H2D faults: three retries burn the default budget,
    // the fourth failure aborts the stage, and the replayed timeline
    // succeeds (the fault window is exhausted by then).
    let schedule = FaultPlan::none().fail_h2d(0, 4);

    let (sobs, ssink) = Observer::recording();
    let single = GraphReduce::new(
        Cc,
        &l,
        plat.clone(),
        Options::optimized().with_fault_plan(schedule.clone()),
    )
    .with_observer(sobs)
    .run()
    .unwrap();
    let (mobs, msink) = Observer::recording();
    let multi = MultiGraphReduce::new(Cc, &l, plat, 1)
        .with_fault_plan(0, schedule)
        .with_observer(mobs)
        .run()
        .unwrap();

    assert_eq!(single.vertex_values, multi.vertex_values);
    let srec = ssink.recorded();
    let mrec = msink.recorded();
    assert_eq!(retries_modulo_op(&srec), retries_modulo_op(&mrec));
    let srb = rollbacks_modulo_op(&srec);
    assert_eq!(srb.len(), 1, "one rollback after the exhausted budget");
    assert_eq!(srb, rollbacks_modulo_op(&mrec));
    // One recovery decision per injected fault on both paths (the chaos
    // invariant, preserved across the unification).
    assert_eq!(
        srec.recovery_decisions() as u64,
        single.stats.faults_injected
    );
    assert_eq!(
        mrec.recovery_decisions() as u64,
        multi.stats.faults_injected
    );
}

//! Chaos harness: every fault profile, injected into real runs, must
//! leave the final vertex state bit-identical to the fault-free run —
//! the host computes exact results and the recovery layer replays only
//! the device timeline — and must leave exactly one recovery decision
//! in the log per injected fault.
//!
//! See docs/FAULTS.md for the fault model and the decision-per-fault
//! invariant these tests pin down.

use gr_graph::{gen, GraphLayout};
use gr_observe::Observer;
use gr_sim::Platform;
use graphreduce::{
    EngineError, FaultPlan, GasProgram, GraphReduce, InitialFrontier, MultiGraphReduce, Options,
    RecoveryPolicy,
};

/// Connected components (min-label flooding): touches every phase the
/// engine has — gather, apply, activate — so faults can land anywhere.
struct Cc;

impl GasProgram for Cc {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn init_vertex(&self, v: u32, _d: u32) -> u32 {
        v
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
        *src
    }

    fn gather_reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
}

fn small_graph() -> GraphLayout {
    GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
}

/// Out-of-core platform: shards stream over PCIe, so copy/launch/alloc
/// faults all have real ops to land on.
fn platform() -> Platform {
    Platform::paper_node_scaled(16384)
}

fn baseline() -> Vec<u32> {
    let layout = small_graph();
    GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap()
        .vertex_values
}

/// Run CC under `plan`, asserting the decision-per-fault invariant, and
/// return (vertex_values, stats).
fn run_faulted(plan: FaultPlan) -> (Vec<u32>, graphreduce::RunStats) {
    let layout = small_graph();
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(plan),
    )
    .with_observer(obs)
    .run()
    .unwrap();
    let rec = sink.recorded();
    assert_eq!(
        rec.recovery_decisions() as u64,
        out.stats.faults_injected,
        "one recovery decision per injected fault"
    );
    (out.vertex_values, out.stats)
}

#[test]
fn transient_copy_faults_recover_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("transient-copy", 0).unwrap());
    assert_eq!(got, want);
    assert!(stats.faults_injected >= 1, "profile must actually fire");
    assert!(stats.recovered_retries >= 1);
    assert!(!stats.host_fallback);
}

#[test]
fn kernel_faults_recover_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("kernel-fault", 0).unwrap());
    assert_eq!(got, want);
    assert!(stats.faults_injected >= 1, "profile must actually fire");
}

#[test]
fn alloc_pressure_recovers_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("oom-pressure", 0).unwrap());
    assert_eq!(got, want);
    assert_eq!(stats.faults_injected, 2, "fail_alloc(0, 2) fires twice");
    assert_eq!(stats.recovered_retries, 2);
}

#[test]
fn ecc_stalls_and_degraded_pcie_slow_but_never_fault() {
    let want = baseline();
    for profile in ["ecc-stall", "degraded-pcie"] {
        let (got, stats) = run_faulted(FaultPlan::profile(profile, 0).unwrap());
        assert_eq!(got, want, "{profile}");
        assert_eq!(stats.faults_injected, 0, "{profile}: slowdowns, not faults");
        assert_eq!(stats.rollbacks, 0, "{profile}");
    }
}

#[test]
fn exhausted_retries_roll_back_and_replay() {
    // 6 consecutive failures on one op exceed max_retries=3, forcing a
    // checkpoint rollback; the monotone fault counters make the replay
    // converge past the window.
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::none().fail_h2d(0, 6));
    assert_eq!(got, want);
    assert!(stats.rollbacks >= 1, "retry budget must have been exceeded");
    assert!(!stats.host_fallback);
}

/// The `device-loss` profile's 2 ms loss time targets full-size runs;
/// this graph finishes in under 1 ms, so the chaos tests pin the loss
/// mid-run explicitly (same code path, same sticky-loss semantics).
fn mid_run_loss() -> FaultPlan {
    FaultPlan::none().lose_device_at_ns(400_000)
}

#[test]
fn device_loss_single_gpu_falls_back_to_host() {
    let want = baseline();
    let (got, stats) = run_faulted(mid_run_loss());
    assert_eq!(got, want, "host fallback preserves exact results");
    assert_eq!(stats.faults_injected, 1, "loss is one fault, counted once");
    assert!(stats.host_fallback);
}

#[test]
fn device_loss_fail_fast_surfaces_device_lost() {
    let layout = small_graph();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_fault_plan(mid_run_loss())
            .with_recovery(RecoveryPolicy::fail_fast()),
    )
    .run();
    match res {
        Err(EngineError::DeviceLost) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("fail-fast run must not survive device loss"),
    }
}

#[test]
fn alloc_pressure_past_retry_budget_surfaces_oom() {
    let layout = small_graph();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_fault_plan(FaultPlan::none().fail_alloc(0, 64))
            .with_recovery(RecoveryPolicy::fail_fast()),
    )
    .run();
    match res {
        Err(EngineError::Alloc(_)) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("fail-fast run must not survive allocation pressure"),
    }
}

#[test]
fn seeded_chaos_recovers_bit_identical() {
    // Seeded plans mix transient copy/launch/alloc faults, ECC stalls,
    // and degraded-PCIe windows (never permanent loss); every seed must
    // converge to the fault-free answer with a fully accounted log.
    let want = baseline();
    for seed in [1u64, 7, 42, 1234, 0xdead] {
        let (got, stats) = run_faulted(FaultPlan::from_seed(seed));
        assert_eq!(got, want, "seed {seed}");
        assert!(!stats.host_fallback, "seeded plans never lose the device");
    }
}

#[test]
fn disarmed_fault_plan_adds_zero_overhead() {
    let layout = small_graph();
    let clean = GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap();
    let armed_none = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(FaultPlan::none()),
    )
    .run()
    .unwrap();
    assert_eq!(clean.vertex_values, armed_none.vertex_values);
    assert_eq!(clean.stats.elapsed, armed_none.stats.elapsed, "no stalls");
    assert_eq!(clean.stats.copy_ops, armed_none.stats.copy_ops, "no ops");
    assert_eq!(
        clean.stats.kernel_launches,
        armed_none.stats.kernel_launches
    );
    assert_eq!(clean.stats.faults_injected, 0);
    assert_eq!(armed_none.stats.faults_injected, 0);
    // The rollback checkpoint is a full clone of host state; the engine
    // must skip it entirely unless a plan can actually inject something.
    assert_eq!(clean.stats.checkpoints, 0, "no plan, no checkpoint clones");
    assert_eq!(
        armed_none.stats.checkpoints, 0,
        "an empty plan must not pay the per-iteration checkpoint clone"
    );
    let armed = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(FaultPlan::profile("transient-copy", 0).unwrap()),
    )
    .run()
    .unwrap();
    assert_eq!(
        armed.stats.checkpoints, armed.stats.iterations as u64,
        "an armed plan checkpoints every iteration"
    );
}

fn multi_layout() -> GraphLayout {
    GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
}

#[test]
fn device_loss_multi_gpu_evicts_and_redistributes() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let want = MultiGraphReduce::new(Cc, &l, plat.clone(), 2)
        .run()
        .unwrap()
        .vertex_values;
    let (obs, sink) = Observer::recording();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_observer(obs)
        .with_fault_plan(0, FaultPlan::profile("device-loss", 0).unwrap())
        .run()
        .unwrap();
    assert_eq!(res.vertex_values, want, "survivor finishes the exact run");
    assert_eq!(res.stats.evictions, 1, "one device lost, one eviction");
    assert_eq!(res.stats.faults_injected, 1, "loss counted once");
    assert_eq!(
        sink.recorded().recovery_decisions() as u64,
        res.stats.faults_injected,
        "one recovery decision per injected fault"
    );
}

#[test]
fn multi_gpu_transient_faults_recover_bit_identical() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let want = MultiGraphReduce::new(Cc, &l, plat.clone(), 2)
        .run()
        .unwrap()
        .vertex_values;
    let (obs, sink) = Observer::recording();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_observer(obs)
        .with_fault_plan(1, FaultPlan::none().fail_h2d(0, 1).fail_d2h(2, 1))
        .run()
        .unwrap();
    assert_eq!(res.vertex_values, want);
    assert_eq!(res.stats.evictions, 0);
    assert_eq!(res.stats.faults_injected, 2);
    assert_eq!(
        sink.recorded().recovery_decisions() as u64,
        res.stats.faults_injected
    );
}

#[test]
fn all_devices_lost_surfaces_device_lost() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let loss = FaultPlan::profile("device-loss", 0).unwrap();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_fault_plan(0, loss.clone())
        .with_fault_plan(1, loss)
        .run();
    match res {
        Err(EngineError::DeviceLost) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("run must not survive losing every device"),
    }
}

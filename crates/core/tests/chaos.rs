//! Chaos harness: every fault profile, injected into real runs, must
//! leave the final vertex state bit-identical to the fault-free run —
//! the host computes exact results and the recovery layer replays only
//! the device timeline — and must leave exactly one recovery decision
//! in the log per injected fault.
//!
//! See docs/FAULTS.md for the fault model and the decision-per-fault
//! invariant these tests pin down.

use gr_graph::{gen, EdgeList, GraphLayout};
use gr_observe::{Decision, Observer, Recorded};
use gr_sim::Platform;
use graphreduce::testprog::{Bfs, Cc, Pr, Sssp};
use graphreduce::{
    plan_partition, EngineError, FaultPlan, GasProgram, GraphReduce, MultiGraphReduce, Options,
    PartitionPlan, RecoveryPolicy, RunStats, SizeModel,
};

fn small_graph() -> GraphLayout {
    GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
}

/// Out-of-core platform: shards stream over PCIe, so copy/launch/alloc
/// faults all have real ops to land on.
fn platform() -> Platform {
    Platform::paper_node_scaled(16384)
}

fn baseline() -> Vec<u32> {
    let layout = small_graph();
    GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap()
        .vertex_values
}

/// Run CC under `plan`, asserting the decision-per-fault invariant, and
/// return (vertex_values, stats).
fn run_faulted(plan: FaultPlan) -> (Vec<u32>, graphreduce::RunStats) {
    let layout = small_graph();
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(plan),
    )
    .with_observer(obs)
    .run()
    .unwrap();
    let rec = sink.recorded();
    assert_eq!(
        rec.recovery_decisions() as u64,
        out.stats.faults_injected,
        "one recovery decision per injected fault"
    );
    (out.vertex_values, out.stats)
}

#[test]
fn transient_copy_faults_recover_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("transient-copy", 0).unwrap());
    assert_eq!(got, want);
    assert!(stats.faults_injected >= 1, "profile must actually fire");
    assert!(stats.recovered_retries >= 1);
    assert!(!stats.host_fallback);
}

#[test]
fn kernel_faults_recover_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("kernel-fault", 0).unwrap());
    assert_eq!(got, want);
    assert!(stats.faults_injected >= 1, "profile must actually fire");
}

#[test]
fn alloc_pressure_recovers_bit_identical() {
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::profile("oom-pressure", 0).unwrap());
    assert_eq!(got, want);
    assert_eq!(stats.faults_injected, 2, "fail_alloc(0, 2) fires twice");
    assert_eq!(stats.recovered_retries, 2);
}

#[test]
fn ecc_stalls_and_degraded_pcie_slow_but_never_fault() {
    let want = baseline();
    for profile in ["ecc-stall", "degraded-pcie"] {
        let (got, stats) = run_faulted(FaultPlan::profile(profile, 0).unwrap());
        assert_eq!(got, want, "{profile}");
        assert_eq!(stats.faults_injected, 0, "{profile}: slowdowns, not faults");
        assert_eq!(stats.rollbacks, 0, "{profile}");
    }
}

#[test]
fn exhausted_retries_roll_back_and_replay() {
    // 6 consecutive failures on one op exceed max_retries=3, forcing a
    // checkpoint rollback; the monotone fault counters make the replay
    // converge past the window.
    let want = baseline();
    let (got, stats) = run_faulted(FaultPlan::none().fail_h2d(0, 6));
    assert_eq!(got, want);
    assert!(stats.rollbacks >= 1, "retry budget must have been exceeded");
    assert!(!stats.host_fallback);
}

/// The `device-loss` profile's 2 ms loss time targets full-size runs;
/// this graph finishes in under 1 ms, so the chaos tests pin the loss
/// mid-run explicitly (same code path, same sticky-loss semantics).
fn mid_run_loss() -> FaultPlan {
    FaultPlan::none().lose_device_at_ns(400_000)
}

#[test]
fn device_loss_single_gpu_falls_back_to_host() {
    let want = baseline();
    let (got, stats) = run_faulted(mid_run_loss());
    assert_eq!(got, want, "host fallback preserves exact results");
    assert_eq!(stats.faults_injected, 1, "loss is one fault, counted once");
    assert!(stats.host_fallback);
}

#[test]
fn device_loss_fail_fast_surfaces_device_lost() {
    let layout = small_graph();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_fault_plan(mid_run_loss())
            .with_recovery(RecoveryPolicy::fail_fast()),
    )
    .run();
    match res {
        Err(EngineError::DeviceLost) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("fail-fast run must not survive device loss"),
    }
}

#[test]
fn alloc_pressure_past_retry_budget_surfaces_oom() {
    let layout = small_graph();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_fault_plan(FaultPlan::none().fail_alloc(0, 64))
            .with_recovery(RecoveryPolicy::fail_fast()),
    )
    .run();
    match res {
        Err(EngineError::Alloc(_)) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("fail-fast run must not survive allocation pressure"),
    }
}

#[test]
fn seeded_chaos_recovers_bit_identical() {
    // Seeded plans mix transient copy/launch/alloc faults, ECC stalls,
    // and degraded-PCIe windows (never permanent loss); every seed must
    // converge to the fault-free answer with a fully accounted log.
    let want = baseline();
    for seed in [1u64, 7, 42, 1234, 0xdead] {
        let (got, stats) = run_faulted(FaultPlan::from_seed(seed));
        assert_eq!(got, want, "seed {seed}");
        assert!(!stats.host_fallback, "seeded plans never lose the device");
    }
}

#[test]
fn disarmed_fault_plan_adds_zero_overhead() {
    let layout = small_graph();
    let clean = GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap();
    let armed_none = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(FaultPlan::none()),
    )
    .run()
    .unwrap();
    assert_eq!(clean.vertex_values, armed_none.vertex_values);
    assert_eq!(clean.stats.elapsed, armed_none.stats.elapsed, "no stalls");
    assert_eq!(clean.stats.copy_ops, armed_none.stats.copy_ops, "no ops");
    assert_eq!(
        clean.stats.kernel_launches,
        armed_none.stats.kernel_launches
    );
    assert_eq!(clean.stats.faults_injected, 0);
    assert_eq!(armed_none.stats.faults_injected, 0);
    // The rollback checkpoint is a full clone of host state; the engine
    // must skip it entirely unless a plan can actually inject something.
    assert_eq!(clean.stats.checkpoints, 0, "no plan, no checkpoint clones");
    assert_eq!(
        armed_none.stats.checkpoints, 0,
        "an empty plan must not pay the per-iteration checkpoint clone"
    );
    let armed = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized().with_fault_plan(FaultPlan::profile("transient-copy", 0).unwrap()),
    )
    .run()
    .unwrap();
    assert_eq!(
        armed.stats.checkpoints, armed.stats.iterations as u64,
        "an armed plan checkpoints every iteration"
    );
}

fn multi_layout() -> GraphLayout {
    GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
}

#[test]
fn device_loss_multi_gpu_evicts_and_redistributes() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let want = MultiGraphReduce::new(Cc, &l, plat.clone(), 2)
        .run()
        .unwrap()
        .vertex_values;
    let (obs, sink) = Observer::recording();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_observer(obs)
        .with_fault_plan(0, FaultPlan::profile("device-loss", 0).unwrap())
        .run()
        .unwrap();
    assert_eq!(res.vertex_values, want, "survivor finishes the exact run");
    assert_eq!(res.stats.evictions, 1, "one device lost, one eviction");
    assert_eq!(res.stats.faults_injected, 1, "loss counted once");
    assert_eq!(
        sink.recorded().recovery_decisions() as u64,
        res.stats.faults_injected,
        "one recovery decision per injected fault"
    );
}

#[test]
fn multi_gpu_transient_faults_recover_bit_identical() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let want = MultiGraphReduce::new(Cc, &l, plat.clone(), 2)
        .run()
        .unwrap()
        .vertex_values;
    let (obs, sink) = Observer::recording();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_observer(obs)
        .with_fault_plan(1, FaultPlan::none().fail_h2d(0, 1).fail_d2h(2, 1))
        .run()
        .unwrap();
    assert_eq!(res.vertex_values, want);
    assert_eq!(res.stats.evictions, 0);
    assert_eq!(res.stats.faults_injected, 2);
    assert_eq!(
        sink.recorded().recovery_decisions() as u64,
        res.stats.faults_injected
    );
}

// ---------------------------------------------------------------------------
// Memory pressure: the governor must turn capped device memory into graceful
// degradation (residency drops, shard splits, chunked transfers, host shards)
// with bit-identical results and exactly one decision-log entry per response.
// See docs/MEMORY.md for the escalation ladder these tests pin down.
// ---------------------------------------------------------------------------

/// The partition the engine computes for `p` on the chaos platform (same
/// size model, same default K=2), so caps can be derived from the real
/// static/shard footprints.
fn engine_plan<P: GasProgram>(p: &P, layout: &GraphLayout) -> PartitionPlan {
    let plat = platform();
    let sizes = SizeModel {
        vertex_value: std::mem::size_of::<P::VertexValue>() as u64,
        gather: std::mem::size_of::<P::Gather>() as u64,
        edge_value: std::mem::size_of::<P::EdgeValue>() as u64,
        has_gather: p.has_gather(),
        has_scatter: p.has_scatter(),
    };
    plan_partition(layout, &sizes, &plat.device, &plat.pcie, 2, None).unwrap()
}

/// Device capacity granting the static buffers plus `pct`% of the planned
/// in-flight shard footprint (`K × max_shard_bytes`) — the "largest shard
/// footprint" profiles of the memory-pressure sweep.
fn cap_at(plan: &PartitionPlan, pct: u64) -> u64 {
    plan.static_bytes + plan.concurrent as u64 * plan.max_shard_bytes * pct / 100
}

/// Run `p` with an optional device-memory cap, recording decisions.
fn run_capped<P: GasProgram>(
    p: P,
    layout: &GraphLayout,
    cap: Option<u64>,
) -> (Vec<P::VertexValue>, RunStats, Recorded) {
    let mut opts = Options::optimized();
    if let Some(c) = cap {
        opts = opts.with_mem_cap(c);
    }
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(p, layout, platform(), opts)
        .with_observer(obs)
        .run()
        .unwrap();
    (out.vertex_values, out.stats, sink.recorded())
}

/// Oracle-vs-capped check for one program at one pressure profile.
fn assert_capped_bit_identical<P: GasProgram, F: Fn() -> P>(make: F, layout: &GraphLayout, pct: u64)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
{
    let name = make().name();
    let plan = engine_plan(&make(), layout);
    let (want, _, _) = run_capped(make(), layout, None);
    let (got, stats, rec) = run_capped(make(), layout, Some(cap_at(&plan, pct)));
    assert_eq!(got, want, "{name} at {pct}% shard footprint");
    // Governor responses are memory decisions, never recovery decisions:
    // the chaos invariant (one recovery decision per injected fault) must
    // hold untouched, here with zero faults.
    assert_eq!(stats.faults_injected, 0, "{name} at {pct}%");
    assert_eq!(rec.recovery_decisions(), 0, "{name} at {pct}%");
    // Exactly one decision-log entry per governor response.
    assert_eq!(
        rec.memory_decisions() as u64,
        stats.governor_decisions(),
        "{name} at {pct}%: one log entry per response"
    );
}

#[test]
fn memory_pressure_profiles_stay_bit_identical_for_all_algorithms() {
    let unweighted = small_graph();
    let weighted = GraphLayout::build(
        &gen::with_random_weights(gen::uniform(512, 4096, 3), 16.0, 9).symmetrize(),
    );
    for pct in [100u64, 50, 25, 10] {
        assert_capped_bit_identical(|| Cc, &unweighted, pct);
        assert_capped_bit_identical(|| Bfs(0), &unweighted, pct);
        assert_capped_bit_identical(|| Pr, &unweighted, pct);
        assert_capped_bit_identical(|| Sssp(0), &weighted, pct);
    }
}

#[test]
fn unconstrained_runs_make_no_governor_decisions() {
    let layout = small_graph();
    let (want, clean, rec) = run_capped(Cc, &layout, None);
    assert_eq!(clean.governor_decisions(), 0);
    assert_eq!(rec.memory_decisions(), 0);
    // A cap at full nominal capacity is indistinguishable from no cap.
    let cap = platform().device.mem_capacity;
    let (got, capped, rec) = run_capped(Cc, &layout, Some(cap));
    assert_eq!(got, want);
    assert_eq!(
        capped.governor_decisions(),
        0,
        "ample capacity, no responses"
    );
    assert_eq!(rec.memory_decisions(), 0);
    assert_eq!(
        clean.elapsed, capped.elapsed,
        "zero cost when unconstrained"
    );
}

#[test]
fn shard_splits_emit_exactly_one_decision_each() {
    let layout = small_graph();
    let plan = engine_plan(&Cc, &layout);
    // Room for the static buffers plus half of one shard slot: the
    // governor must drop to K=1 and split until every shard fits.
    let cap = plan.static_bytes + plan.max_shard_bytes / 2;
    let (want, _, _) = run_capped(Cc, &layout, None);
    let (got, stats, rec) = run_capped(Cc, &layout, Some(cap));
    assert_eq!(got, want);
    assert!(stats.shard_splits > 0, "cap must force splitting");
    let split_decisions = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::ShardSplit { .. }))
        .count() as u64;
    assert_eq!(
        split_decisions, stats.shard_splits,
        "one decision per split"
    );
    assert_eq!(
        stats.num_shards as u64,
        plan.shards.len() as u64 + stats.shard_splits,
        "every split adds exactly one shard"
    );
}

/// A hub graph whose edge mass collapses onto one vertex: the governor can
/// split the hub off into a single-vertex shard but no further, so a cap
/// below that shard's footprint must escalate past splitting.
fn hub_graph() -> GraphLayout {
    let edges: Vec<(u32, u32)> = (0..4000u32).map(|i| (i % 511 + 1, 0)).collect();
    GraphLayout::build(&EdgeList::from_edges(512, edges).symmetrize())
}

#[test]
fn unsplittable_shards_fall_back_to_chunked_transfers() {
    let layout = hub_graph();
    let plan = engine_plan(&Cc, &layout);
    // Half the largest shard's bytes is still a viable staging buffer, so
    // the hub shard (unsplittable below its single vertex) must stream
    // through the bounded staging allocation in pieces.
    let cap = plan.static_bytes + plan.max_shard_bytes / 2;
    let (want, _, _) = run_capped(Cc, &layout, None);
    let (got, stats, rec) = run_capped(Cc, &layout, Some(cap));
    assert_eq!(got, want);
    assert!(stats.chunked_shards > 0, "hub shard must be chunked");
    assert!(stats.chunked_copies > 0, "chunked copies must be counted");
    let chunk_decisions = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::ChunkedXfer { .. }))
        .count() as u64;
    assert_eq!(
        chunk_decisions, stats.chunked_shards,
        "one decision per chunked shard"
    );
    assert_eq!(rec.memory_decisions() as u64, stats.governor_decisions());
}

#[test]
fn terminal_pressure_degrades_to_host_shards() {
    let layout = hub_graph();
    let plan = engine_plan(&Cc, &layout);
    // Leave so little shard headroom that the unsplittable hub shard
    // cannot even be staged in chunks: the terminal degradation keeps the
    // shard's work on the host and the run still finishes bit-identical.
    let cap = plan.static_bytes + 3000;
    let (want, _, _) = run_capped(Cc, &layout, None);
    let (got, stats, rec) = run_capped(Cc, &layout, Some(cap));
    assert_eq!(got, want);
    assert!(stats.host_shards > 0, "hub shard must stay on the host");
    assert_eq!(rec.memory_decisions() as u64, stats.governor_decisions());
}

#[test]
fn impossible_cap_without_host_fallback_is_a_clean_alloc_error() {
    let layout = hub_graph();
    let plan = engine_plan(&Cc, &layout);
    for cap in [
        plan.static_bytes.saturating_sub(1),
        plan.static_bytes + 3000,
    ] {
        let res = GraphReduce::new(
            Cc,
            &layout,
            platform(),
            Options::optimized()
                .with_mem_cap(cap)
                .with_recovery(RecoveryPolicy::fail_fast()),
        )
        .run();
        match res {
            Err(EngineError::Alloc(_)) => {}
            Err(e) => panic!("cap {cap}: wrong error {e}"),
            Ok(_) => panic!("cap {cap}: must not fit without host fallback"),
        }
    }
}

// ---------------------------------------------------------------------------
// Durability: kill-restart resume from durable snapshots, corruption
// fallback, the clone-skip optimization, and the out-of-host-core spill
// rung. See docs/DURABILITY.md for the snapshot format and resume
// semantics these tests pin down.
// ---------------------------------------------------------------------------

use graphreduce::{CheckpointPolicy, MemShardStore, SnapshotError};

/// Fresh scratch directory (no tempfile crate in the workspace).
fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("gr-chaos-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn durable_opts(dir: &std::path::Path, every: u32) -> Options {
    Options::optimized().with_checkpoint_policy(CheckpointPolicy::durable(dir, every))
}

/// Kill `p` at iteration `kill_at` (durable snapshots every iteration),
/// then resume from the snapshot directory and return the finished run
/// plus the decision log of the resumed leg.
fn kill_then_resume<P: GasProgram + Clone>(
    p: &P,
    layout: &GraphLayout,
    kill_at: u32,
    tag: &str,
) -> (graphreduce::RunResult<P>, Recorded) {
    let dir = scratch(tag);
    let res = GraphReduce::new(
        p.clone(),
        layout,
        platform(),
        durable_opts(&dir, 1).with_fault_plan(FaultPlan::none().kill_at_iteration(kill_at)),
    )
    .run();
    match res {
        Err(EngineError::Killed { iteration }) => {
            assert_eq!(iteration, kill_at, "killed at the requested boundary")
        }
        Err(e) => panic!("kill at {kill_at}: wrong error {e}"),
        Ok(_) => panic!("kill at {kill_at}: run must not survive the kill"),
    }
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(p.clone(), layout, platform(), durable_opts(&dir, 1))
        .with_observer(obs)
        .resume(&dir)
        .unwrap();
    (out, sink.recorded())
}

/// The full kill-restart family for one program: kill at the first, a
/// middle, and the last iteration boundary; every resumed run must be
/// bit-identical to the uninterrupted oracle — values, iteration trace,
/// and state fingerprint — with exactly one restore decision logged.
fn assert_kill_restart_family<P: GasProgram + Clone>(p: P, layout: &GraphLayout, tag: &str)
where
    P::VertexValue: PartialEq + std::fmt::Debug,
{
    let oracle_dir = scratch(&format!("{tag}-oracle"));
    let oracle = GraphReduce::new(p.clone(), layout, platform(), durable_opts(&oracle_dir, 1))
        .run()
        .unwrap();
    let iters = oracle.stats.iterations;
    assert!(
        iters >= 3,
        "{tag}: graph too easy to kill mid-run ({iters})"
    );
    let fp = oracle
        .stats
        .state_fingerprint
        .expect("durable runs fingerprint state");
    for kill_at in [0, iters / 2, iters - 1] {
        let (out, rec) = kill_then_resume(&p, layout, kill_at, &format!("{tag}-k{kill_at}"));
        assert_eq!(
            out.vertex_values, oracle.vertex_values,
            "{tag} kill@{kill_at}"
        );
        assert_eq!(
            out.stats.iterations, iters,
            "{tag} kill@{kill_at}: full trace restored"
        );
        assert_eq!(
            out.stats.frontier_sizes(),
            oracle.stats.frontier_sizes(),
            "{tag} kill@{kill_at}: per-iteration trace bit-identical"
        );
        assert_eq!(
            out.stats.state_fingerprint,
            Some(fp),
            "{tag} kill@{kill_at}"
        );
        assert_eq!(out.stats.checkpoint_restores, 1, "{tag} kill@{kill_at}");
        let restores = rec
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::CheckpointRestore { .. }))
            .count() as u64;
        assert_eq!(
            restores, 1,
            "{tag} kill@{kill_at}: exactly one restore decision"
        );
        let writes = rec
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::CheckpointWrite { .. }))
            .count() as u64;
        assert_eq!(
            writes, out.stats.checkpoint_writes,
            "{tag} kill@{kill_at}: one decision per snapshot written"
        );
        assert!(
            out.stats.checkpoint_bytes_written > 0,
            "{tag} kill@{kill_at}"
        );
    }
}

#[test]
fn bfs_kill_restart_resumes_bit_identical() {
    assert_kill_restart_family(Bfs(0), &small_graph(), "bfs");
}

#[test]
fn pagerank_kill_restart_resumes_bit_identical() {
    assert_kill_restart_family(Pr, &small_graph(), "pr");
}

#[test]
fn corrupted_latest_snapshot_falls_back_to_previous_intact_one() {
    let layout = small_graph();
    let dir = scratch("corrupt");
    let oracle = GraphReduce::new(Cc, &layout, platform(), durable_opts(&dir, 1))
        .run()
        .unwrap();
    // Flip one bit in the newest snapshot: resume must silently fall back
    // to the previous intact file and still replay to the exact answer.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "grck"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "retention must keep a fallback snapshot");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(newest, &bytes).unwrap();
    let out = GraphReduce::new(Cc, &layout, platform(), durable_opts(&dir, 1))
        .resume(&dir)
        .unwrap();
    assert_eq!(out.vertex_values, oracle.vertex_values);
    assert_eq!(out.stats.state_fingerprint, oracle.stats.state_fingerprint);
    assert_eq!(out.stats.checkpoint_restores, 1);
}

#[test]
fn wrong_graph_fingerprint_fails_fast_on_resume() {
    let dir = scratch("wrong-graph");
    GraphReduce::new(Cc, &small_graph(), platform(), durable_opts(&dir, 1))
        .run()
        .unwrap();
    // Same algorithm, different graph: the snapshot must be rejected
    // before any state is trusted, not silently replayed onto the wrong
    // topology.
    let other = GraphLayout::build(&gen::uniform(512, 4096, 99).symmetrize());
    let res = GraphReduce::new(Cc, &other, platform(), durable_opts(&dir, 1)).resume(&dir);
    match res {
        Err(EngineError::Snapshot(SnapshotError::FingerprintMismatch { field, .. })) => {
            assert_eq!(field, "graph fingerprint");
        }
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("resume must reject a snapshot of a different graph"),
    }
}

#[test]
fn resume_from_empty_directory_is_a_typed_no_snapshot_error() {
    let dir = scratch("empty");
    let res = GraphReduce::new(Cc, &small_graph(), platform(), durable_opts(&dir, 1)).resume(&dir);
    match res {
        Err(EngineError::Snapshot(SnapshotError::NoSnapshot { .. })) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("resume needs a snapshot to resume from"),
    }
}

#[test]
fn durable_checkpoints_replace_the_per_iteration_clone() {
    // The rollback safety net under an armed fault plan used to be an
    // in-memory full-state clone every iteration; a durable snapshot that
    // was just written covers the same iteration, so the clone is skipped
    // and rollback restores from disk instead.
    let layout = small_graph();
    let want = baseline();
    let dir = scratch("clone-skip");
    // Start the fault window at the 5th H2D so it lands on a mid-iteration
    // shard copy (`emit_init`'s single upload replays without any
    // checkpoint) and a real state restore is forced.
    let out = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        durable_opts(&dir, 1).with_fault_plan(FaultPlan::none().fail_h2d(5, 6)),
    )
    .run()
    .unwrap();
    assert_eq!(out.vertex_values, want, "disk rollback replays exactly");
    assert!(
        out.stats.rollbacks >= 1,
        "retry budget must have been exceeded"
    );
    assert_eq!(
        out.stats.checkpoints, 0,
        "durable snapshots written every iteration make the clone redundant"
    );
    assert!(out.stats.checkpoint_bytes_written > 0);
    // Contrast: the same plan under the in-memory-only policy still pays
    // the clone (pinned by disarmed_fault_plan_adds_zero_overhead above).
}

#[test]
fn checkpoints_off_with_armed_faults_is_unrecoverable_at_rollback() {
    let layout = small_graph();
    let res = GraphReduce::new(
        Cc,
        &layout,
        platform(),
        Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::Off)
            // Window starts mid-iteration: init replays checkpoint-free,
            // but an in-iteration rollback has nothing to replay from.
            .with_fault_plan(FaultPlan::none().fail_h2d(5, 6)),
    )
    .run();
    match res {
        Err(EngineError::Unrecoverable { op }) => assert_eq!(op, "checkpoint"),
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("no checkpoint of any kind means rollback must fail"),
    }
}

#[test]
fn durable_checkpointing_leaves_results_and_timeline_untouched() {
    // Snapshot writes happen on the host side of the wall: the simulated
    // device timeline, op counts, and results must be byte-identical to a
    // run without durability.
    let layout = small_graph();
    let clean = GraphReduce::new(Cc, &layout, platform(), Options::optimized())
        .run()
        .unwrap();
    let dir = scratch("timeline");
    let durable = GraphReduce::new(Cc, &layout, platform(), durable_opts(&dir, 2))
        .run()
        .unwrap();
    assert_eq!(clean.vertex_values, durable.vertex_values);
    assert_eq!(
        clean.stats.elapsed, durable.stats.elapsed,
        "no sim-time cost"
    );
    assert_eq!(clean.stats.copy_ops, durable.stats.copy_ops);
    assert_eq!(clean.stats.kernel_launches, durable.stats.kernel_launches);
    assert!(
        durable.stats.checkpoint_writes > 0,
        "snapshots were written"
    );
    assert_eq!(clean.stats.checkpoint_writes, 0);
    assert_eq!(clean.stats.state_fingerprint, None, "zero cost when off");
}

// ---------------------------------------------------------------------------
// Out-of-host-core: with a shard store plugged in, shards that exceed host
// RAM spill to the store and stream back on demand — bit-identical to the
// unconstrained run, with exactly one decision per spill and per load.
// ---------------------------------------------------------------------------

/// Platform whose host RAM is far below the graph's host footprint, with
/// a device small enough to force sharding.
fn host_capped_platform() -> Platform {
    let mut plat = platform();
    plat.host.mem_capacity = 100_000;
    plat
}

fn assert_spill_run_bit_identical(opts: Options, tag: &str) {
    let layout = small_graph();
    let want = baseline();
    let (obs, sink) = Observer::recording();
    let out = GraphReduce::new(Cc, &layout, host_capped_platform(), opts)
        .with_observer(obs)
        .run()
        .unwrap();
    assert_eq!(
        out.vertex_values, want,
        "{tag}: spill must not change results"
    );
    assert!(
        out.stats.spilled_shards > 0,
        "{tag}: host cap must force spilling"
    );
    assert!(out.stats.spilled_bytes > 0, "{tag}");
    assert!(
        out.stats.spill_loads > 0,
        "{tag}: spilled shards must stream back"
    );
    let rec = sink.recorded();
    let spills = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::ShardSpill { .. }))
        .count() as u64;
    let loads = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::ShardLoad { .. }))
        .count() as u64;
    assert_eq!(
        spills, out.stats.spilled_shards,
        "{tag}: one decision per spill"
    );
    assert_eq!(loads, out.stats.spill_loads, "{tag}: one decision per load");
    // Stall accounting: a streamed-back shard is charged exactly one
    // spill.read per load — never one per stream-in (the old
    // double-count) and never the blanket ssd.read on top.
    let engine = rec
        .snapshots
        .iter()
        .find(|(scope, _)| scope == "engine")
        .map(|(_, snap)| snap)
        .expect("engine metrics snapshot");
    assert_eq!(
        engine.counter("engine.spill_stalls"),
        out.stats.spill_loads,
        "{tag}: one spill.read stall per load"
    );
    assert_eq!(
        engine.counter("engine.ssd_stalls"),
        0,
        "{tag}: spill-armed runs never also pay the blanket ssd.read"
    );
    // Durability decisions are a separate class: the governor invariant
    // (one memory decision per response) and the chaos invariant (one
    // recovery decision per fault) both hold untouched.
    assert_eq!(
        rec.memory_decisions() as u64,
        out.stats.governor_decisions(),
        "{tag}"
    );
    assert_eq!(rec.recovery_decisions(), 0, "{tag}");
}

#[test]
fn host_capped_run_spills_through_memory_store_bit_identical() {
    assert_spill_run_bit_identical(
        Options::optimized().with_shard_store(MemShardStore::new()),
        "mem-store",
    );
}

#[test]
fn host_capped_run_spills_through_file_store_bit_identical() {
    let dir = scratch("spill");
    assert_spill_run_bit_identical(Options::optimized().with_spill_dir(&dir), "file-store");
    // The spill rung really hit disk: framed shard blobs exist.
    let blobs = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "grsh"))
        .count();
    assert!(blobs > 0, "file store must leave shard blobs on disk");
}

#[test]
fn all_devices_lost_surfaces_device_lost() {
    let l = multi_layout();
    let plat = Platform::paper_node_scaled(1 << 14);
    let loss = FaultPlan::profile("device-loss", 0).unwrap();
    let res = MultiGraphReduce::new(Cc, &l, plat, 2)
        .with_fault_plan(0, loss.clone())
        .with_fault_plan(1, loss)
        .run();
    match res {
        Err(EngineError::DeviceLost) => {}
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("run must not survive losing every device"),
    }
}

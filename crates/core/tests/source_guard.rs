//! Source-size guard: the engine monolith was decomposed into layered
//! modules under `src/exec/`, and no file in this crate may regrow past
//! the cap. If this test fails, split the offending module instead of
//! raising the limit.

use std::fs;
use std::path::{Path, PathBuf};

const MAX_LINES: usize = 1_200;

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

fn assert_under_cap(files: &[PathBuf]) {
    let mut oversized: Vec<String> = files
        .iter()
        .filter_map(|f| {
            let lines = fs::read_to_string(f)
                .expect("readable source")
                .lines()
                .count();
            (lines > MAX_LINES).then(|| format!("{} ({lines} lines)", f.display()))
        })
        .collect();
    oversized.sort();
    assert!(
        oversized.is_empty(),
        "source files exceed the {MAX_LINES}-line cap; split them into \
         focused modules (see docs/ARCHITECTURE.md): {oversized:?}"
    );
}

#[test]
fn no_core_source_file_exceeds_line_cap() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    rust_sources(&src, &mut files);
    assert!(
        files.len() >= 10,
        "expected the decomposed module tree, found {} files",
        files.len()
    );
    assert_under_cap(&files);
}

#[test]
fn no_serve_source_file_exceeds_line_cap() {
    // The serving subsystem obeys the same cap from day one.
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .join("serve")
        .join("src");
    let mut files = Vec::new();
    rust_sources(&src, &mut files);
    assert!(
        files.len() >= 3,
        "expected the serve module tree (lib/admission/query/server), found {} files",
        files.len()
    );
    assert_under_cap(&files);
}

//! Execution statistics: everything the paper's evaluation section reports.

use gr_observe::WallSummary;
use gr_sim::SimDuration;

/// Per-iteration record (drives Figures 3, 16, 17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationStats {
    /// Active vertices entering the iteration (the frontier size).
    pub frontier_size: u64,
    /// In-edges gathered.
    pub gathered_edges: u64,
    /// Vertices whose apply reported a change.
    pub changed: u64,
    /// Vertices newly activated for the next iteration.
    pub activated: u64,
    /// Shards processed in the gather/apply stage.
    pub shards_processed: u32,
    /// Shards skipped by dynamic frontier management.
    pub shards_skipped: u32,
}

/// Whole-run statistics.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Program name.
    pub algorithm: &'static str,
    /// Iterations executed (until frontier exhaustion or the cap).
    pub iterations: u32,
    /// Total virtual wall time, including init and final transfers.
    pub elapsed: SimDuration,
    /// Copy-engine busy time (the paper's "memcpy time", Figure 15).
    pub memcpy_time: SimDuration,
    /// Kernel-slot busy time.
    pub kernel_time: SimDuration,
    /// Bytes moved host-to-device.
    pub bytes_h2d: u64,
    /// Bytes moved device-to-host.
    pub bytes_d2h: u64,
    /// Copy operations issued.
    pub copy_ops: u64,
    /// Kernel launches issued.
    pub kernel_launches: u64,
    /// Shard copy cycles avoided by frontier management.
    pub skipped_shard_copies: u64,
    /// Kernel launches avoided by frontier management.
    pub skipped_kernel_launches: u64,
    /// Shard count `P`.
    pub num_shards: usize,
    /// Concurrency `K`.
    pub concurrent_shards: u32,
    /// Whether the run executed fully device-resident.
    pub all_resident: bool,
    /// Injected device faults encountered (0 without a fault plan).
    pub faults_injected: u64,
    /// Per-op retries the recovery policy issued (backoff charged as time).
    pub recovered_retries: u64,
    /// Iteration rollback-and-replays after exhausted retries.
    pub rollbacks: u64,
    /// Full-state checkpoints taken (0 whenever no fault plan is armed —
    /// the disarmed path must not pay the clone).
    pub checkpoints: u64,
    /// Whether the run finished on the host CPU after permanent device loss.
    pub host_fallback: bool,
    /// Memory-governor pressure responses (host-run, residency drop,
    /// concurrency cut, per-shard host fallback). 0 when unconstrained.
    pub mem_pressure_events: u64,
    /// Adaptive shard splits the governor performed at plan time.
    pub shard_splits: u64,
    /// Shards whose transfers stream through the bounded staging slot.
    pub chunked_shards: u64,
    /// Individual chunked copy operations issued over the run.
    pub chunked_copies: u64,
    /// Shards degraded to host-CPU execution by the governor.
    pub host_shards: u64,
    /// Device-memory high-water mark (bytes) over the run.
    pub mem_peak: u64,
    /// Low-water mark of free device bytes (headroom) over the run.
    pub mem_min_headroom: u64,
    /// Durable snapshots written to disk (0 unless
    /// [`CheckpointPolicy::Durable`](crate::CheckpointPolicy) is armed).
    pub checkpoint_writes: u64,
    /// Total bytes of durable snapshots written (on-disk bytes, after
    /// any snapshot compression).
    pub checkpoint_bytes_written: u64,
    /// On-disk bytes of *full* snapshots (all of
    /// [`RunStats::checkpoint_bytes_written`] unless delta mode is on).
    pub checkpoint_full_bytes: u64,
    /// Delta snapshots written (0 unless
    /// [`CheckpointPolicy::DurableDelta`](crate::CheckpointPolicy) is armed).
    pub checkpoint_delta_writes: u64,
    /// On-disk bytes of delta snapshots.
    pub checkpoint_delta_bytes: u64,
    /// Pre-compression encoded snapshot bytes (equals
    /// [`RunStats::checkpoint_bytes_written`] without a snapshot codec).
    pub checkpoint_raw_bytes: u64,
    /// Durable snapshot restores (1 on a resumed run, else 0).
    pub checkpoint_restores: u64,
    /// Checkpoint writes skipped after storage-retry exhaustion (the
    /// run continues, covered by the previous snapshot).
    pub checkpoints_skipped: u64,
    /// Storage-op retries after injected or real I/O faults on the
    /// spill/checkpoint path (0 without I/O faults).
    pub storage_retries: u64,
    /// Spill reads that exhausted retries and re-streamed the shard
    /// from the source graph instead.
    pub spill_restreams: u64,
    /// Shards evicted to the configured [`ShardStore`](crate::ShardStore)
    /// (out-of-host-core spill). 0 without a store.
    pub spilled_shards: u64,
    /// Total payload bytes spilled to the store.
    pub spilled_bytes: u64,
    /// Spilled-shard payloads read back (first touch per shard).
    pub spill_loads: u64,
    /// Total payload bytes read back from the store.
    pub spill_load_bytes: u64,
    /// Codec name when shard compression was armed
    /// ([`Options::with_shard_compression`](crate::Options)), else `None`.
    pub compression_codec: Option<&'static str>,
    /// Total compressed buffer-set bytes across shards (what actually
    /// ships per full sweep). 0 without compression.
    pub compressed_bytes: u64,
    /// What the raw buffer sets would have shipped instead — the
    /// numerator of [`RunStats::compression_ratio`].
    pub compressed_raw_bytes: u64,
    /// On-device decode kernels launched (one per topology stream-in).
    pub decompress_launches: u64,
    /// Order-independent FNV-1a hash of the final vertex values, for
    /// cheap bit-identity comparison across kill-restart and spill runs.
    /// `None` unless durability or spill was armed.
    pub state_fingerprint: Option<u64>,
    /// Real host wall-clock attribution (`None` unless a
    /// [`WallProfiler`](gr_observe::WallProfiler) was armed via
    /// `GraphReduce::with_wall_profiler` — the simulated numbers above
    /// are unaffected either way).
    pub wall: Option<WallSummary>,
    /// Per-iteration trace.
    pub per_iteration: Vec<IterationStats>,
}

impl RunStats {
    /// Frontier size per iteration (Figure 3 / 16 series).
    pub fn frontier_sizes(&self) -> Vec<u64> {
        self.per_iteration.iter().map(|i| i.frontier_size).collect()
    }

    /// Peak frontier size over the run.
    pub fn max_frontier(&self) -> u64 {
        self.per_iteration
            .iter()
            .map(|i| i.frontier_size)
            .max()
            .unwrap_or(0)
    }

    /// Figure 17's metric: percentage of iterations whose frontier is below
    /// 50% of the lifetime maximum.
    pub fn pct_iterations_below_half_max(&self) -> f64 {
        if self.per_iteration.is_empty() {
            return 0.0;
        }
        let half = self.max_frontier() as f64 / 2.0;
        let below = self
            .per_iteration
            .iter()
            .filter(|i| (i.frontier_size as f64) < half)
            .count();
        100.0 * below as f64 / self.per_iteration.len() as f64
    }

    /// Total memory-governor decisions over the run (pressure responses +
    /// shard splits + chunked shards). 0 whenever capacity was ample.
    pub fn governor_decisions(&self) -> u64 {
        self.mem_pressure_events + self.shard_splits + self.chunked_shards
    }

    /// Raw-over-compressed shard byte ratio (e.g. 4.0 = shards shrank
    /// 4x on the wire). `None` when compression was off or shipped
    /// nothing.
    pub fn compression_ratio(&self) -> Option<f64> {
        (self.compression_codec.is_some() && self.compressed_bytes > 0)
            .then(|| self.compressed_raw_bytes as f64 / self.compressed_bytes as f64)
    }

    /// Fraction of wall time the copy engines were busy (the paper reports
    /// ~95% for unoptimized out-of-memory runs).
    pub fn memcpy_share(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.memcpy_time.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for RunStats {
    /// Multi-line human-readable run report (used by examples and the
    /// `run` CLI).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} iterations in {} ({} shards, K={}, {})",
            self.algorithm,
            self.iterations,
            self.elapsed,
            self.num_shards,
            self.concurrent_shards,
            if self.all_resident {
                "device-resident"
            } else {
                "streamed out-of-core"
            }
        )?;
        writeln!(
            f,
            "  memcpy busy {} ({:.1}% of run) | kernels busy {}",
            self.memcpy_time,
            100.0 * self.memcpy_share(),
            self.kernel_time
        )?;
        writeln!(
            f,
            "  PCIe: {:.2} MB in / {:.2} MB out over {} copies; {} kernel launches",
            self.bytes_h2d as f64 / 1e6,
            self.bytes_d2h as f64 / 1e6,
            self.copy_ops,
            self.kernel_launches
        )?;
        write!(
            f,
            "  frontier: peak {} | {:.0}% of iterations below half-peak | skipped {} copies, {} launches",
            self.max_frontier(),
            self.pct_iterations_below_half_max(),
            self.skipped_shard_copies,
            self.skipped_kernel_launches
        )?;
        // Fault-free output stays byte-identical: the recovery line only
        // appears when something was actually injected or recovered.
        if self.faults_injected > 0 || self.host_fallback {
            write!(
                f,
                "\n  faults: {} injected | {} retries, {} rollbacks{}",
                self.faults_injected,
                self.recovered_retries,
                self.rollbacks,
                if self.host_fallback {
                    " | finished on host CPU"
                } else {
                    ""
                }
            )?;
        }
        // Same rule for the governor: unconstrained output is untouched.
        if self.governor_decisions() > 0 {
            write!(
                f,
                "\n  memory: {} pressure responses | {} shard splits, {} chunked shards \
                 ({} chunked copies), {} host shards | peak {} B, min headroom {} B",
                self.mem_pressure_events,
                self.shard_splits,
                self.chunked_shards,
                self.chunked_copies,
                self.host_shards,
                self.mem_peak,
                self.mem_min_headroom
            )?;
        }
        // Durability is opt-in twice over: the line appears only when a
        // durable policy, a resume, or a spill store actually did work.
        if self.checkpoint_writes > 0
            || self.checkpoint_restores > 0
            || self.spilled_shards > 0
            || self.checkpoints_skipped > 0
        {
            write!(
                f,
                "\n  durability: {} snapshots ({:.2} MB) written, {} restored | \
                 {} shards spilled ({:.2} MB), {} loaded back ({:.2} MB)",
                self.checkpoint_writes,
                self.checkpoint_bytes_written as f64 / 1e6,
                self.checkpoint_restores,
                self.spilled_shards,
                self.spilled_bytes as f64 / 1e6,
                self.spill_loads,
                self.spill_load_bytes as f64 / 1e6
            )?;
            // Delta mode adds the full-vs-delta byte split; full-only
            // durable runs keep the exact line they always printed.
            if self.checkpoint_delta_writes > 0 {
                write!(
                    f,
                    " | {:.2} MB full + {} deltas ({:.2} MB)",
                    self.checkpoint_full_bytes as f64 / 1e6,
                    self.checkpoint_delta_writes,
                    self.checkpoint_delta_bytes as f64 / 1e6
                )?;
            }
            if let Some(fp) = self.state_fingerprint {
                write!(f, "\n  state fingerprint: {fp:#018x}")?;
            }
        }
        // Storage-fault handling is its own conditional line: fault-free
        // durable runs stay byte-identical.
        if self.storage_retries > 0 || self.checkpoints_skipped > 0 || self.spill_restreams > 0 {
            write!(
                f,
                "\n  storage faults: {} retries | {} checkpoints skipped, {} spill re-streams",
                self.storage_retries, self.checkpoints_skipped, self.spill_restreams
            )?;
        }
        // Compression is opt-in: uncompressed output stays byte-identical.
        if let Some(codec) = self.compression_codec {
            write!(
                f,
                "\n  compression: {codec} | shards {:.2} MB -> {:.2} MB{} | {} decompress launches",
                self.compressed_raw_bytes as f64 / 1e6,
                self.compressed_bytes as f64 / 1e6,
                match self.compression_ratio() {
                    Some(r) => format!(" ({r:.2}x)"),
                    None => String::new(),
                },
                self.decompress_launches
            )?;
        }
        // And for the wall profile: runs without an armed profiler print
        // exactly what they always printed.
        if let Some(w) = &self.wall {
            write!(f, "\n  host wall: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(frontier: u64) -> IterationStats {
        IterationStats {
            frontier_size: frontier,
            ..Default::default()
        }
    }

    #[test]
    fn frontier_metrics() {
        let s = RunStats {
            per_iteration: vec![iter(1), iter(10), iter(100), iter(40), iter(4)],
            ..Default::default()
        };
        assert_eq!(s.max_frontier(), 100);
        assert_eq!(s.frontier_sizes(), vec![1, 10, 100, 40, 4]);
        // Below 50 (half of 100): 1, 10, 40, 4 -> 4 of 5.
        assert!((s.pct_iterations_below_half_max() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.max_frontier(), 0);
        assert_eq!(s.pct_iterations_below_half_max(), 0.0);
        assert_eq!(s.memcpy_share(), 0.0);
    }

    #[test]
    fn fault_line_only_appears_when_faults_were_injected() {
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("faults:"), "{clean}");
        let faulted = RunStats {
            faults_injected: 3,
            recovered_retries: 2,
            rollbacks: 1,
            ..Default::default()
        }
        .to_string();
        assert!(faulted.contains("faults: 3 injected | 2 retries, 1 rollbacks"));
        assert!(!faulted.contains("host CPU"));
        let fell_back = RunStats {
            faults_injected: 1,
            host_fallback: true,
            ..Default::default()
        }
        .to_string();
        assert!(fell_back.contains("finished on host CPU"));
    }

    #[test]
    fn memory_line_only_appears_under_governor_pressure() {
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("memory:"), "{clean}");
        let governed = RunStats {
            mem_pressure_events: 1,
            shard_splits: 2,
            chunked_shards: 1,
            chunked_copies: 12,
            mem_peak: 4096,
            mem_min_headroom: 128,
            ..Default::default()
        }
        .to_string();
        assert!(governed.contains("memory: 1 pressure responses"));
        assert!(governed.contains("2 shard splits, 1 chunked shards"));
        assert!(governed.contains("peak 4096 B, min headroom 128 B"));
    }

    #[test]
    fn durability_line_only_appears_when_durability_did_work() {
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("durability:"), "{clean}");
        let durable = RunStats {
            checkpoint_writes: 3,
            checkpoint_bytes_written: 2_000_000,
            checkpoint_restores: 1,
            spilled_shards: 4,
            spilled_bytes: 8_000_000,
            spill_loads: 2,
            spill_load_bytes: 4_000_000,
            state_fingerprint: Some(0xdead_beef),
            ..Default::default()
        }
        .to_string();
        assert!(
            durable.contains("durability: 3 snapshots (2.00 MB) written, 1 restored"),
            "{durable}"
        );
        assert!(durable.contains("4 shards spilled (8.00 MB), 2 loaded back (4.00 MB)"));
        assert!(durable.contains("state fingerprint: 0x00000000deadbeef"));
        assert!(!durable.contains("deltas"), "full-only line is unchanged");
        assert!(!durable.contains("storage faults:"), "{durable}");
    }

    #[test]
    fn delta_split_and_storage_fault_lines_are_conditional() {
        let delta = RunStats {
            checkpoint_writes: 5,
            checkpoint_bytes_written: 3_000_000,
            checkpoint_full_bytes: 2_000_000,
            checkpoint_delta_writes: 3,
            checkpoint_delta_bytes: 1_000_000,
            ..Default::default()
        }
        .to_string();
        assert!(
            delta.contains("2.00 MB full + 3 deltas (1.00 MB)"),
            "{delta}"
        );
        let faulted = RunStats {
            checkpoint_writes: 2,
            storage_retries: 4,
            checkpoints_skipped: 1,
            spill_restreams: 1,
            ..Default::default()
        }
        .to_string();
        assert!(
            faulted
                .contains("storage faults: 4 retries | 1 checkpoints skipped, 1 spill re-streams"),
            "{faulted}"
        );
        let skipped_only = RunStats {
            checkpoints_skipped: 1,
            ..Default::default()
        }
        .to_string();
        assert!(
            skipped_only.contains("durability: 0 snapshots"),
            "skipped checkpoints surface the durability line: {skipped_only}"
        );
    }

    #[test]
    fn compression_line_only_appears_when_compression_was_armed() {
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("compression:"), "{clean}");
        assert_eq!(RunStats::default().compression_ratio(), None);
        let compressed = RunStats {
            compression_codec: Some("zeta3"),
            compressed_raw_bytes: 12_000_000,
            compressed_bytes: 3_000_000,
            decompress_launches: 16,
            ..Default::default()
        };
        assert!((compressed.compression_ratio().unwrap() - 4.0).abs() < 1e-9);
        let line = compressed.to_string();
        assert!(
            line.contains("compression: zeta3 | shards 12.00 MB -> 3.00 MB (4.00x)"),
            "{line}"
        );
        assert!(line.contains("16 decompress launches"));
    }

    #[test]
    fn wall_line_only_appears_when_a_profiler_was_armed() {
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("host wall:"), "{clean}");
        let profiled = RunStats {
            wall: Some(WallSummary {
                total_ns: 2_500_000,
                kernel_ns: 2_000_000,
                phases: vec![("gather", 1_500_000), ("apply", 500_000), ("scatter", 0)],
                threads: 4,
                imbalance: 1.25,
            }),
            ..Default::default()
        }
        .to_string();
        assert!(
            profiled.contains("host wall: 2.500 ms total (2.000 ms in kernels)"),
            "{profiled}"
        );
        assert!(profiled.contains("4 threads, imbalance 1.25"));
        assert!(profiled.contains("gather 1.500 ms"));
        assert!(profiled.contains("apply 0.500 ms"));
        assert!(!profiled.contains("scatter"), "zero phases stay silent");
    }

    #[test]
    fn memcpy_share() {
        let s = RunStats {
            elapsed: SimDuration::from_millis(100),
            memcpy_time: SimDuration::from_millis(95),
            ..Default::default()
        };
        assert!((s.memcpy_share() - 0.95).abs() < 1e-9);
    }
}

//! Build-once graph sessions and per-query executors.
//!
//! Everything whose lifetime is *the graph* lives in [`GraphSession`]:
//! the [`GraphLayout`] borrow, the platform, the session [`Options`]
//! (partitioning, compression, spill/store wiring, streaming mode), the
//! gap-coded [`ShardCompression`] topology (built exactly once, shared by
//! every query), and a partition-plan cache keyed by the program's
//! [`SizeModel`] — `plan_partition_with` is a pure function of
//! `(layout, sizes, device, session options)`, so two queries with the
//! same byte model reuse one plan.
//!
//! Everything whose lifetime is *one query* lives in [`Query`]: the
//! algorithm program borrow, warm/restored host state, the observer and
//! wall profiler, and the query-scoped policy knobs (fault plan, recovery,
//! checkpoint policy, host kernels, memory cap). The governed
//! [`ExecPlan`](crate::exec::plan::ExecPlan) stays per-query on purpose:
//! the governor ladder emits its decisions and metrics into the query's
//! observer lane, which keeps decision logs and [`crate::RunStats`] bit-identical
//! to the pre-session engine (see `docs/SERVING.md`).
//!
//! [`GraphReduce`](crate::GraphReduce) is a thin compatibility facade over
//! `GraphSession::new(..).query(..)`; the serving layer (`gr-serve`)
//! multiplexes many concurrent queries over one session.

use std::sync::{Arc, Mutex};

use gr_graph::GraphLayout;
use gr_observe::{Observer, WallProfiler};
use gr_sim::{FaultPlan, Platform};

use crate::api::GasProgram;
use crate::engine::RunResult;
use crate::exec::compress::ShardCompression;
use crate::exec::driver::Runner;
use crate::options::{HostKernels, Options};
use crate::recovery::{EngineError, RecoveryPolicy};
use crate::sizes::{PartitionPlan, PlanError, SizeModel};
use crate::snapshot::CheckpointPolicy;

/// Warm-start state for incremental (dynamic-graph) processing — the
/// paper's third future-work item. After mutating a graph (e.g. appending
/// edges and rebuilding the [`GraphLayout`]), a previous run's vertex
/// values can be carried over and only the vertices a mutation touched are
/// re-activated; monotone algorithms (CC, SSSP, BFS levels with care)
/// then converge in a handful of incremental iterations instead of a full
/// re-run. Mutable edge state restarts from `Default` (canonical edge ids
/// change when the layout is rebuilt).
///
/// A warm start is just a query against an existing session: build the
/// session once, then [`Query::warm`] seeds the follow-up query.
pub struct WarmStart<P: GasProgram> {
    /// Vertex values from the previous run; padded with `init_vertex` for
    /// vertices the mutation added.
    pub vertex_values: Vec<P::VertexValue>,
    /// Vertices to seed the frontier with (typically the endpoints of
    /// inserted/removed edges).
    pub frontier: Vec<gr_graph::VertexId>,
}

/// Plan-cache key: the byte model plus the planner inputs that can differ
/// between the single-device path (session options) and the multi-GPU
/// facade (fixed `K = 2`, default partition logic).
type PlanKey = (SizeModel, u32, Option<usize>, bool);

/// Build-once, query-many handle to one graph on one platform.
///
/// Construction pays the graph-lifetime costs up front — notably the
/// gap-coded compressed topology when `opts.shard_compression` is armed —
/// and every subsequent [`Query`] borrows the session instead of
/// rebuilding them. Sessions are `Sync`: the plan cache is behind a mutex,
/// everything else is read-only after construction.
pub struct GraphSession<'g> {
    layout: &'g GraphLayout,
    platform: Platform,
    opts: Options,
    comp: Option<Arc<ShardCompression>>,
    plans: Mutex<Vec<(PlanKey, PartitionPlan)>>,
}

impl<'g> GraphSession<'g> {
    /// Bind a graph to a platform under session-lifetime `opts`.
    pub fn new(layout: &'g GraphLayout, platform: Platform, opts: Options) -> Self {
        // Graph-lifetime state: the compressed topology is a pure function
        // of (layout, codec) — build it once here instead of per run.
        let comp = opts
            .shard_compression
            .map(|codec| Arc::new(ShardCompression::new(layout, codec)));
        GraphSession {
            layout,
            platform,
            opts,
            comp,
            plans: Mutex::new(Vec::new()),
        }
    }

    /// The graph this session serves.
    pub fn layout(&self) -> &'g GraphLayout {
        self.layout
    }

    /// The platform every query runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The session-lifetime options (graph/partitioning/compression knobs).
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The shared compressed topology, if compression is armed.
    pub(crate) fn compression(&self) -> Option<Arc<ShardCompression>> {
        self.comp.clone()
    }

    /// Number of distinct partition plans materialized so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// The session's partition plan for a program byte model, computed on
    /// first use and cached: `plan_partition_with` is pure and every input
    /// besides `sizes` is session-constant.
    pub fn partition_plan(&self, sizes: &SizeModel) -> Result<PartitionPlan, PlanError> {
        self.plan_cached(
            sizes,
            self.opts.concurrent_shards,
            self.opts.num_shards,
            false,
        )
    }

    /// The multi-GPU orchestrator's plan shape: per-device concurrency 2,
    /// organic shard count, default partition logic (what
    /// [`crate::multi::MultiGraphReduce`] has always planned with).
    pub(crate) fn multi_partition_plan(
        &self,
        sizes: &SizeModel,
    ) -> Result<PartitionPlan, PlanError> {
        self.plan_cached(sizes, 2, None, true)
    }

    fn plan_cached(
        &self,
        sizes: &SizeModel,
        requested_k: u32,
        override_p: Option<usize>,
        default_logic: bool,
    ) -> Result<PartitionPlan, PlanError> {
        let key = (*sizes, requested_k, override_p, default_logic);
        if let Some((_, plan)) = self.plans.lock().unwrap().iter().find(|(k, _)| *k == key) {
            return Ok(plan.clone());
        }
        let plan = if default_logic {
            crate::sizes::plan_partition(
                self.layout,
                sizes,
                &self.platform.device,
                &self.platform.pcie,
                requested_k,
                override_p,
            )?
        } else {
            crate::sizes::plan_partition_with(
                self.layout,
                sizes,
                &self.platform.device,
                &self.platform.pcie,
                requested_k,
                override_p,
                &*self.opts.partition_logic,
            )?
        };
        self.plans.lock().unwrap().push((key, plan.clone()));
        Ok(plan)
    }

    /// Start a query for `program` against this session. The returned
    /// builder carries the query-lifetime state; [`Query::run`] executes.
    pub fn query<'q, P: GasProgram>(&'q self, program: &'q P) -> Query<'q, 'g, P> {
        Query {
            session: self,
            program,
            opts: self.opts.clone(),
            observer: Observer::disabled(),
            wall: WallProfiler::disarmed(),
            warm: None,
            lane: None,
        }
    }
}

/// One query's execution builder: algorithm program, warm/resume state,
/// observability hooks, and query-scoped policy overrides, borrowing the
/// graph-lifetime state from a [`GraphSession`].
pub struct Query<'q, 'g, P: GasProgram> {
    session: &'q GraphSession<'g>,
    program: &'q P,
    opts: Options,
    observer: Observer,
    wall: WallProfiler,
    warm: Option<WarmStart<P>>,
    lane: Option<String>,
}

impl<'q, 'g, P: GasProgram> Query<'q, 'g, P> {
    /// Attach a [`gr_observe::Observer`] for this query's spans, decisions
    /// and metric snapshots.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Attach a wall-clock profiler (armed or disarmed) for this query.
    pub fn with_wall_profiler(mut self, wall: WallProfiler) -> Self {
        self.wall = wall;
        self
    }

    /// Seed the query from a previous run's vertex values (incremental
    /// processing over a mutated graph) — see [`WarmStart`].
    pub fn warm(mut self, warm: WarmStart<P>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Prefix this query's device-op observability lanes (e.g. `"q3/"`) so
    /// concurrent queries over one session demultiplex in the decision/span
    /// log — the serving layer's per-query lane.
    pub fn with_lane(mut self, lane: impl Into<String>) -> Self {
        self.lane = Some(lane.into());
        self
    }

    /// Query-scoped fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.opts.fault_plan = plan;
        self
    }

    /// Query-scoped recovery policy.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.opts.recovery = policy;
        self
    }

    /// Query-scoped checkpoint policy.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.opts.checkpoint_policy = policy;
        self
    }

    /// Query-scoped host-kernel selection.
    pub fn with_host_kernels(mut self, kernels: HostKernels) -> Self {
        self.opts.host_kernels = kernels;
        self
    }

    /// Query-scoped device-memory cap (exercises the runtime governor).
    pub fn with_mem_cap(mut self, bytes: u64) -> Self {
        self.opts.mem_cap = Some(bytes);
        self
    }

    /// Execute to convergence; returns final state and statistics.
    pub fn run(self) -> Result<RunResult<P>, EngineError> {
        self.run_inner(None)
    }

    /// Resume a killed or interrupted run from the newest intact durable
    /// snapshot in `dir` — same contract as
    /// [`GraphReduce::resume`](crate::GraphReduce::resume).
    pub fn resume(self, dir: impl AsRef<std::path::Path>) -> Result<RunResult<P>, EngineError> {
        let fp = crate::snapshot::fingerprint_for(self.program, self.session.layout);
        let restored = crate::snapshot_delta::load_newest::<P>(dir.as_ref(), &fp)?;
        self.run_inner(Some(restored))
    }

    fn run_inner(
        self,
        restored: Option<crate::snapshot_delta::RestoredFromDisk<P>>,
    ) -> Result<RunResult<P>, EngineError> {
        let sizes = SizeModel::for_program(self.program);
        let plan = self.session.partition_plan(&sizes)?;
        Runner::new(
            self.program,
            self.session.layout,
            &self.session.platform,
            &self.opts,
            sizes,
            plan,
            self.warm,
            restored,
            self.observer,
            self.wall,
            self.session.compression(),
            self.lane,
        )?
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprog::{Bfs, Cc};
    use gr_graph::gen;

    fn small_graph() -> GraphLayout {
        GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
    }

    #[test]
    fn session_queries_match_facade_runs() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(16384);
        let session = GraphSession::new(&layout, plat.clone(), Options::optimized());
        let via_session = session.query(&Cc).run().unwrap();
        let via_facade = crate::GraphReduce::new(Cc, &layout, plat, Options::optimized())
            .run()
            .unwrap();
        assert_eq!(via_session.vertex_values, via_facade.vertex_values);
        assert_eq!(
            via_session.stats.to_string(),
            via_facade.stats.to_string(),
            "session and facade runs must be indistinguishable"
        );
    }

    #[test]
    fn plan_cache_is_shared_across_same_shape_queries() {
        let layout = small_graph();
        let session = GraphSession::new(
            &layout,
            Platform::paper_node_scaled(16384),
            Options::optimized(),
        );
        let a = session.query(&Bfs(0)).run().unwrap();
        assert_eq!(session.cached_plans(), 1);
        let b = session.query(&Bfs(0)).run().unwrap();
        // Same byte model: one plan serves both queries.
        assert_eq!(session.cached_plans(), 1);
        assert_eq!(a.vertex_values, b.vertex_values);
        // A different byte model (CC gathers) plans separately.
        session.query(&Cc).run().unwrap();
        assert_eq!(session.cached_plans(), 2);
    }

    #[test]
    fn queries_with_distinct_sources_share_one_session() {
        let layout = small_graph();
        let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
        for src in [0u32, 17, 400] {
            let got = session.query(&Bfs(src)).run().unwrap();
            let want = crate::GraphReduce::new(
                Bfs(src),
                &layout,
                Platform::paper_node(),
                Options::optimized(),
            )
            .run()
            .unwrap();
            assert_eq!(got.vertex_values, want.vertex_values, "source {src}");
        }
        assert_eq!(session.cached_plans(), 1);
    }

    #[test]
    fn query_scoped_mem_cap_governs_without_touching_session_plan() {
        let layout = small_graph();
        let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
        let free = session.query(&Cc).run().unwrap();
        let capped = session.query(&Cc).with_mem_cap(96 * 1024).run().unwrap();
        assert_eq!(free.vertex_values, capped.vertex_values);
        assert!(
            capped.stats.governor_decisions() > 0,
            "cap must engage the governor"
        );
        // The optimistic partition plan is shared; only the governed
        // per-query exec plan differs.
        assert_eq!(session.cached_plans(), 1);
    }
}

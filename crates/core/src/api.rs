//! The GraphReduce user interface (Section 4.1, Figure 6).
//!
//! Programmers define their graph state data types and up to four device
//! functions — `gatherMap`, `gatherReduce`, `apply`, `scatter` — and the
//! framework generates the parallel out-of-core execution. Phases a program
//! does not define are *eliminated*: the runtime drops their kernels **and
//! the data movement that would feed them** (Section 5.3); e.g. a program
//! with no gather never pays for in-edge copies, and a program with no
//! scatter never copies edge values back.
//!
//! The trait below is the Rust rendering of the paper's `UserInfoTuple`
//! `<gather(), apply(), scatter(), VertexDataType, EdgeDataType>`.

use gr_graph::VertexId;

use crate::snapshot::StateBytes;

/// How the computation frontier is seeded (the paper's Initialization
/// stage: "initializing vertex/edge values and a starting computation
/// frontier").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitialFrontier {
    /// All vertices start active (PageRank, Connected Components).
    All,
    /// A single source vertex starts active (BFS, SSSP).
    Single(VertexId),
}

/// A Gather-Apply-Scatter program.
///
/// All methods take `&self` and must be pure with respect to the program
/// (the engine invokes them from parallel host threads standing in for GPU
/// lanes).
pub trait GasProgram: Sync {
    /// Per-vertex mutable state (`VertexDataType`). The [`StateBytes`]
    /// bound gives every value type a fixed little-endian byte layout so
    /// durable checkpoints restore bit-identically; derive it for custom
    /// structs with [`impl_state_bytes!`](crate::impl_state_bytes).
    type VertexValue: Copy + Send + Sync + StateBytes;
    /// Per-edge mutable state (`EdgeDataType`). Use `()` when edges carry
    /// no mutable state — static weights are passed separately.
    type EdgeValue: Copy + Send + Sync + Default + StateBytes;
    /// The gather accumulator produced by `gather_map` and folded by
    /// `gather_reduce`.
    type Gather: Copy + Send + Sync + StateBytes;

    /// Human-readable program name (traces, experiment tables).
    fn name(&self) -> &'static str;

    /// Initial value of vertex `v` (receives the vertex's out-degree, which
    /// PageRank-style programs fold into their state).
    fn init_vertex(&self, v: VertexId, out_degree: u32) -> Self::VertexValue;

    /// Initial frontier.
    fn initial_frontier(&self) -> InitialFrontier;

    /// Identity element of [`GasProgram::gather_reduce`]; seeds each
    /// vertex's accumulator.
    fn gather_identity(&self) -> Self::Gather;

    /// `G(u, v, e)` — evaluated per in-edge of an active vertex. `dst` is
    /// the gathering vertex's value, `src` the in-neighbor's, `edge` the
    /// mutable edge state and `weight` the static edge weight.
    ///
    /// Only called when [`GasProgram::has_gather`] is true.
    fn gather_map(
        &self,
        dst: &Self::VertexValue,
        src: &Self::VertexValue,
        edge: &Self::EdgeValue,
        weight: f32,
    ) -> Self::Gather;

    /// `⊎` — fold two gather accumulators. Must be associative and
    /// commutative (the reduction order over in-edges is unspecified, as on
    /// real hardware).
    fn gather_reduce(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// `U(v, R)` — update an active vertex from the reduced gather result;
    /// returns whether the vertex *changed* (changed vertices activate
    /// their one-hop out-neighborhood for the next iteration).
    /// `iteration` is the 0-based iteration number (BFS marks tree depth
    /// with it, as in Section 5.3).
    fn apply(&self, v: &mut Self::VertexValue, r: Self::Gather, iteration: u32) -> bool;

    /// `S(v', e)` — update the out-edge state of a changed vertex. `src` is
    /// the (already applied) vertex value, `dst` the edge's target value.
    ///
    /// Only called when [`GasProgram::has_scatter`] is true.
    fn scatter(&self, src: &Self::VertexValue, dst: &Self::VertexValue, edge: &mut Self::EdgeValue);

    /// Whether the program defines the Gather phase. Programs without it
    /// (e.g. BFS) never pay in-edge data movement (phase elimination).
    fn has_gather(&self) -> bool {
        true
    }

    /// Whether the program defines the Scatter phase (mutable edge state).
    /// Programs without it never copy edge values back to the host.
    fn has_scatter(&self) -> bool {
        false
    }

    /// Upper bound on iterations (safety net; algorithms normally converge
    /// by frontier exhaustion).
    fn max_iterations(&self) -> u32 {
        10_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal program used to check trait defaults: floods a counter.
    struct Flood;

    impl GasProgram for Flood {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "flood"
        }

        fn init_vertex(&self, _v: VertexId, _d: u32) -> u32 {
            u32::MAX
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::Single(0)
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _dst: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    #[test]
    fn defaults() {
        let p = Flood;
        assert!(p.has_gather());
        assert!(!p.has_scatter());
        assert_eq!(p.max_iterations(), 10_000);
        assert_eq!(p.initial_frontier(), InitialFrontier::Single(0));
    }
}

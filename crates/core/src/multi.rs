//! Multi-GPU GraphReduce — the paper's first future-work item (Section 8:
//! "extending GraphReduce to support multiple on-node GPUs").
//!
//! Shards are distributed round-robin across `N` virtual devices, each with
//! its own PCIe link, streams, and memory pool; the vertex array and the
//! frontier bitmaps are **replicated** on every device (the paper's static
//! buffers, now per device). Every iteration:
//!
//! 1. each device runs the fused gather stage over *its* active shards;
//! 2. apply runs on the owner device of each interval;
//! 3. scatter + FrontierActivate run on the owner, then devices exchange
//!    the iteration's changed vertex values and activation bits through
//!    host memory (D2H from each owner, H2D broadcast to the others —
//!    every device has its own link, so uploads/downloads overlap across
//!    devices but serialize per link).
//!
//! Iteration wall time is the max across devices (devices progress their
//! own virtual clocks; a global barrier aligns them each stage).
//!
//! This module is a thin orchestrator over the shared execution core in
//! [`crate::exec`]: exact host results come from the driver's
//! `HostState`, every device op goes through a per-device [`DeviceCtx`]
//! (one retry/backoff policy for both engines), kernels are priced by the
//! same [`crate::exec::compute`] builders the single-GPU driver uses, and
//! persistent-fault rollbacks share the driver's `roll_back`.
//! What remains here is genuinely multi-GPU: shard placement and the
//! per-GPU memory governor (`govern_placement`), BSP barriers, the
//! cross-device exchange, and device eviction. Semantics are unchanged —
//! results stay bit-identical to the single-device engine and the
//! sequential oracle.
//!
//! Durable checkpoints extend to this orchestrator: arm them with
//! [`MultiGraphReduce::with_checkpoint_policy`] (`Durable` or
//! `DurableDelta`) and restart a killed run with
//! [`MultiGraphReduce::resume`]. Because results live in one
//! host-resident master state, a multi-GPU snapshot is that state
//! wrapped in a GRCM container recording the device count and shard
//! placement at capture time; on resume the placement is informational —
//! the orchestrator re-derives it for the *current* device set (a node
//! may come back short a GPU) and lets the governor redistribute, so
//! replay stays bit-identical across device counts. Checkpoint writes
//! happen at BSP barrier boundaries on the host and add no barriers and
//! no device time. The out-of-host-core shard store and compressed
//! shards (see `docs/DURABILITY.md`, `docs/COMPRESSION.md`) remain
//! single-GPU features: this orchestrator ignores
//! [`crate::Options::shard_store`] and
//! [`crate::Options::shard_compression`], and the bench CLI rejects the
//! corresponding flags for multi-GPU runs.

use gr_graph::{split_shard, Bitmap, GraphLayout, Shard, TopoView};
use gr_observe::{Decision, MetricsRegistry, Observer, SpanEvent, WallProfiler};
use gr_sim::{DeviceFault, FaultPlan, OutOfMemory, Platform, SimDuration};

use crate::api::GasProgram;
use crate::exec::compute::{activate_kernel_spec, apply_kernel_spec, gather_map_spec};
use crate::exec::device::{barrier, barrier_observed, Abort, DeviceCtx};
use crate::exec::driver::roll_back;
use crate::exec::durable::{DurableConfig, DurableWriter};
use crate::exec::host::HostState;
use crate::exec::plan::emit_plan_decisions;
use crate::options::HostKernels;
use crate::options::Options;
use crate::phases::ShardWork;
use crate::recovery::{EngineError, RecoveryPolicy};
use crate::session::GraphSession;
use crate::sizes::{PartitionPlan, SizeModel};
use crate::snapshot::{self, CheckpointPolicy};
use crate::snapshot_delta::{self, RestoredFromDisk};
use crate::storage::StorageCtx;

/// Multi-GPU run statistics.
#[derive(Clone, Debug, Default)]
pub struct MultiRunStats {
    /// Devices used.
    pub num_gpus: u32,
    /// Iterations executed.
    pub iterations: u32,
    /// Global wall time (stage-aligned max across devices).
    pub elapsed: SimDuration,
    /// Per-device copy-engine busy time.
    pub per_gpu_memcpy: Vec<SimDuration>,
    /// Per-device kernel busy time.
    pub per_gpu_kernel: Vec<SimDuration>,
    /// Bytes exchanged between devices (through the host) for vertex/
    /// frontier synchronization.
    pub exchange_bytes: u64,
    /// Shard count.
    pub num_shards: usize,
    /// Devices evicted after permanent loss (shards redistributed).
    pub evictions: u32,
    /// Injected device faults, summed over all devices.
    pub faults_injected: u64,
    /// Memory-governor pressure responses across all devices (0 when no
    /// device is capped).
    pub mem_pressure_events: u64,
    /// Shards the governor moved off a pressured device onto one with
    /// headroom (the rung *before* splitting).
    pub redistributions: u64,
    /// Adaptive shard splits after redistribution ran out of headroom.
    pub shard_splits: u64,
    /// Durable snapshots written (0 unless a durable policy is armed via
    /// [`MultiGraphReduce::with_checkpoint_policy`]).
    pub checkpoint_writes: u64,
    /// Total on-disk bytes of durable snapshots written.
    pub checkpoint_bytes_written: u64,
    /// On-disk bytes of *full* snapshots (all of
    /// [`MultiRunStats::checkpoint_bytes_written`] unless delta mode is on).
    pub checkpoint_full_bytes: u64,
    /// Delta snapshots written (0 unless
    /// [`CheckpointPolicy::DurableDelta`](crate::CheckpointPolicy) is armed).
    pub checkpoint_delta_writes: u64,
    /// On-disk bytes of delta snapshots.
    pub checkpoint_delta_bytes: u64,
    /// Durable snapshot restores (1 on a resumed run, else 0).
    pub checkpoint_restores: u64,
    /// Checkpoint writes skipped after storage-retry exhaustion (the run
    /// continues, covered by the previous snapshot).
    pub checkpoints_skipped: u64,
    /// Storage-op retries after injected I/O faults on the checkpoint
    /// path (0 without I/O faults).
    pub storage_retries: u64,
    /// Order-independent FNV-1a hash of the final vertex values, for
    /// cheap bit-identity comparison across kill-restart runs and device
    /// counts. `None` unless durability was armed or the run resumed.
    pub state_fingerprint: Option<u64>,
    /// Per-iteration trace.
    pub per_iteration: Vec<crate::stats::IterationStats>,
}

impl std::fmt::Display for MultiRunStats {
    /// Human-readable multi-GPU run report (used by the `run` CLI). The
    /// headline and governor lines are exactly what the CLI always
    /// printed; durability and storage-fault lines are conditional so
    /// non-durable runs stay byte-identical.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graphreduce x{} GPUs: {} iterations in {} ({:.1} MB exchanged)",
            self.num_gpus,
            self.iterations,
            self.elapsed,
            self.exchange_bytes as f64 / 1e6
        )?;
        if self.mem_pressure_events + self.redistributions + self.shard_splits > 0 {
            write!(
                f,
                "\n  governor: {} pressure events, {} redistributions, {} shard splits",
                self.mem_pressure_events, self.redistributions, self.shard_splits
            )?;
        }
        if self.checkpoint_writes > 0
            || self.checkpoint_restores > 0
            || self.checkpoints_skipped > 0
        {
            write!(
                f,
                "\n  durability: {} snapshots ({:.2} MB) written, {} restored",
                self.checkpoint_writes,
                self.checkpoint_bytes_written as f64 / 1e6,
                self.checkpoint_restores
            )?;
            if self.checkpoint_delta_writes > 0 {
                write!(
                    f,
                    " | {:.2} MB full + {} deltas ({:.2} MB)",
                    self.checkpoint_full_bytes as f64 / 1e6,
                    self.checkpoint_delta_writes,
                    self.checkpoint_delta_bytes as f64 / 1e6
                )?;
            }
            if let Some(fp) = self.state_fingerprint {
                write!(f, "\n  state fingerprint: {fp:#018x}")?;
            }
        }
        if self.storage_retries > 0 || self.checkpoints_skipped > 0 {
            write!(
                f,
                "\n  storage faults: {} retries | {} checkpoints skipped",
                self.storage_retries, self.checkpoints_skipped
            )?;
        }
        Ok(())
    }
}

/// Result of a multi-GPU run.
pub struct MultiRunResult<P: GasProgram> {
    pub vertex_values: Vec<P::VertexValue>,
    pub edge_values: Vec<P::EdgeValue>,
    pub stats: MultiRunStats,
}

/// Multi-GPU engine: `num_gpus` identical devices from `platform`.
pub struct MultiGraphReduce<'g, P: GasProgram> {
    program: P,
    session: GraphSession<'g>,
    num_gpus: u32,
    observer: Observer,
    wall: WallProfiler,
    fault_plans: Vec<(usize, FaultPlan)>,
    recovery: RecoveryPolicy,
    mem_caps: Vec<(usize, u64)>,
    checkpoint_policy: CheckpointPolicy,
}

impl<'g, P: GasProgram> MultiGraphReduce<'g, P> {
    pub fn new(program: P, layout: &'g GraphLayout, platform: Platform, num_gpus: u32) -> Self {
        MultiGraphReduce {
            program,
            // The orchestrator is a facade over the same build-once
            // session the single-GPU engine uses: the layout borrow, the
            // platform, and the partition-plan cache are graph-lifetime;
            // everything below (fault plans, caps, checkpoint policy) is
            // query-lifetime. Compression/spill stay single-GPU features,
            // so the session runs with default options.
            session: GraphSession::new(layout, platform, Options::default()),
            num_gpus: num_gpus.max(1),
            observer: Observer::disabled(),
            wall: WallProfiler::disarmed(),
            fault_plans: Vec::new(),
            recovery: RecoveryPolicy::default(),
            mem_caps: Vec::new(),
            checkpoint_policy: CheckpointPolicy::default(),
        }
    }

    /// Attach an observer. Device events are tagged per lane (`gpu0/h2d`,
    /// `gpu1/kernel`, …); BSP barriers and iteration windows are emitted
    /// on the `"multi"` track.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Attach a wall-clock profiler (armed or disarmed). Armed, it
    /// attributes the host-side GAS computation's real milliseconds per
    /// (iteration, shard, phase, kernel shape) exactly as the single-GPU
    /// engine does; read it back with
    /// [`WallProfiler::profile`](gr_observe::WallProfiler::profile).
    pub fn with_wall_profiler(mut self, wall: WallProfiler) -> Self {
        self.wall = wall;
        self
    }

    /// Arm a deterministic fault plan on one device (chaos testing).
    /// Plans for out-of-range device indices are ignored.
    pub fn with_fault_plan(mut self, device: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((device, plan));
        self
    }

    /// Recovery policy applied to every device's ops.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Arm durable checkpoints ([`CheckpointPolicy::Durable`] or
    /// [`CheckpointPolicy::DurableDelta`]): one versioned, checksummed
    /// snapshot of the master state — wrapped in a GRCM container
    /// recording the device count and shard placement — is written
    /// atomically at iteration boundary 0, every `every` completed
    /// iterations, and at convergence. Restart a killed run with
    /// [`MultiGraphReduce::resume`]. The in-memory policies
    /// (`InMemoryOnly`, `Off`) change nothing here: multi-GPU replays
    /// re-emit device timelines from the always-intact host state.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Cap one device's usable memory below its nominal capacity. The
    /// memory governor then relieves per-GPU pressure at plan time:
    /// shards are redistributed onto devices with headroom first, and
    /// split only when no device can take them whole. Caps for
    /// out-of-range device indices are ignored.
    pub fn with_mem_cap(mut self, device: usize, bytes: u64) -> Self {
        self.mem_caps.push((device, bytes));
        self
    }

    /// Bring up one device context, resolving this device's fault plan and
    /// memory cap (repeated builder calls overwrite, so the last entry
    /// wins — exactly what repeated `set_fault_plan`/`cap_memory` calls
    /// used to do).
    fn device_ctx(&self, d: usize) -> DeviceCtx {
        let fault_plan = self
            .fault_plans
            .iter()
            .rev()
            .find(|(i, _)| *i == d)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(FaultPlan::none);
        let cap = self
            .mem_caps
            .iter()
            .rev()
            .find(|(i, _)| *i == d)
            .map(|&(_, c)| c);
        DeviceCtx::new(
            self.session.platform(),
            d,
            self.observer.clone(),
            Some(format!("gpu{d}/")),
            fault_plan,
            cap,
            self.recovery.clone(),
        )
    }

    /// Execute to convergence.
    pub fn run(&self) -> Result<MultiRunResult<P>, EngineError> {
        self.run_inner(None)
    }

    /// Resume a previously killed (or completed) run from the newest
    /// intact snapshot in `dir`, then execute to convergence.
    ///
    /// Accepts every snapshot family the single-GPU engine accepts
    /// (GRCK full, GRCD delta chain, GRCZ compressed), plus the GRCM
    /// multi container the orchestrator writes. A GRCM placement map is
    /// honored only when it fits the current device set exactly (same
    /// width, same shard count); otherwise ownership is re-derived for
    /// the *current* devices, so a run checkpointed on N GPUs can resume
    /// on fewer — the governor redistributes the orphaned shards exactly
    /// as it does after an eviction. Vertex state, per-iteration stats
    /// and the final fingerprint stay bit-identical to an uninterrupted
    /// run on the resumed device count.
    pub fn resume(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<MultiRunResult<P>, EngineError> {
        let fp = snapshot::fingerprint_for(&self.program, self.session.layout());
        let restored = snapshot_delta::load_newest::<P>(dir.as_ref(), &fp)?;
        self.run_inner(Some(restored))
    }

    fn run_inner(
        &self,
        restored: Option<RestoredFromDisk<P>>,
    ) -> Result<MultiRunResult<P>, EngineError> {
        self.wall.set_algorithm(self.program.name());
        let sizes = SizeModel::for_program(&self.program);
        let layout = self.session.layout();
        let n = layout.num_vertices();
        let ngpu = self.num_gpus as usize;
        // Partition for a single device's memory (each device must hold
        // its own static buffers + its in-flight shards). The optimistic
        // plan is graph-lifetime state: the session caches it per byte
        // model, so repeated queries (and the serving layer) replan only
        // on the first run of each algorithm shape.
        let mut plan = self.session.multi_partition_plan(&sizes)?;

        let mut ctxs: Vec<DeviceCtx> = (0..ngpu).map(|d| self.device_ctx(d)).collect();
        for c in ctxs.iter_mut() {
            c.create_main_streams(plan.concurrent as usize);
        }

        // Shard ownership and device liveness: a lost device is evicted
        // and its shards redistributed round-robin over the survivors.
        // A resumed run checkpointed at the *same* width restores the
        // recorded GRCM placement (it may reflect earlier evictions or
        // governor moves); any width change re-derives round-robin for
        // the current device set and lets the governor redistribute.
        let recorded = restored.as_ref().and_then(|r| r.placement.as_ref());
        let mut owners: Vec<usize> = match recorded {
            Some(p)
                if p.num_gpus == self.num_gpus
                    && p.owners.len() == plan.shards.len()
                    && p.owners.iter().all(|&o| (o as usize) < ngpu) =>
            {
                p.owners.iter().map(|&o| o as usize).collect()
            }
            _ => (0..plan.shards.len()).map(|i| i % ngpu).collect(),
        };
        let mut alive = vec![true; ngpu];
        let mut evictions = 0u32;

        // Per-GPU memory governor (plan-level): relieve capped devices by
        // redistribution first, splitting only as a last resort.
        let governed = govern_placement(
            &mut plan,
            &mut owners,
            &ctxs,
            &sizes,
            layout,
            &self.observer,
        )?;
        let shards = &plan.shards;

        // Orchestrator-level registry: feeds the shared exec helpers
        // (rollback counts, frontier gauges) and accumulates the durable
        // writer's checkpoint counters, which the stats assembly below
        // reads back out.
        let mut metrics = MetricsRegistry::new();

        // Process-kill faults are device-agnostic (the whole process
        // dies): the earliest armed boundary across all plans wins. I/O
        // faults target host-side storage, which is shared — the first
        // plan carrying any drives the single StorageCtx.
        let kill_at = self
            .fault_plans
            .iter()
            .filter_map(|(_, p)| p.kill_at())
            .min();
        let io_plan = self
            .fault_plans
            .iter()
            .find(|(_, p)| p.has_io_faults())
            .map(|(_, p)| p.clone())
            .unwrap_or_else(FaultPlan::none);
        let mut storage = StorageCtx::new(&io_plan, self.recovery.clone(), self.observer.clone());
        emit_plan_decisions(
            &self.observer,
            true,
            self.program.has_gather(),
            self.program.has_scatter(),
        );

        // Static buffers replicated per device.
        let vbytes = n as u64 * sizes.vertex_value;
        let mut global = SimDuration::ZERO;
        {
            let mut replays = 0u32;
            loop {
                let mut abort = None;
                for (d, c) in ctxs.iter_mut().enumerate() {
                    if !alive[d] {
                        continue;
                    }
                    let s = c.main_streams[0];
                    if let Err(a) = c.h2d(s, vbytes, "multi.init.vertices", 0) {
                        abort = Some(a);
                        break;
                    }
                }
                match abort {
                    None => break,
                    Some(a) => {
                        replays += 1;
                        global += barrier(&mut ctxs);
                        handle_abort(
                            a,
                            0,
                            replays,
                            &mut alive,
                            &mut owners,
                            &mut evictions,
                            &self.observer,
                            &mut metrics,
                        )?;
                    }
                }
            }
        }
        barrier_observed(&mut ctxs, &mut global, "init", &self.observer);

        // Host master state (results computed once, exactly) — the same
        // [`HostState`] the single-GPU driver runs, shared across devices
        // because vertex state is replicated. Resume swaps in the
        // restored master state; device buffers were already primed by
        // the init upload above (state is replicated, so the upload cost
        // is the same whether the values are cold or restored).
        let mut checkpoint_restores = 0u64;
        let mut restored_chain = None;
        let mut host = match restored {
            Some(r) => {
                let b = r.state.iterations_completed();
                checkpoint_restores = 1;
                restored_chain = r.delta;
                let bytes = r.bytes;
                self.observer.decision(|| Decision::CheckpointRestore {
                    iteration: b,
                    bytes,
                });
                HostState::restored(r.state)
            }
            None => HostState::<P>::cold(&self.program, layout),
        };

        // Durable checkpoint writer (single-GPU machinery reused whole):
        // the orchestrator only adds the GRCM placement frame, refreshed
        // before every write because eviction mutates `owners`.
        let mut durable = DurableConfig::from_policy(&self.checkpoint_policy).map(|cfg| {
            let fp = snapshot::fingerprint_for(&self.program, self.session.layout());
            let mut w = DurableWriter::new(cfg, fp, n, None);
            if checkpoint_restores > 0 {
                w.note_restored(host.iterations.len() as u32, restored_chain.take());
            }
            w
        });
        let fp_armed = durable.is_some() || checkpoint_restores > 0;

        let mut exchange_bytes = 0u64;
        // Resume continues from the restored boundary (0 on a cold
        // start); a forced snapshot first makes even a kill at the very
        // first boundary restartable.
        let mut iter = host.iterations.len() as u32;
        if let Some(w) = durable.as_mut() {
            w.set_placement(self.num_gpus, &owners);
            w.maybe_write(&host, true, &mut storage, &self.observer, &mut metrics)?;
        }
        while iter < self.program.max_iterations() && host.frontier.count() > 0 {
            if kill_at == Some(iter) {
                return Err(EngineError::Killed { iteration: iter });
            }
            let iter_start = global;
            // ---- exact BSP computation (once, on the host) ----
            let work = host.compute_iteration(
                &self.program,
                TopoView::raw(layout),
                shards,
                HostKernels::Adaptive,
                true,
                iter,
                &self.observer,
                &mut metrics,
                &self.wall,
            );

            // ---- device timelines (replayed on persistent faults) ----
            // Host results above were computed exactly once; only the
            // simulated device schedule is re-emitted after a rollback or
            // an eviction, so final state stays bit-identical.
            let mut replays = 0u32;
            let exchanged = loop {
                let r = emit_iteration(
                    &mut ctxs,
                    &owners,
                    &alive,
                    shards,
                    &sizes,
                    &work,
                    &host.changed,
                    self.program.has_gather(),
                    iter,
                    &mut global,
                    &self.observer,
                );
                match r {
                    Ok(x) => break x,
                    Err(a) => {
                        replays += 1;
                        // Settle partial work: the doomed attempt's time
                        // stays on the clock.
                        global += barrier(&mut ctxs);
                        handle_abort(
                            a,
                            iter,
                            replays,
                            &mut alive,
                            &mut owners,
                            &mut evictions,
                            &self.observer,
                            &mut metrics,
                        )?;
                    }
                }
            };
            // Committed only on success so replays never double-count.
            exchange_bytes += exchanged;

            let it = host.iterations.last().expect("pushed by compute_iteration");
            let (frontier_size, changed_count) = (it.frontier_size, it.changed);
            let (processed, skipped) = (it.shards_processed, it.shards_skipped);
            let (span_start, span_end) = (iter_start.as_nanos(), global.as_nanos());
            self.observer.span(|| SpanEvent {
                track: "multi",
                lane: "iterations".to_string(),
                name: format!("iteration {iter}"),
                start_ns: span_start,
                dur_ns: span_end - span_start,
                fields: vec![
                    ("frontier_size", frontier_size.into()),
                    ("changed", changed_count.into()),
                    ("shards_processed", processed.into()),
                    ("shards_skipped", skipped.into()),
                ],
            });
            host.finish_iteration();
            iter += 1;
            // Durable boundary: host-side only (tmp+fsync+rename), so it
            // adds no barriers and no device time. `changed` survives
            // `finish_iteration` (which only swaps frontiers), so delta
            // dirty-tracking sees exactly this iteration's writes.
            if let Some(w) = durable.as_mut() {
                w.record_iteration(&host.changed);
                w.set_placement(self.num_gpus, &owners);
                w.maybe_write(&host, false, &mut storage, &self.observer, &mut metrics)?;
            }
        }

        // Converged: force a final snapshot so a completed run's durable
        // state is the answer, not the last periodic boundary.
        if let Some(w) = durable.as_mut() {
            w.set_placement(self.num_gpus, &owners);
            w.maybe_write(&host, true, &mut storage, &self.observer, &mut metrics)?;
        }

        // Final download from owners (replayed with eviction handling:
        // a device that dies here hands its shards to the survivors).
        {
            let mut replays = 0u32;
            loop {
                let mut abort = None;
                for d in 0..ngpu {
                    if !alive[d] {
                        continue;
                    }
                    let owned: u64 = shards
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| owners[*i] == d)
                        .map(|(_, sh)| sh.num_vertices())
                        .sum();
                    let s = ctxs[d].main_streams[0];
                    let bytes = owned * sizes.vertex_value;
                    if let Err(a) = ctxs[d].d2h(s, bytes, "multi.final", iter) {
                        abort = Some(a);
                        break;
                    }
                }
                match abort {
                    None => break,
                    Some(a) => {
                        replays += 1;
                        global += barrier(&mut ctxs);
                        handle_abort(
                            a,
                            iter,
                            replays,
                            &mut alive,
                            &mut owners,
                            &mut evictions,
                            &self.observer,
                            &mut metrics,
                        )?;
                    }
                }
            }
        }
        barrier_observed(&mut ctxs, &mut global, "final", &self.observer);
        for (d, c) in ctxs.iter().enumerate() {
            self.observer
                .snapshot(&format!("gpu{d}"), || c.gpu_metrics().snapshot());
        }

        let stats = MultiRunStats {
            num_gpus: self.num_gpus,
            iterations: iter,
            elapsed: global,
            per_gpu_memcpy: ctxs.iter().map(|c| c.stats().memcpy_busy).collect(),
            per_gpu_kernel: ctxs.iter().map(|c| c.stats().kernel_busy).collect(),
            exchange_bytes,
            num_shards: shards.len(),
            evictions,
            faults_injected: ctxs.iter().map(|c| c.faults_injected()).sum(),
            mem_pressure_events: governed.mem_pressure_events,
            redistributions: governed.redistributions,
            shard_splits: governed.shard_splits,
            checkpoint_writes: metrics.counter("engine.checkpoint_writes"),
            checkpoint_bytes_written: metrics.counter("engine.checkpoint_bytes"),
            checkpoint_full_bytes: metrics.counter("engine.checkpoint_full_bytes"),
            checkpoint_delta_writes: metrics.counter("engine.checkpoint_delta_writes"),
            checkpoint_delta_bytes: metrics.counter("engine.checkpoint_delta_bytes"),
            checkpoint_restores,
            checkpoints_skipped: storage.counters.skipped,
            storage_retries: storage.counters.retries,
            state_fingerprint: fp_armed.then(|| snapshot::values_fingerprint(&host.vertex_values)),
            per_iteration: host.iterations,
        };
        Ok(MultiRunResult {
            vertex_values: host.vertex_values,
            edge_values: host.edge_values,
            stats,
        })
    }
}

/// What the plan-level multi-GPU governor did (all-zero when no device
/// cap is armed — the uncapped path makes no decisions).
#[derive(Default)]
struct MultiGoverned {
    mem_pressure_events: u64,
    redistributions: u64,
    shard_splits: u64,
}

/// Relieve per-GPU memory pressure at plan time. A device is pressured
/// when its replicated static buffers plus `K` slots of its largest owned
/// shard exceed its (possibly capped) pool. Escalation per offending
/// shard: move it to the least-loaded device with headroom for it
/// ([`Decision::MemoryPressure`] `response: "redistribute"`), else split
/// it ([`Decision::ShardSplit`]); a shard that cannot shrink below any
/// device's budget surfaces [`EngineError::Alloc`]. Runs to a fixed
/// point: redistribution strictly shrinks the offender's footprint and
/// splits strictly shrink shards, so the loop terminates.
fn govern_placement(
    plan: &mut PartitionPlan,
    owners: &mut Vec<usize>,
    ctxs: &[DeviceCtx],
    sizes: &SizeModel,
    layout: &GraphLayout,
    observer: &Observer,
) -> Result<MultiGoverned, EngineError> {
    let mut out = MultiGoverned::default();
    let ngpu = ctxs.len();
    let k = plan.concurrent.max(1) as u64;
    let budgets: Vec<u64> = ctxs
        .iter()
        .map(|c| c.mem_capacity().saturating_sub(plan.static_bytes))
        .collect();
    // The static buffers are replicated on every device; a device that
    // cannot even hold those cannot participate at all.
    for c in ctxs.iter() {
        let capacity = c.mem_capacity();
        if plan.static_bytes > capacity {
            return Err(EngineError::Alloc(OutOfMemory {
                requested: plan.static_bytes,
                available: capacity,
                capacity,
            }));
        }
    }
    if budgets.iter().all(|&b| k * plan.max_shard_bytes <= b) {
        return Ok(out); // every device fits the optimistic plan: no decisions
    }
    let mut split_any = false;
    loop {
        // Per-device load (total owned bytes) and worst owned shard.
        let mut load = vec![0u64; ngpu];
        let mut worst: Vec<u64> = vec![0; ngpu];
        for (i, sh) in plan.shards.iter().enumerate() {
            let b = sizes.shard_bytes(sh);
            load[owners[i]] += b;
            worst[owners[i]] = worst[owners[i]].max(b);
        }
        let Some(d) = (0..ngpu).find(|&d| k * worst[d] > budgets[d]) else {
            break;
        };
        let (idx, bytes) = plan
            .shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| owners[i] == d)
            .map(|(i, s)| (i, sizes.shard_bytes(s)))
            .max_by_key(|&(_, b)| b)
            .expect("a pressured device owns at least one shard");
        // Rung 1: redistribute to the least-loaded device that can take
        // the shard whole alongside what it already owns.
        let target = (0..ngpu)
            .filter(|&t| t != d && k * bytes.max(worst[t]) <= budgets[t])
            .min_by_key(|&t| load[t]);
        if let Some(t) = target {
            owners[idx] = t;
            out.mem_pressure_events += 1;
            out.redistributions += 1;
            let (requested, available, capacity) = (k * bytes, budgets[d], ctxs[d].mem_capacity());
            observer.decision(|| Decision::MemoryPressure {
                device: d as u32,
                requested,
                available,
                capacity,
                response: "redistribute",
                scope: "device",
            });
            continue;
        }
        // Rung 2: split the shard in place (both halves stay with `d`;
        // the next pass may redistribute one of them).
        let shard = plan.shards[idx].clone();
        let halves = split_shard(layout, &shard)
            .filter(|(a, b)| sizes.shard_bytes(a).max(sizes.shard_bytes(b)) < bytes);
        let Some((left, right)) = halves else {
            return Err(EngineError::Alloc(OutOfMemory {
                requested: k * bytes,
                available: budgets[d],
                capacity: ctxs[d].mem_capacity(),
            }));
        };
        out.shard_splits += 1;
        let vertices = shard.num_vertices();
        observer.decision(|| Decision::ShardSplit {
            shard: idx as u32,
            vertices,
            bytes,
        });
        plan.shards.splice(idx..=idx, [left, right]);
        owners.insert(idx + 1, d);
        split_any = true;
    }
    if split_any {
        for (i, sh) in plan.shards.iter_mut().enumerate() {
            sh.id = i;
        }
        plan.max_shard_bytes = plan
            .shards
            .iter()
            .map(|s| sizes.shard_bytes(s))
            .max()
            .unwrap_or(0);
    }
    Ok(out)
}

/// Central multi-GPU abort handling. Device loss evicts the device and
/// redistributes its shards round-robin over the survivors (logged as
/// [`Decision::DeviceEvict`]); losing the last device fails the run. A
/// persistent transient fault rolls back through the shared
/// [`roll_back`] bookkeeping so the caller replays the stage's timeline,
/// bounded by the same replay cap as the single-GPU driver.
#[allow(clippy::too_many_arguments)]
fn handle_abort(
    a: Abort,
    iter: u32,
    replays: u32,
    alive: &mut [bool],
    owners: &mut [usize],
    evictions: &mut u32,
    observer: &Observer,
    metrics: &mut MetricsRegistry,
) -> Result<(), EngineError> {
    match a.fault {
        DeviceFault::Lost => {
            alive[a.device] = false;
            let survivors: Vec<usize> = alive
                .iter()
                .enumerate()
                .filter_map(|(d, &l)| l.then_some(d))
                .collect();
            if survivors.is_empty() {
                return Err(EngineError::DeviceLost);
            }
            let mut moved = 0u32;
            for o in owners.iter_mut() {
                if *o == a.device {
                    *o = survivors[moved as usize % survivors.len()];
                    moved += 1;
                }
            }
            *evictions += 1;
            let device = a.device as u32;
            observer.decision(|| Decision::DeviceEvict {
                iteration: iter,
                device,
                shards_moved: moved,
            });
            Ok(())
        }
        fault => roll_back(
            observer,
            metrics,
            iter,
            replays,
            a.device as u32,
            a.op,
            fault,
        ),
    }
}

/// One BSP iteration's device timeline: gather/apply/activate stages on
/// each shard's owner plus the cross-device exchange, every op routed
/// through the shared [`DeviceCtx`] fault-retry path. Returns the
/// iteration's exchange bytes (committed by the caller only on success,
/// so replays never double-count).
#[allow(clippy::too_many_arguments)]
fn emit_iteration(
    ctxs: &mut [DeviceCtx],
    owners: &[usize],
    alive: &[bool],
    shards: &[Shard],
    sizes: &SizeModel,
    work: &[ShardWork],
    changed: &Bitmap,
    has_gather: bool,
    iter: u32,
    global: &mut SimDuration,
    observer: &Observer,
) -> Result<u64, Abort> {
    // Stage A: gather on each shard's owner device.
    if has_gather {
        for (i, sh) in shards.iter().enumerate() {
            if !work[i].is_active() {
                continue;
            }
            let d = owners[i];
            let stream = ctxs[d].main_streams[i % ctxs[d].main_streams.len()];
            let bytes = sh.num_in_edges() * sizes.in_edge_bytes();
            ctxs[d].h2d(stream, bytes, "multi.in-edges", iter)?;
            let spec = gather_map_spec(sizes, &work[i], "multi.gather");
            ctxs[d].launch(stream, &spec, iter)?;
        }
        barrier_observed(ctxs, global, "gather", observer);
    }
    // Stage B: apply on owners.
    for (i, _sh) in shards.iter().enumerate() {
        if !work[i].is_active() {
            continue;
        }
        let d = owners[i];
        let stream = ctxs[d].main_streams[i % ctxs[d].main_streams.len()];
        let spec = apply_kernel_spec(sizes, &work[i], "multi.apply");
        ctxs[d].launch(stream, &spec, iter)?;
    }
    barrier_observed(ctxs, global, "apply", observer);
    // Stage C: scatter/activate on owners, then cross-device exchange of
    // changed vertex values + activation bits.
    for (i, sh) in shards.iter().enumerate() {
        if work[i].out_edges_of_changed == 0 {
            continue;
        }
        let d = owners[i];
        let stream = ctxs[d].main_streams[i % ctxs[d].main_streams.len()];
        let bytes = sh.num_out_edges() * sizes.out_edge_bytes();
        ctxs[d].h2d(stream, bytes, "multi.out-edges", iter)?;
        let spec = activate_kernel_spec(sizes, &work[i], "multi.activate");
        ctxs[d].launch(stream, &spec, iter)?;
    }
    // Exchange: each owner downloads its changed values; every live
    // device uploads the union of the *other* owners' changes.
    let ngpu = ctxs.len();
    let mut changed_per_gpu = vec![0u64; ngpu];
    for (i, sh) in shards.iter().enumerate() {
        changed_per_gpu[owners[i]] += changed.count_range(sh.interval.start, sh.interval.end);
    }
    let total_changed: u64 = changed_per_gpu.iter().sum();
    let live: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter_map(|(d, &l)| l.then_some(d))
        .collect();
    let mut exchanged = 0u64;
    if live.len() > 1 {
        for &d in &live {
            let s = ctxs[d].main_streams[0];
            let down = changed_per_gpu[d] * (sizes.vertex_value + 4);
            let up = (total_changed - changed_per_gpu[d]) * (sizes.vertex_value + 4);
            if down > 0 {
                ctxs[d].d2h(s, down, "multi.exchange.down", iter)?;
                exchanged += down;
            }
            if up > 0 {
                ctxs[d].h2d(s, up, "multi.exchange.up", iter)?;
                exchanged += up;
            }
        }
    } else {
        let d = live[0];
        let s = ctxs[d].main_streams[0];
        let bits: u64 = total_changed.div_ceil(8);
        ctxs[d].d2h(s, bits, "multi.frontier.bits", iter)?;
    }
    barrier_observed(ctxs, global, "exchange", observer);
    Ok(exchanged)
}

/// Helper to assemble one [`Shard`]'s byte volume under a size model (used
/// by scaling analyses).
pub fn shard_stream_bytes(sizes: &SizeModel, sh: &Shard) -> u64 {
    sizes.shard_bytes(sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GraphReduce;
    use crate::options::Options;
    use crate::testprog::Cc;
    use gr_graph::gen;

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
    }

    #[test]
    fn multi_gpu_matches_single_device_results() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let single = GraphReduce::new(Cc, &l, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        for n in [1u32, 2, 4] {
            let multi = MultiGraphReduce::new(Cc, &l, plat.clone(), n)
                .run()
                .unwrap();
            assert_eq!(multi.vertex_values, single.vertex_values, "{n} GPUs");
            assert_eq!(multi.stats.num_gpus, n);
            assert_eq!(multi.stats.per_gpu_memcpy.len(), n as usize);
        }
    }

    #[test]
    fn more_gpus_reduce_wall_time_on_streaming_runs() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14); // heavy sharding
        let one = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
            .run()
            .unwrap();
        let four = MultiGraphReduce::new(Cc, &l, plat, 4).run().unwrap();
        assert!(
            four.stats.elapsed < one.stats.elapsed,
            "4 GPUs {:?} vs 1 GPU {:?}",
            four.stats.elapsed,
            one.stats.elapsed
        );
        assert!(four.stats.exchange_bytes > 0, "exchange traffic expected");
        assert_eq!(
            one.stats.exchange_bytes, 0,
            "single device exchanges nothing"
        );
    }

    #[test]
    fn scaling_is_sublinear_because_of_exchange() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let one = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
            .run()
            .unwrap();
        let eight = MultiGraphReduce::new(Cc, &l, plat, 8).run().unwrap();
        let speedup = one.stats.elapsed.as_secs_f64() / eight.stats.elapsed.as_secs_f64();
        assert!(speedup > 1.0 && speedup < 8.0, "speedup {speedup:.2}");
    }

    #[test]
    fn observer_tags_devices_and_marks_barriers() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let (obs, sink) = Observer::recording();
        let res = MultiGraphReduce::new(Cc, &l, plat, 2)
            .with_observer(obs)
            .run()
            .unwrap();
        let rec = sink.recorded();
        // Every device's sim lanes carry its tag.
        assert!(rec
            .spans
            .iter()
            .any(|s| s.track == "sim" && s.lane.starts_with("gpu0/")));
        assert!(rec
            .spans
            .iter()
            .any(|s| s.track == "sim" && s.lane.starts_with("gpu1/")));
        // BSP barriers and iteration windows land on the multi track.
        let barriers = rec
            .instants
            .iter()
            .filter(|i| i.track == "multi" && i.lane == "barriers")
            .count();
        // init + final + (gather, apply, exchange) per iteration.
        assert_eq!(barriers as u32, 2 + 3 * res.stats.iterations);
        let iters = rec
            .spans
            .iter()
            .filter(|s| s.track == "multi" && s.lane == "iterations")
            .count() as u32;
        assert_eq!(iters, res.stats.iterations);
        // One end-of-run metrics snapshot per device.
        assert_eq!(
            rec.snapshots
                .iter()
                .filter(|(scope, _)| scope.starts_with("gpu"))
                .count(),
            2
        );
    }

    /// Plan the same partition the multi runner uses so tests can derive
    /// caps relative to the real static/shard footprints.
    fn reference_plan(l: &GraphLayout, plat: &Platform) -> PartitionPlan {
        let sizes = SizeModel {
            vertex_value: 4,
            gather: 4,
            edge_value: 0,
            has_gather: true,
            has_scatter: false,
        };
        crate::sizes::plan_partition(l, &sizes, &plat.device, &plat.pcie, 2, None).unwrap()
    }

    #[test]
    fn uncapped_multi_run_makes_no_governor_decisions() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let (obs, sink) = Observer::recording();
        let res = MultiGraphReduce::new(Cc, &l, plat, 2)
            .with_observer(obs)
            .run()
            .unwrap();
        assert_eq!(res.stats.mem_pressure_events, 0);
        assert_eq!(res.stats.redistributions, 0);
        assert_eq!(res.stats.shard_splits, 0);
        assert_eq!(sink.recorded().memory_decisions(), 0);
    }

    #[test]
    fn capped_device_redistributes_before_splitting() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let plan = reference_plan(&l, &plat);
        let baseline = MultiGraphReduce::new(Cc, &l, plat.clone(), 2)
            .run()
            .unwrap();
        // Device 0 can hold its static buffers but not a single shard
        // slot: everything it owned must move to device 1, which has
        // full headroom. No splits are needed.
        let (obs, sink) = Observer::recording();
        let capped = MultiGraphReduce::new(Cc, &l, plat, 2)
            .with_mem_cap(0, plan.static_bytes + 1)
            .with_observer(obs)
            .run()
            .unwrap();
        assert_eq!(capped.vertex_values, baseline.vertex_values);
        assert!(capped.stats.redistributions > 0);
        assert_eq!(
            capped.stats.mem_pressure_events,
            capped.stats.redistributions
        );
        assert_eq!(capped.stats.shard_splits, 0);
        assert_eq!(
            sink.recorded().memory_decisions() as u64,
            capped.stats.redistributions
        );
    }

    #[test]
    fn capped_device_splits_when_no_peer_has_headroom() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let plan = reference_plan(&l, &plat);
        let baseline = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
            .run()
            .unwrap();
        // A single device just below the plan's requirement has nowhere
        // to redistribute: the largest shard must split.
        let k = plan.concurrent.max(1) as u64;
        let cap = plan.static_bytes + k * plan.max_shard_bytes - 1;
        let capped = MultiGraphReduce::new(Cc, &l, plat, 1)
            .with_mem_cap(0, cap)
            .run()
            .unwrap();
        assert_eq!(capped.vertex_values, baseline.vertex_values);
        assert!(capped.stats.shard_splits > 0);
        assert_eq!(capped.stats.redistributions, 0);
    }

    #[test]
    fn cap_below_static_footprint_is_a_clean_alloc_error() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let plan = reference_plan(&l, &plat);
        let res = MultiGraphReduce::new(Cc, &l, plat, 2)
            .with_mem_cap(1, plan.static_bytes - 1)
            .run();
        match res {
            Err(EngineError::Alloc(_)) => {}
            Err(other) => panic!("expected Alloc, got {other:?}"),
            Ok(_) => panic!("expected Alloc error, run succeeded"),
        }
    }

    #[test]
    fn iteration_counts_match_single_device() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let single = GraphReduce::new(Cc, &l, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let multi = MultiGraphReduce::new(Cc, &l, plat, 3).run().unwrap();
        assert_eq!(multi.stats.iterations, single.stats.iterations);
        let s: Vec<u64> = single.stats.frontier_sizes();
        let m: Vec<u64> = multi
            .stats
            .per_iteration
            .iter()
            .map(|i| i.frontier_size)
            .collect();
        assert_eq!(s, m);
    }
}

//! Multi-GPU GraphReduce — the paper's first future-work item (Section 8:
//! "extending GraphReduce to support multiple on-node GPUs").
//!
//! Shards are distributed round-robin across `N` virtual devices, each with
//! its own PCIe link, streams, and memory pool; the vertex array and the
//! frontier bitmaps are **replicated** on every device (the paper's static
//! buffers, now per device). Every iteration:
//!
//! 1. each device runs the fused gather stage over *its* active shards;
//! 2. apply runs on the owner device of each interval;
//! 3. scatter + FrontierActivate run on the owner, then devices exchange
//!    the iteration's changed vertex values and activation bits through
//!    host memory (D2H from each owner, H2D broadcast to the others —
//!    every device has its own link, so uploads/downloads overlap across
//!    devices but serialize per link).
//!
//! Iteration wall time is the max across devices (devices progress their
//! own virtual clocks; a global barrier aligns them each stage).
//! Semantics are unchanged — results stay bit-identical to the
//! single-device engine and the sequential oracle.

use gr_graph::{Bitmap, GraphLayout, Shard};
use gr_observe::{InstantEvent, Observer, SpanEvent};
use gr_sim::{Gpu, KernelSpec, Platform, SimDuration, StreamId};

use crate::api::{GasProgram, InitialFrontier};
use crate::phases::{activate_shard, apply_shard, gather_shard, scatter_shard, ShardWork};
use crate::sizes::{plan_partition, PlanError, SizeModel};
use crate::stats::IterationStats;

/// Multi-GPU run statistics.
#[derive(Clone, Debug, Default)]
pub struct MultiRunStats {
    /// Devices used.
    pub num_gpus: u32,
    /// Iterations executed.
    pub iterations: u32,
    /// Global wall time (stage-aligned max across devices).
    pub elapsed: SimDuration,
    /// Per-device copy-engine busy time.
    pub per_gpu_memcpy: Vec<SimDuration>,
    /// Per-device kernel busy time.
    pub per_gpu_kernel: Vec<SimDuration>,
    /// Bytes exchanged between devices (through the host) for vertex/
    /// frontier synchronization.
    pub exchange_bytes: u64,
    /// Shard count.
    pub num_shards: usize,
    /// Per-iteration trace.
    pub per_iteration: Vec<IterationStats>,
}

/// Result of a multi-GPU run.
pub struct MultiRunResult<P: GasProgram> {
    pub vertex_values: Vec<P::VertexValue>,
    pub edge_values: Vec<P::EdgeValue>,
    pub stats: MultiRunStats,
}

/// Multi-GPU engine: `num_gpus` identical devices from `platform`.
pub struct MultiGraphReduce<'g, P: GasProgram> {
    program: P,
    layout: &'g GraphLayout,
    platform: Platform,
    num_gpus: u32,
    observer: Observer,
}

impl<'g, P: GasProgram> MultiGraphReduce<'g, P> {
    pub fn new(program: P, layout: &'g GraphLayout, platform: Platform, num_gpus: u32) -> Self {
        MultiGraphReduce {
            program,
            layout,
            platform,
            num_gpus: num_gpus.max(1),
            observer: Observer::disabled(),
        }
    }

    /// Attach an observer. Device events are tagged per lane (`gpu0/h2d`,
    /// `gpu1/kernel`, …); BSP barriers and iteration windows are emitted
    /// on the `"multi"` track.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    fn size_model(&self) -> SizeModel {
        SizeModel {
            vertex_value: std::mem::size_of::<P::VertexValue>() as u64,
            gather: std::mem::size_of::<P::Gather>() as u64,
            edge_value: std::mem::size_of::<P::EdgeValue>() as u64,
            has_gather: self.program.has_gather(),
            has_scatter: self.program.has_scatter(),
        }
    }

    /// Execute to convergence.
    pub fn run(&self) -> Result<MultiRunResult<P>, PlanError> {
        let sizes = self.size_model();
        let n = self.layout.num_vertices();
        let ngpu = self.num_gpus as usize;
        // Partition for a single device's memory (each device must hold its
        // own static buffers + its in-flight shards).
        let plan = plan_partition(
            self.layout,
            &sizes,
            &self.platform.device,
            &self.platform.pcie,
            2,
            None,
        )?;
        let shards = &plan.shards;

        let mut gpus: Vec<Gpu> = (0..ngpu).map(|_| Gpu::new(&self.platform)).collect();
        for (d, g) in gpus.iter_mut().enumerate() {
            g.set_observer_tagged(self.observer.clone(), format!("gpu{d}/"));
        }
        let streams: Vec<Vec<StreamId>> = gpus
            .iter_mut()
            .map(|g| {
                (0..plan.concurrent as usize)
                    .map(|_| g.create_stream())
                    .collect()
            })
            .collect();
        // Static buffers replicated per device.
        let vbytes = n as u64 * sizes.vertex_value;
        let mut global = SimDuration::ZERO;
        for g in &mut gpus {
            let s = g.create_stream();
            g.h2d(s, vbytes, "multi.init.vertices");
        }
        barrier_observed(&mut gpus, &mut global, "init", &self.observer);

        // Host master state (results computed once, exactly).
        let mut vertex_values: Vec<P::VertexValue> = (0..n)
            .map(|v| {
                self.program
                    .init_vertex(v, self.layout.csr.degree(v) as u32)
            })
            .collect();
        let mut edge_values = vec![P::EdgeValue::default(); self.layout.num_edges() as usize];
        let mut gather_temp = vec![self.program.gather_identity(); n as usize];
        let mut frontier = match self.program.initial_frontier() {
            InitialFrontier::All => Bitmap::full(n),
            InitialFrontier::Single(v) => {
                let mut b = Bitmap::new(n);
                if n > 0 {
                    b.set(v);
                }
                b
            }
        };

        let owner = |shard_id: usize| shard_id % ngpu;
        let mut per_iteration = Vec::new();
        let mut exchange_bytes = 0u64;
        let mut iter = 0u32;
        while iter < self.program.max_iterations() && frontier.count() > 0 {
            let iter_start = global;
            // ---- exact BSP computation (once, on the host) ----
            let mut work = vec![ShardWork::default(); shards.len()];
            let mut changed = Bitmap::new(n);
            let mut next = Bitmap::new(n);
            if self.program.has_gather() {
                for (i, sh) in shards.iter().enumerate() {
                    let (lo, hi) = (sh.interval.start as usize, sh.interval.end as usize);
                    let (a, e) = gather_shard(
                        &self.program,
                        self.layout,
                        sh,
                        &vertex_values,
                        &edge_values,
                        &self.layout.weights,
                        &frontier,
                        &mut gather_temp[lo..hi],
                    );
                    work[i].active_vertices = a;
                    work[i].active_in_edges = e;
                }
            } else {
                for (i, sh) in shards.iter().enumerate() {
                    work[i].active_vertices =
                        frontier.count_range(sh.interval.start, sh.interval.end);
                }
            }
            for (i, sh) in shards.iter().enumerate() {
                let (lo, hi) = (sh.interval.start as usize, sh.interval.end as usize);
                let ids = apply_shard(
                    &self.program,
                    sh,
                    &mut vertex_values[lo..hi],
                    &gather_temp[lo..hi],
                    &frontier,
                    iter,
                );
                work[i].changed_vertices = ids.len() as u64;
                for v in ids {
                    changed.set(v);
                }
            }
            if self.program.has_scatter() {
                for sh in shards.iter() {
                    scatter_shard(
                        &self.program,
                        self.layout,
                        sh,
                        &vertex_values,
                        &mut edge_values,
                        &changed,
                    );
                }
            }
            let mut activated = 0;
            for (i, sh) in shards.iter().enumerate() {
                let (walked, act) = activate_shard(self.layout, sh, &changed, &mut next);
                work[i].out_edges_of_changed = walked;
                activated += act;
            }

            // ---- device timelines ----
            // Stage A: gather on each shard's owner device.
            if self.program.has_gather() {
                for (i, sh) in shards.iter().enumerate() {
                    if !work[i].is_active() {
                        continue;
                    }
                    let d = owner(i);
                    let stream = streams[d][i % streams[d].len()];
                    let e = sh.num_in_edges();
                    gpus[d].h2d(stream, e * sizes.in_edge_bytes(), "multi.in-edges");
                    gpus[d].launch(
                        stream,
                        &KernelSpec::balanced(
                            "multi.gather",
                            work[i].active_in_edges,
                            2.0,
                            work[i].active_in_edges * (sizes.in_edge_bytes() + sizes.gather),
                            work[i].active_in_edges,
                        ),
                    );
                }
                barrier_observed(&mut gpus, &mut global, "gather", &self.observer);
            }
            // Stage B: apply on owners.
            for (i, _sh) in shards.iter().enumerate() {
                if !work[i].is_active() {
                    continue;
                }
                let d = owner(i);
                let stream = streams[d][i % streams[d].len()];
                gpus[d].launch(
                    stream,
                    &KernelSpec::balanced(
                        "multi.apply",
                        work[i].active_vertices,
                        4.0,
                        work[i].active_vertices * (sizes.vertex_value + sizes.gather),
                        0,
                    ),
                );
            }
            barrier_observed(&mut gpus, &mut global, "apply", &self.observer);
            // Stage C: scatter/activate on owners, then cross-device
            // exchange of changed vertex values + activation bits.
            for (i, sh) in shards.iter().enumerate() {
                if work[i].out_edges_of_changed == 0 {
                    continue;
                }
                let d = owner(i);
                let stream = streams[d][i % streams[d].len()];
                gpus[d].h2d(
                    stream,
                    sh.num_out_edges() * sizes.out_edge_bytes(),
                    "multi.out-edges",
                );
                gpus[d].launch(
                    stream,
                    &KernelSpec::balanced(
                        "multi.activate",
                        work[i].out_edges_of_changed,
                        1.0,
                        work[i].out_edges_of_changed * 4,
                        work[i].out_edges_of_changed,
                    ),
                );
            }
            // Exchange: each owner downloads its changed values; every
            // device uploads the union of the *other* owners' changes.
            let mut changed_per_gpu = vec![0u64; ngpu];
            for (i, sh) in shards.iter().enumerate() {
                changed_per_gpu[owner(i)] +=
                    changed.count_range(sh.interval.start, sh.interval.end);
            }
            let total_changed: u64 = changed_per_gpu.iter().sum();
            if ngpu > 1 {
                for (d, g) in gpus.iter_mut().enumerate() {
                    let s = streams[d][0];
                    let down = changed_per_gpu[d] * (sizes.vertex_value + 4);
                    let up = (total_changed - changed_per_gpu[d]) * (sizes.vertex_value + 4);
                    if down > 0 {
                        g.d2h(s, down, "multi.exchange.down");
                        exchange_bytes += down;
                    }
                    if up > 0 {
                        g.h2d(s, up, "multi.exchange.up");
                        exchange_bytes += up;
                    }
                }
            } else {
                let d2h: u64 = total_changed.div_ceil(8);
                gpus[0].d2h(streams[0][0], d2h, "multi.frontier.bits");
            }
            barrier_observed(&mut gpus, &mut global, "exchange", &self.observer);

            let processed = work.iter().filter(|w| w.is_active()).count() as u32;
            let it = IterationStats {
                frontier_size: frontier.count(),
                gathered_edges: work.iter().map(|w| w.active_in_edges).sum(),
                changed: changed.count(),
                activated,
                shards_processed: processed,
                shards_skipped: shards.len() as u32 - processed,
            };
            let (span_start, span_end) = (iter_start.as_nanos(), global.as_nanos());
            self.observer.span(|| SpanEvent {
                track: "multi",
                lane: "iterations".to_string(),
                name: format!("iteration {iter}"),
                start_ns: span_start,
                dur_ns: span_end - span_start,
                fields: vec![
                    ("frontier_size", it.frontier_size.into()),
                    ("changed", it.changed.into()),
                    ("shards_processed", it.shards_processed.into()),
                    ("shards_skipped", it.shards_skipped.into()),
                ],
            });
            per_iteration.push(it);
            frontier = next;
            iter += 1;
        }

        // Final download from owners.
        for (d, g) in gpus.iter_mut().enumerate() {
            let owned: u64 = shards
                .iter()
                .enumerate()
                .filter(|(i, _)| owner(*i) == d)
                .map(|(_, sh)| sh.num_vertices())
                .sum();
            g.d2h(streams[d][0], owned * sizes.vertex_value, "multi.final");
        }
        barrier_observed(&mut gpus, &mut global, "final", &self.observer);
        for (d, g) in gpus.iter().enumerate() {
            self.observer
                .snapshot(&format!("gpu{d}"), || g.metrics().snapshot());
        }

        let stats = MultiRunStats {
            num_gpus: self.num_gpus,
            iterations: iter,
            elapsed: global,
            per_gpu_memcpy: gpus.iter().map(|g| g.stats().memcpy_busy).collect(),
            per_gpu_kernel: gpus.iter().map(|g| g.stats().kernel_busy).collect(),
            exchange_bytes,
            num_shards: shards.len(),
            per_iteration,
        };
        Ok(MultiRunResult {
            vertex_values,
            edge_values,
            stats,
        })
    }
}

/// Advance all devices to their next barrier; return the stage duration
/// (the slowest device's progress — devices run concurrently).
fn barrier(gpus: &mut [Gpu]) -> SimDuration {
    let mut stage = SimDuration::ZERO;
    for g in gpus.iter_mut() {
        let before = g.elapsed();
        g.synchronize();
        stage = stage.max(g.elapsed() - before);
    }
    stage
}

/// [`barrier`], plus a `"multi"`-track instant marking where the aligned
/// global clock lands after the stage.
fn barrier_observed(
    gpus: &mut [Gpu],
    global: &mut SimDuration,
    stage: &'static str,
    observer: &Observer,
) {
    *global += barrier(gpus);
    let at = global.as_nanos();
    observer.instant(|| InstantEvent {
        track: "multi",
        lane: "barriers".to_string(),
        name: format!("barrier {stage}"),
        at_ns: at,
        fields: vec![("stage", stage.into())],
    });
}

/// Helper to assemble one [`Shard`]'s byte volume under a size model (used
/// by scaling analyses).
pub fn shard_stream_bytes(sizes: &SizeModel, sh: &Shard) -> u64 {
    sizes.shard_bytes(sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GraphReduce;
    use crate::options::Options;
    use gr_graph::gen;

    struct Cc;

    impl GasProgram for Cc {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "cc"
        }

        fn init_vertex(&self, v: u32, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::rmat_g500(11, 30_000, 17).symmetrize())
    }

    #[test]
    fn multi_gpu_matches_single_device_results() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let single = GraphReduce::new(Cc, &l, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        for n in [1u32, 2, 4] {
            let multi = MultiGraphReduce::new(Cc, &l, plat.clone(), n)
                .run()
                .unwrap();
            assert_eq!(multi.vertex_values, single.vertex_values, "{n} GPUs");
            assert_eq!(multi.stats.num_gpus, n);
            assert_eq!(multi.stats.per_gpu_memcpy.len(), n as usize);
        }
    }

    #[test]
    fn more_gpus_reduce_wall_time_on_streaming_runs() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14); // heavy sharding
        let one = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
            .run()
            .unwrap();
        let four = MultiGraphReduce::new(Cc, &l, plat, 4).run().unwrap();
        assert!(
            four.stats.elapsed < one.stats.elapsed,
            "4 GPUs {:?} vs 1 GPU {:?}",
            four.stats.elapsed,
            one.stats.elapsed
        );
        assert!(four.stats.exchange_bytes > 0, "exchange traffic expected");
        assert_eq!(
            one.stats.exchange_bytes, 0,
            "single device exchanges nothing"
        );
    }

    #[test]
    fn scaling_is_sublinear_because_of_exchange() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let one = MultiGraphReduce::new(Cc, &l, plat.clone(), 1)
            .run()
            .unwrap();
        let eight = MultiGraphReduce::new(Cc, &l, plat, 8).run().unwrap();
        let speedup = one.stats.elapsed.as_secs_f64() / eight.stats.elapsed.as_secs_f64();
        assert!(speedup > 1.0 && speedup < 8.0, "speedup {speedup:.2}");
    }

    #[test]
    fn observer_tags_devices_and_marks_barriers() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let (obs, sink) = Observer::recording();
        let res = MultiGraphReduce::new(Cc, &l, plat, 2)
            .with_observer(obs)
            .run()
            .unwrap();
        let rec = sink.recorded();
        // Every device's sim lanes carry its tag.
        assert!(rec
            .spans
            .iter()
            .any(|s| s.track == "sim" && s.lane.starts_with("gpu0/")));
        assert!(rec
            .spans
            .iter()
            .any(|s| s.track == "sim" && s.lane.starts_with("gpu1/")));
        // BSP barriers and iteration windows land on the multi track.
        let barriers = rec
            .instants
            .iter()
            .filter(|i| i.track == "multi" && i.lane == "barriers")
            .count();
        // init + final + (gather, apply, exchange) per iteration.
        assert_eq!(barriers as u32, 2 + 3 * res.stats.iterations);
        let iters = rec
            .spans
            .iter()
            .filter(|s| s.track == "multi" && s.lane == "iterations")
            .count() as u32;
        assert_eq!(iters, res.stats.iterations);
        // One end-of-run metrics snapshot per device.
        assert_eq!(
            rec.snapshots
                .iter()
                .filter(|(scope, _)| scope.starts_with("gpu"))
                .count(),
            2
        );
    }

    #[test]
    fn iteration_counts_match_single_device() {
        let l = layout();
        let plat = Platform::paper_node_scaled(1 << 14);
        let single = GraphReduce::new(Cc, &l, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let multi = MultiGraphReduce::new(Cc, &l, plat, 3).run().unwrap();
        assert_eq!(multi.stats.iterations, single.stats.iterations);
        let s: Vec<u64> = single.stats.frontier_sizes();
        let m: Vec<u64> = multi
            .stats
            .per_iteration
            .iter()
            .map(|i| i.frontier_size)
            .collect();
        assert_eq!(s, m);
    }
}

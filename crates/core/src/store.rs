//! Out-of-host-core shard storage: the rung *below* host fallback on the
//! memory governor's ladder.
//!
//! When the working set exceeds even host RAM, the governor evicts shard
//! topology to a [`ShardStore`] and streams it back GraphChi-style through
//! the chunked-transfer staging path, charging the cost model a storage
//! read per load instead of pretending the host holds everything. Two
//! implementations ship: [`MemShardStore`] (tests, and a stand-in for a
//! fast object cache) and [`FileShardStore`] (one checksummed file per
//! shard). See `docs/DURABILITY.md` and `docs/MEMORY.md`.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gr_graph::GraphLayout;
use gr_graph::Shard;

use crate::snapshot::fnv1a;

/// Magic bytes opening every file-backed shard blob.
pub const SHARD_MAGIC: [u8; 4] = *b"GRSH";

/// Why a shard could not be spilled or loaded. Like
/// [`SnapshotError`](crate::snapshot::SnapshotError), every variant names
/// the location involved and read-side failures carry byte offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O operation failed for a shard blob.
    Io {
        shard: u32,
        path: PathBuf,
        op: &'static str,
        detail: String,
    },
    /// A shard blob ended early (`offset` = where decoding stopped).
    ShortRead {
        shard: u32,
        path: PathBuf,
        offset: u64,
        needed: u64,
    },
    /// A shard blob failed its header or checksum validation.
    Corrupt {
        shard: u32,
        path: PathBuf,
        what: &'static str,
    },
    /// The store has no blob for this shard (a load before any spill —
    /// always an engine bug, never user error).
    Missing { shard: u32 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                shard,
                path,
                op,
                detail,
            } => write!(
                f,
                "shard {shard} store {op} failed for {}: {detail}",
                path.display()
            ),
            StoreError::ShortRead {
                shard,
                path,
                offset,
                needed,
            } => write!(
                f,
                "shard {shard} blob {} truncated: needed {needed} more bytes \
                 (at byte offset {offset})",
                path.display()
            ),
            StoreError::Corrupt { shard, path, what } => {
                write!(
                    f,
                    "shard {shard} blob {} corrupt: bad {what}",
                    path.display()
                )
            }
            StoreError::Missing { shard } => {
                write!(f, "shard {shard} was never spilled to the store")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Where evicted shards live when the graph does not fit in host memory.
///
/// Implementations must be safe to call from the single-threaded engine
/// loop but are `Send + Sync` so one store can back a future multi-device
/// run. Payloads are opaque bytes to the store; the engine frames them
/// (`shard_payload`) and verifies integrity on the way back in.
pub trait ShardStore: Send + Sync {
    /// Short human tag for decision logs and reports ("mem", "file").
    fn name(&self) -> &'static str;

    /// Persist `payload` for `shard`, replacing any previous blob.
    fn put(&self, shard: u32, payload: &[u8]) -> Result<(), StoreError>;

    /// Fetch the blob previously stored for `shard`.
    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError>;

    /// Whether a blob exists for `shard`.
    fn contains(&self, shard: u32) -> bool;
}

/// Cloneable handle wrapping a [`ShardStore`], mirroring
/// [`PartitionLogicHandle`](crate::options::PartitionLogicHandle) so
/// `Options` stays `Clone`.
#[derive(Clone)]
pub struct ShardStoreHandle(pub Arc<dyn ShardStore>);

impl ShardStoreHandle {
    pub fn new<S: ShardStore + 'static>(store: S) -> Self {
        ShardStoreHandle(Arc::new(store))
    }
}

impl fmt::Debug for ShardStoreHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardStoreHandle({})", self.0.name())
    }
}

impl std::ops::Deref for ShardStoreHandle {
    type Target = dyn ShardStore;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// In-memory store: a mutexed map. Useful in tests and as the model
/// implementation — it exercises every engine spill path with zero disk.
#[derive(Default)]
pub struct MemShardStore {
    blobs: Mutex<HashMap<u32, Vec<u8>>>,
}

impl MemShardStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ShardStore for MemShardStore {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn put(&self, shard: u32, payload: &[u8]) -> Result<(), StoreError> {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .insert(shard, payload.to_vec());
        Ok(())
    }

    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError> {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .get(&shard)
            .cloned()
            .ok_or(StoreError::Missing { shard })
    }

    fn contains(&self, shard: u32) -> bool {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .contains_key(&shard)
    }
}

/// File-backed store: one blob per shard under a directory, each framed
/// `GRSH | shard u32 | len u64 | payload | fnv1a u64` and written
/// temp-file + rename like snapshots, so a crash mid-spill never leaves a
/// readable-but-wrong blob.
pub struct FileShardStore {
    dir: PathBuf,
}

impl FileShardStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileShardStore { dir: dir.into() }
    }

    fn path_for(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard:06}.grsh"))
    }

    fn io(&self, shard: u32, path: &Path, op: &'static str, e: std::io::Error) -> StoreError {
        let _ = self;
        StoreError::Io {
            shard,
            path: path.to_path_buf(),
            op,
            detail: e.to_string(),
        }
    }
}

impl ShardStore for FileShardStore {
    fn name(&self) -> &'static str {
        "file"
    }

    fn put(&self, shard: u32, payload: &[u8]) -> Result<(), StoreError> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| self.io(shard, &self.dir, "create directory", e))?;
        let finalp = self.path_for(shard);
        let tmp = finalp.with_extension("grsh.tmp");
        let mut framed = Vec::with_capacity(payload.len() + 24);
        framed.extend_from_slice(&SHARD_MAGIC);
        framed.extend_from_slice(&shard.to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(payload);
        let checksum = fnv1a(&framed);
        framed.extend_from_slice(&checksum.to_le_bytes());
        {
            let mut f = fs::File::create(&tmp).map_err(|e| self.io(shard, &tmp, "create", e))?;
            f.write_all(&framed)
                .map_err(|e| self.io(shard, &tmp, "write", e))?;
            f.sync_all().map_err(|e| self.io(shard, &tmp, "sync", e))?;
        }
        fs::rename(&tmp, &finalp).map_err(|e| self.io(shard, &finalp, "rename into place", e))?;
        Ok(())
    }

    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError> {
        let path = self.path_for(shard);
        let buf = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::Missing { shard })
            }
            Err(e) => return Err(self.io(shard, &path, "read", e)),
        };
        // Frame: 4 magic + 4 shard + 8 len + payload + 8 checksum.
        if buf.len() < 24 {
            return Err(StoreError::ShortRead {
                shard,
                path,
                offset: buf.len() as u64,
                needed: (24 - buf.len()) as u64,
            });
        }
        if buf[..4] != SHARD_MAGIC {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "magic",
            });
        }
        let stored_shard = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if stored_shard != shard {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "shard id",
            });
        }
        let len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let total = 16usize.checked_add(len).and_then(|t| t.checked_add(8));
        match total {
            Some(t) if t == buf.len() => {}
            Some(t) if t > buf.len() => {
                return Err(StoreError::ShortRead {
                    shard,
                    path,
                    offset: buf.len() as u64,
                    needed: (t - buf.len()) as u64,
                })
            }
            _ => {
                return Err(StoreError::Corrupt {
                    shard,
                    path,
                    what: "payload length",
                })
            }
        }
        let body = &buf[..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "checksum",
            });
        }
        Ok(body[16..].to_vec())
    }

    fn contains(&self, shard: u32) -> bool {
        self.path_for(shard).exists()
    }
}

/// Serialize a shard's topology — its slice of the CSC/CSR adjacency as
/// `(neighbor, edge id)` pairs over the owned vertex interval — into the
/// bytes the store holds. This is what a real out-of-core engine would
/// evict; sizes track the size model's per-shard footprint, so spilled
/// bytes in reports are honest.
pub(crate) fn shard_payload(layout: &GraphLayout, shard: &Shard) -> Vec<u8> {
    let in_count = shard.in_edges.len();
    let out_count = shard.out_edges.len();
    let mut out = Vec::with_capacity(16 + (in_count + out_count) * 8);
    out.extend_from_slice(&(in_count as u64).to_le_bytes());
    out.extend_from_slice(&(out_count as u64).to_le_bytes());
    for v in shard.interval.start..shard.interval.end {
        for (nbr, eid) in layout.csc.entries(v) {
            out.extend_from_slice(&nbr.to_le_bytes());
            out.extend_from_slice(&eid.to_le_bytes());
        }
        for (nbr, eid) in layout.csr.entries(v) {
            out.extend_from_slice(&nbr.to_le_bytes());
            out.extend_from_slice(&eid.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-store-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn mem_store_round_trips_and_reports_missing() {
        let s = MemShardStore::new();
        assert!(!s.contains(3));
        assert_eq!(s.get(3), Err(StoreError::Missing { shard: 3 }));
        s.put(3, b"topology").unwrap();
        assert!(s.contains(3));
        assert_eq!(s.get(3).unwrap(), b"topology");
        s.put(3, b"replaced").unwrap();
        assert_eq!(s.get(3).unwrap(), b"replaced");
    }

    #[test]
    fn file_store_round_trips_through_disk() {
        let dir = tmpdir("rt");
        let s = FileShardStore::new(&dir);
        assert_eq!(s.get(0), Err(StoreError::Missing { shard: 0 }));
        s.put(0, &[7u8; 1000]).unwrap();
        s.put(1, &[]).unwrap();
        assert!(s.contains(0) && s.contains(1) && !s.contains(2));
        assert_eq!(s.get(0).unwrap(), vec![7u8; 1000]);
        assert_eq!(s.get(1).unwrap(), Vec::<u8>::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_detects_corruption_truncation_and_id_swaps() {
        let dir = tmpdir("corrupt");
        let s = FileShardStore::new(&dir);
        s.put(5, b"payload bytes here").unwrap();
        let path = dir.join("shard-000005.grsh");
        let good = fs::read(&path).unwrap();

        // Bit flip in the payload -> checksum.
        let mut bad = good.clone();
        bad[18] ^= 1;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            s.get(5),
            Err(StoreError::Corrupt {
                what: "checksum",
                ..
            })
        ));

        // Truncation -> short read with offsets.
        fs::write(&path, &good[..good.len() - 4]).unwrap();
        match s.get(5) {
            Err(StoreError::ShortRead { needed, .. }) => assert_eq!(needed, 4),
            other => panic!("expected short read, got {other:?}"),
        }

        // A blob renamed over another shard's slot -> id mismatch.
        fs::write(&path, &good).unwrap();
        fs::copy(&path, dir.join("shard-000009.grsh")).unwrap();
        assert!(matches!(
            s.get(9),
            Err(StoreError::Corrupt {
                what: "shard id",
                ..
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handle_is_cloneable_and_debuggable() {
        let h = ShardStoreHandle::new(MemShardStore::new());
        let h2 = h.clone();
        h.put(1, b"x").unwrap();
        assert!(h2.contains(1), "clones share the underlying store");
        assert_eq!(format!("{h:?}"), "ShardStoreHandle(mem)");
    }
}

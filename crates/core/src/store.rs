//! Out-of-host-core shard storage: the rung *below* host fallback on the
//! memory governor's ladder.
//!
//! When the working set exceeds even host RAM, the governor evicts shard
//! topology to a [`ShardStore`] and streams it back GraphChi-style through
//! the chunked-transfer staging path, charging the cost model a storage
//! read per load instead of pretending the host holds everything. Two
//! implementations ship: [`MemShardStore`] (tests, and a stand-in for a
//! fast object cache) and [`FileShardStore`] (one checksummed file per
//! shard). See `docs/DURABILITY.md` and `docs/MEMORY.md`.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gr_graph::compress::{unzigzag, zigzag, BitReader, BitWriter};
use gr_graph::CompressionCodec;
use gr_graph::GraphLayout;
use gr_graph::Shard;

use crate::snapshot::fnv1a;

/// Magic bytes opening every v1 (uncompressed) file-backed shard blob.
pub const SHARD_MAGIC: [u8; 4] = *b"GRSH";

/// Magic bytes opening every v2 (codec-framed) file-backed shard blob.
pub const SHARD_MAGIC_V2: [u8; 4] = *b"GRS2";

/// Why a shard could not be spilled or loaded. Like
/// [`SnapshotError`](crate::snapshot::SnapshotError), every variant names
/// the location involved and read-side failures carry byte offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O operation failed for a shard blob.
    Io {
        shard: u32,
        path: PathBuf,
        op: &'static str,
        detail: String,
    },
    /// A shard blob ended early (`offset` = where decoding stopped).
    ShortRead {
        shard: u32,
        path: PathBuf,
        offset: u64,
        needed: u64,
    },
    /// A shard blob failed its header or checksum validation.
    Corrupt {
        shard: u32,
        path: PathBuf,
        what: &'static str,
    },
    /// The store has no blob for this shard (a load before any spill —
    /// always an engine bug, never user error).
    Missing { shard: u32 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                shard,
                path,
                op,
                detail,
            } => write!(
                f,
                "shard {shard} store {op} failed for {}: {detail}",
                path.display()
            ),
            StoreError::ShortRead {
                shard,
                path,
                offset,
                needed,
            } => write!(
                f,
                "shard {shard} blob {} truncated: needed {needed} more bytes \
                 (at byte offset {offset})",
                path.display()
            ),
            StoreError::Corrupt { shard, path, what } => {
                write!(
                    f,
                    "shard {shard} blob {} corrupt: bad {what}",
                    path.display()
                )
            }
            StoreError::Missing { shard } => {
                write!(f, "shard {shard} was never spilled to the store")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Where evicted shards live when the graph does not fit in host memory.
///
/// Implementations must be safe to call from the single-threaded engine
/// loop but are `Send + Sync` so one store can back a future multi-device
/// run. Payloads are opaque bytes to the store; the engine frames them
/// (`shard_payload`) and verifies integrity on the way back in.
pub trait ShardStore: Send + Sync {
    /// Short human tag for decision logs and reports ("mem", "file").
    fn name(&self) -> &'static str;

    /// Persist `payload` for `shard`, replacing any previous blob.
    /// Returns the payload bytes actually held by the store — smaller
    /// than `payload.len()` when the store compresses, so spilled-byte
    /// accounting reflects what really hit the medium.
    fn put(&self, shard: u32, payload: &[u8]) -> Result<u64, StoreError>;

    /// Fetch the blob previously stored for `shard`.
    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError>;

    /// Whether a blob exists for `shard`.
    fn contains(&self, shard: u32) -> bool;
}

/// Cloneable handle wrapping a [`ShardStore`], mirroring
/// [`PartitionLogicHandle`](crate::options::PartitionLogicHandle) so
/// `Options` stays `Clone`.
#[derive(Clone)]
pub struct ShardStoreHandle(pub Arc<dyn ShardStore>);

impl ShardStoreHandle {
    pub fn new<S: ShardStore + 'static>(store: S) -> Self {
        ShardStoreHandle(Arc::new(store))
    }
}

impl fmt::Debug for ShardStoreHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardStoreHandle({})", self.0.name())
    }
}

impl std::ops::Deref for ShardStoreHandle {
    type Target = dyn ShardStore;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// In-memory store: a mutexed map. Useful in tests and as the model
/// implementation — it exercises every engine spill path with zero disk.
#[derive(Default)]
pub struct MemShardStore {
    blobs: Mutex<HashMap<u32, Vec<u8>>>,
}

impl MemShardStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ShardStore for MemShardStore {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn put(&self, shard: u32, payload: &[u8]) -> Result<u64, StoreError> {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .insert(shard, payload.to_vec());
        Ok(payload.len() as u64)
    }

    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError> {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .get(&shard)
            .cloned()
            .ok_or(StoreError::Missing { shard })
    }

    fn contains(&self, shard: u32) -> bool {
        self.blobs
            .lock()
            .expect("shard store poisoned")
            .contains_key(&shard)
    }
}

/// File-backed store: one blob per shard under a directory, written
/// temp-file + rename like snapshots, so a crash mid-spill never leaves a
/// readable-but-wrong blob. Two frame versions coexist:
///
/// - v1 (no codec): `GRSH | shard u32 | len u64 | payload | fnv1a u64`;
/// - v2 (codec armed): `GRS2 | shard u32 | clen u64 | rawlen u64 |
///   codec u8 | zpayload | fnv1a u64`, where `zpayload` is the payload's
///   u32 little-endian words stride-2 delta-coded (shard payloads
///   interleave `(neighbor, edge id)` pairs, so same-lane deltas are
///   small), zig-zagged, and run through the named [`CompressionCodec`].
///
/// Reads dispatch on the magic, so a store armed with a codec still
/// loads blobs an uncompressed run left behind.
pub struct FileShardStore {
    dir: PathBuf,
    codec: Option<CompressionCodec>,
}

impl FileShardStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileShardStore {
            dir: dir.into(),
            codec: None,
        }
    }

    /// A store writing v2 codec frames (`None` behaves like [`new`]).
    ///
    /// [`new`]: FileShardStore::new
    pub fn with_codec(dir: impl Into<PathBuf>, codec: Option<CompressionCodec>) -> Self {
        FileShardStore {
            dir: dir.into(),
            codec,
        }
    }

    fn path_for(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard:06}.grsh"))
    }

    fn io(&self, shard: u32, path: &Path, op: &'static str, e: std::io::Error) -> StoreError {
        let _ = self;
        StoreError::Io {
            shard,
            path: path.to_path_buf(),
            op,
            detail: e.to_string(),
        }
    }
}

impl ShardStore for FileShardStore {
    fn name(&self) -> &'static str {
        "file"
    }

    fn put(&self, shard: u32, payload: &[u8]) -> Result<u64, StoreError> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| self.io(shard, &self.dir, "create directory", e))?;
        let finalp = self.path_for(shard);
        let tmp = finalp.with_extension("grsh.tmp");
        let (mut framed, stored_len) = match self.codec {
            None => {
                let mut framed = Vec::with_capacity(payload.len() + 24);
                framed.extend_from_slice(&SHARD_MAGIC);
                framed.extend_from_slice(&shard.to_le_bytes());
                framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                framed.extend_from_slice(payload);
                (framed, payload.len() as u64)
            }
            Some(codec) => {
                let z = compress_payload(codec, payload);
                let mut framed = Vec::with_capacity(z.len() + 33);
                framed.extend_from_slice(&SHARD_MAGIC_V2);
                framed.extend_from_slice(&shard.to_le_bytes());
                framed.extend_from_slice(&(z.len() as u64).to_le_bytes());
                framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                framed.push(codec_tag(codec));
                let stored = z.len() as u64;
                framed.extend_from_slice(&z);
                (framed, stored)
            }
        };
        let checksum = fnv1a(&framed);
        framed.extend_from_slice(&checksum.to_le_bytes());
        {
            let mut f = fs::File::create(&tmp).map_err(|e| self.io(shard, &tmp, "create", e))?;
            f.write_all(&framed)
                .map_err(|e| self.io(shard, &tmp, "write", e))?;
            f.sync_all().map_err(|e| self.io(shard, &tmp, "sync", e))?;
        }
        fs::rename(&tmp, &finalp).map_err(|e| self.io(shard, &finalp, "rename into place", e))?;
        Ok(stored_len)
    }

    fn get(&self, shard: u32) -> Result<Vec<u8>, StoreError> {
        let path = self.path_for(shard);
        let buf = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::Missing { shard })
            }
            Err(e) => return Err(self.io(shard, &path, "read", e)),
        };
        // Both frames open `magic(4) | shard(4)` and close `fnv1a(8)`;
        // dispatch on the magic so either vintage reads back.
        if buf.len() < 24 {
            return Err(StoreError::ShortRead {
                shard,
                path,
                offset: buf.len() as u64,
                needed: (24 - buf.len()) as u64,
            });
        }
        let v2 = if buf[..4] == SHARD_MAGIC {
            false
        } else if buf[..4] == SHARD_MAGIC_V2 {
            true
        } else {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "magic",
            });
        };
        let stored_shard = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if stored_shard != shard {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "shard id",
            });
        }
        // Header past the shard id: v1 is `len u64`; v2 is
        // `clen u64 | rawlen u64 | codec u8`.
        let header = if v2 { 25usize } else { 16 };
        if buf.len() < header + 8 {
            return Err(StoreError::ShortRead {
                shard,
                path,
                offset: buf.len() as u64,
                needed: (header + 8 - buf.len()) as u64,
            });
        }
        let len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let total = header.checked_add(len).and_then(|t| t.checked_add(8));
        match total {
            Some(t) if t == buf.len() => {}
            Some(t) if t > buf.len() => {
                return Err(StoreError::ShortRead {
                    shard,
                    path,
                    offset: buf.len() as u64,
                    needed: (t - buf.len()) as u64,
                })
            }
            _ => {
                return Err(StoreError::Corrupt {
                    shard,
                    path,
                    what: "payload length",
                })
            }
        }
        let body = &buf[..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "checksum",
            });
        }
        if !v2 {
            return Ok(body[16..].to_vec());
        }
        let rawlen = u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize;
        let Some(codec) = codec_from_tag(buf[24]) else {
            return Err(StoreError::Corrupt {
                shard,
                path,
                what: "codec tag",
            });
        };
        Ok(decompress_payload(codec, &body[header..], rawlen))
    }

    fn contains(&self, shard: u32) -> bool {
        self.path_for(shard).exists()
    }
}

/// Frame byte naming the v2 codec: 0 = varint, `k` = ζ_k.
pub(crate) fn codec_tag(codec: CompressionCodec) -> u8 {
    match codec {
        CompressionCodec::Varint => 0,
        CompressionCodec::Zeta(k) => k.clamp(1, 8) as u8,
    }
}

pub(crate) fn codec_from_tag(tag: u8) -> Option<CompressionCodec> {
    match tag {
        0 => Some(CompressionCodec::Varint),
        k @ 1..=8 => Some(CompressionCodec::Zeta(k as u32)),
        _ => None,
    }
}

/// Compress an opaque shard payload for a v2 frame: the payload's u32
/// little-endian words stride-2 delta-coded against the previous word in
/// the same lane (payloads interleave `(neighbor, eid)` pairs, so lane
/// deltas are the same small gaps the shard codecs were built for),
/// zig-zagged, and written through `codec`. A non-multiple-of-4 tail
/// rides as raw bytes after the coded words.
pub(crate) fn compress_payload(codec: CompressionCodec, payload: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let words = payload.len() / 4;
    let mut prev = [0u32; 2];
    for i in 0..words {
        let word = u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
        codec.write(&mut w, zigzag(word as i64 - prev[i % 2] as i64));
        prev[i % 2] = word;
    }
    for &b in &payload[words * 4..] {
        w.write_bits(b as u64, 8);
    }
    let bit_len = w.bit_len();
    let mut out = Vec::with_capacity(bit_len.div_ceil(8) as usize);
    for word in w.finish() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(bit_len.div_ceil(8) as usize);
    out
}

/// Exact inverse of [`compress_payload`]; `rawlen` comes from the frame
/// header (the checksum has already vouched for both by the time this
/// runs).
pub(crate) fn decompress_payload(codec: CompressionCodec, z: &[u8], rawlen: usize) -> Vec<u8> {
    let mut bits = vec![0u64; z.len().div_ceil(8)];
    for (i, &b) in z.iter().enumerate() {
        bits[i / 8] |= (b as u64) << ((i % 8) * 8);
    }
    let mut r = BitReader::new(&bits, 0);
    let words = rawlen / 4;
    let mut out = Vec::with_capacity(rawlen);
    let mut prev = [0u32; 2];
    for i in 0..words {
        let word = (prev[i % 2] as i64 + unzigzag(codec.read(&mut r))) as u32;
        out.extend_from_slice(&word.to_le_bytes());
        prev[i % 2] = word;
    }
    for _ in 0..rawlen % 4 {
        out.push(r.read_bits(8) as u8);
    }
    out
}

/// Serialize a shard's topology — its slice of the CSC/CSR adjacency as
/// `(neighbor, edge id)` pairs over the owned vertex interval — into the
/// bytes the store holds. This is what a real out-of-core engine would
/// evict; sizes track the size model's per-shard footprint, so spilled
/// bytes in reports are honest.
pub(crate) fn shard_payload(layout: &GraphLayout, shard: &Shard) -> Vec<u8> {
    let in_count = shard.in_edges.len();
    let out_count = shard.out_edges.len();
    let mut out = Vec::with_capacity(16 + (in_count + out_count) * 8);
    out.extend_from_slice(&(in_count as u64).to_le_bytes());
    out.extend_from_slice(&(out_count as u64).to_le_bytes());
    for v in shard.interval.start..shard.interval.end {
        for (nbr, eid) in layout.csc.entries(v) {
            out.extend_from_slice(&nbr.to_le_bytes());
            out.extend_from_slice(&eid.to_le_bytes());
        }
        for (nbr, eid) in layout.csr.entries(v) {
            out.extend_from_slice(&nbr.to_le_bytes());
            out.extend_from_slice(&eid.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-store-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn mem_store_round_trips_and_reports_missing() {
        let s = MemShardStore::new();
        assert!(!s.contains(3));
        assert_eq!(s.get(3), Err(StoreError::Missing { shard: 3 }));
        s.put(3, b"topology").unwrap();
        assert!(s.contains(3));
        assert_eq!(s.get(3).unwrap(), b"topology");
        s.put(3, b"replaced").unwrap();
        assert_eq!(s.get(3).unwrap(), b"replaced");
    }

    #[test]
    fn file_store_round_trips_through_disk() {
        let dir = tmpdir("rt");
        let s = FileShardStore::new(&dir);
        assert_eq!(s.get(0), Err(StoreError::Missing { shard: 0 }));
        s.put(0, &[7u8; 1000]).unwrap();
        s.put(1, &[]).unwrap();
        assert!(s.contains(0) && s.contains(1) && !s.contains(2));
        assert_eq!(s.get(0).unwrap(), vec![7u8; 1000]);
        assert_eq!(s.get(1).unwrap(), Vec::<u8>::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_detects_corruption_truncation_and_id_swaps() {
        let dir = tmpdir("corrupt");
        let s = FileShardStore::new(&dir);
        s.put(5, b"payload bytes here").unwrap();
        let path = dir.join("shard-000005.grsh");
        let good = fs::read(&path).unwrap();

        // Bit flip in the payload -> checksum.
        let mut bad = good.clone();
        bad[18] ^= 1;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            s.get(5),
            Err(StoreError::Corrupt {
                what: "checksum",
                ..
            })
        ));

        // Truncation -> short read with offsets.
        fs::write(&path, &good[..good.len() - 4]).unwrap();
        match s.get(5) {
            Err(StoreError::ShortRead { needed, .. }) => assert_eq!(needed, 4),
            other => panic!("expected short read, got {other:?}"),
        }

        // A blob renamed over another shard's slot -> id mismatch.
        fs::write(&path, &good).unwrap();
        fs::copy(&path, dir.join("shard-000009.grsh")).unwrap();
        assert!(matches!(
            s.get(9),
            Err(StoreError::Corrupt {
                what: "shard id",
                ..
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_frames_round_trip_and_shrink_real_payloads() {
        let layout = GraphLayout::build(&gr_graph::gen::rmat_g500(9, 4096, 7).symmetrize());
        let shards = gr_graph::partition_into_shards(&layout, &gr_graph::EvenEdgePartition, 4);
        let dir = tmpdir("v2");
        for codec in [CompressionCodec::Varint, CompressionCodec::Zeta(3)] {
            let s = FileShardStore::with_codec(&dir, Some(codec));
            for (i, sh) in shards.iter().enumerate() {
                let payload = shard_payload(&layout, sh);
                let stored = s.put(i as u32, &payload).unwrap();
                assert!(
                    stored < payload.len() as u64,
                    "{}: stored {stored} >= raw {}",
                    codec.name(),
                    payload.len()
                );
                assert_eq!(s.get(i as u32).unwrap(), payload, "{}", codec.name());
            }
        }
        // Odd-length payloads (raw tail bytes) survive too.
        let s = FileShardStore::with_codec(&dir, Some(CompressionCodec::Varint));
        for odd in [b"x".as_slice(), b"seven by", b"payload bytes here!"] {
            s.put(9, odd).unwrap();
            assert_eq!(s.get(9).unwrap(), odd);
        }
        s.put(9, &[]).unwrap();
        assert_eq!(s.get(9).unwrap(), Vec::<u8>::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn codec_armed_store_still_reads_v1_blobs() {
        let dir = tmpdir("compat");
        let v1 = FileShardStore::new(&dir);
        assert_eq!(v1.put(2, b"written before the codec era").unwrap(), 28);
        let v2 = FileShardStore::with_codec(&dir, Some(CompressionCodec::Zeta(3)));
        assert!(v2.contains(2));
        assert_eq!(v2.get(2).unwrap(), b"written before the codec era");
        // And the reverse: a codec-less store reads v2 frames (the codec
        // rides in the frame, not the store config).
        v2.put(3, b"compressed frame").unwrap();
        assert_eq!(v1.get(3).unwrap(), b"compressed frame");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_frames_detect_truncation_and_bit_flips() {
        let dir = tmpdir("v2corrupt");
        let s = FileShardStore::with_codec(&dir, Some(CompressionCodec::Zeta(3)));
        s.put(5, b"payload bytes here, long enough to damage")
            .unwrap();
        let path = dir.join("shard-000005.grsh");
        let good = fs::read(&path).unwrap();

        // Bit flip inside the compressed payload -> checksum, never a
        // garbage decode.
        let mut bad = good.clone();
        bad[28] ^= 0x10;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            s.get(5),
            Err(StoreError::Corrupt {
                what: "checksum",
                ..
            })
        ));

        // Flip the codec tag (byte 24) -> checksum catches that too.
        let mut bad = good.clone();
        bad[24] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(s.get(5), Err(StoreError::Corrupt { .. })));

        // Truncation -> short read with offsets.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        match s.get(5) {
            Err(StoreError::ShortRead { needed, .. }) => assert_eq!(needed, 3),
            other => panic!("expected short read, got {other:?}"),
        }

        fs::write(&path, &good).unwrap();
        assert_eq!(
            s.get(5).unwrap(),
            b"payload bytes here, long enough to damage"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handle_is_cloneable_and_debuggable() {
        let h = ShardStoreHandle::new(MemShardStore::new());
        let h2 = h.clone();
        h.put(1, b"x").unwrap();
        assert!(h2.contains(1), "clones share the underlying store");
        assert_eq!(format!("{h:?}"), "ShardStoreHandle(mem)");
    }
}

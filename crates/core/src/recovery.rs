//! Fault-recovery policy and the engine's error type.
//!
//! The device substrate ([`gr_sim::fault`]) injects failures into the
//! `Gpu::try_*` entry points; this module defines what the engine *does*
//! about them. Transient faults are retried per-op with capped exponential
//! backoff (charged as simulated time, so recovery is visible in traces);
//! exhausted retries roll the iteration back to its checkpoint and replay
//! it; a permanently lost device either falls back to the host CPU
//! (single-GPU engine) or is evicted with its shards redistributed
//! (multi-GPU engine). Every decision lands in the observer's decision log
//! — one entry per injected fault.

use std::fmt;

use gr_sim::{OutOfMemory, SimDuration};

use crate::sizes::PlanError;
use crate::snapshot::SnapshotError;
use crate::store::StoreError;

/// How the engine reacts to injected (or real) device faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Per-op transient-fault retries before the iteration rolls back.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Upper bound on a single backoff stall.
    pub max_backoff: SimDuration,
    /// On permanent device loss, resume on the host CPU from the last
    /// checkpoint instead of failing the run (single-GPU engine only; the
    /// multi-GPU engine redistributes shards to surviving devices).
    pub host_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_micros(50),
            max_backoff: SimDuration::from_millis(1),
            host_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped at [`RecoveryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        (self.base_backoff * (1u64 << shift)).min(self.max_backoff)
    }

    /// A policy that never retries and never falls back — faults surface
    /// immediately as errors (fail-stop semantics, used by tests).
    pub fn fail_fast() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            host_fallback: false,
        }
    }
}

/// Why a GraphReduce run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The partition plan could not be formed (graph cannot fit the device
    /// under any shard count).
    Plan(PlanError),
    /// A device allocation failed even after the policy's retries — either
    /// real capacity exhaustion or sustained injected allocation pressure.
    Alloc(OutOfMemory),
    /// The device was permanently lost and the policy forbids (or the
    /// engine has no) fallback.
    DeviceLost,
    /// A transient fault persisted past every retry and replay the policy
    /// allows; `op` is the trace label of the operation that kept failing.
    Unrecoverable { op: &'static str },
    /// A durable checkpoint could not be written, or no usable snapshot
    /// could be read back on resume.
    Snapshot(SnapshotError),
    /// A spilled shard could not be stored or loaded back intact.
    Store(StoreError),
    /// The process was hard-killed (fault-injected `ProcessKill`) at this
    /// iteration boundary. A real SIGKILL never surfaces as an error — the
    /// process just dies — but the simulated kind must unwind cleanly so
    /// chaos tests can resume in the same process.
    Killed { iteration: u32 },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "planning failed: {e}"),
            EngineError::Alloc(e) => write!(f, "allocation failed: {e}"),
            EngineError::DeviceLost => write!(f, "device lost with no recovery path"),
            EngineError::Unrecoverable { op } => {
                write!(f, "fault on '{op}' persisted past retry/replay budget")
            }
            EngineError::Snapshot(e) => write!(f, "durable checkpoint failed: {e}"),
            EngineError::Store(e) => write!(f, "shard spill failed: {e}"),
            EngineError::Killed { iteration } => {
                write!(f, "process killed at iteration boundary {iteration}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::Alloc(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            EngineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<OutOfMemory> for EngineError {
    fn from(e: OutOfMemory) -> Self {
        EngineError::Alloc(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> Self {
        EngineError::Snapshot(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_micros(50));
        assert_eq!(p.backoff(2), SimDuration::from_micros(100));
        assert_eq!(p.backoff(3), SimDuration::from_micros(200));
        // 50us * 2^9 = 25.6ms — capped at 1ms.
        assert_eq!(p.backoff(10), SimDuration::from_millis(1));
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(p.backoff(u32::MAX), SimDuration::from_millis(1));
    }

    #[test]
    fn fail_fast_disables_everything() {
        let p = RecoveryPolicy::fail_fast();
        assert_eq!(p.max_retries, 0);
        assert!(!p.host_fallback);
        assert_eq!(p.backoff(1), SimDuration::ZERO);
    }

    #[test]
    fn errors_display_and_convert() {
        let oom = OutOfMemory {
            requested: 8,
            available: 0,
            capacity: 4,
        };
        let e: EngineError = oom.into();
        assert_eq!(e, EngineError::Alloc(oom));
        assert!(e.to_string().contains("requested 8 B"));
        assert!(EngineError::DeviceLost.to_string().contains("device lost"));
        assert!(EngineError::Unrecoverable { op: "in.topo" }
            .to_string()
            .contains("in.topo"));
    }
}

//! Runtime options: every optimization of Section 5 is independently
//! toggleable so the Figure 15 ablation (optimized vs unoptimized GR) and
//! the design-choice benches can isolate each mechanism.

use std::path::PathBuf;
use std::sync::Arc;

use gr_graph::{CompressionCodec, EvenEdgePartition, PartitionLogic};
use gr_sim::FaultPlan;

use crate::recovery::RecoveryPolicy;
use crate::snapshot::CheckpointPolicy;
use crate::store::{FileShardStore, ShardStore, ShardStoreHandle};

/// Shared handle to a partition logic plug-in (Section 4.2's Partition
/// Logic Table: "GraphReduce is able to take any user-provided
/// partitioning logic as a plug-in").
#[derive(Clone)]
pub struct PartitionLogicHandle(pub Arc<dyn PartitionLogic + Send + Sync>);

impl PartitionLogicHandle {
    pub fn new<L: PartitionLogic + Send + Sync + 'static>(logic: L) -> Self {
        PartitionLogicHandle(Arc::new(logic))
    }
}

impl Default for PartitionLogicHandle {
    fn default() -> Self {
        PartitionLogicHandle::new(EvenEdgePartition)
    }
}

impl std::fmt::Debug for PartitionLogicHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartitionLogic({})", self.0.name())
    }
}

impl std::ops::Deref for PartitionLogicHandle {
    type Target = dyn PartitionLogic + Send + Sync;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// Cost-model choice for the Gather phase (Section 3.1's hybrid model
/// ablation). The *results* are identical; the knob selects which kind of
/// parallelism the simulated kernels exploit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GatherMode {
    /// Edge-centric gatherMap + vertex-centric gatherReduce (the paper's
    /// hybrid default): one lane per in-edge, no atomics, then a contiguous
    /// per-vertex reduction.
    Hybrid,
    /// Pure vertex-centric: one lane per vertex walks its whole in-edge
    /// list — load-imbalanced on skewed graphs and serializes each list.
    VertexCentric,
    /// Pure edge-centric with atomic accumulation into the destination
    /// vertex — contended random atomics instead of the two-step reduce.
    EdgeCentricAtomic,
}

/// How streamed shard buffers cross PCIe (Section 3.2 closes with:
/// "certain performance benefits may exist through intelligent runtime
/// buffer-type selecting; we leave this exploration for the future work" —
/// this knob is that exploration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamingMode {
    /// Explicit `cudaMemcpyAsync` staging (the paper's choice).
    Explicit,
    /// Zero-copy pinned/UVA access for the *sequentially accessed*
    /// streaming buffers (all of GR's shard buffers are sequential by
    /// construction — the sorted layout of Section 4.2); random-access
    /// buffers remain device-resident either way.
    ZeroCopySequential,
}

/// Which host-side kernel implementation computes the *results* (the
/// simulated device timeline is unaffected — `ShardWork` counts, and
/// therefore every simulated cost, are identical across all variants).
///
/// The adaptive default mirrors Gunrock-style frontier-aware kernel
/// selection: a phase over a mostly-empty interval iterates only the set
/// bits of the frontier bitmap (word-skipping, O(active)), while a dense
/// interval is scanned contiguously (O(interval), parallel across host
/// threads when available).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HostKernels {
    /// Pick sparse or dense per shard per phase by comparing the
    /// interval's active population against its length (the default).
    #[default]
    Adaptive,
    /// Always scan the full interval (parallel when threads are available).
    Dense,
    /// Always iterate only the set bits.
    Sparse,
    /// The pre-adaptive reference path: serial O(interval) scans probing
    /// the bitmap per vertex. Kept as the wall-clock benchmark baseline
    /// and the differential-test oracle.
    Serial,
}

/// GraphReduce runtime configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Use multiple CUDA streams with double buffering so shard transfers
    /// overlap kernels and each other (Section 5.1). Off = one stream,
    /// fully serialized (the unoptimized baseline's execution mode).
    pub async_streams: bool,
    /// Spray each shard's sub-arrays over dynamically created streams so
    /// copy issue overheads and DMA latencies pipeline across Hyper-Q
    /// hardware queues (Section 5.1).
    pub spray: bool,
    /// Number of spray streams per shard copy when `spray` is on.
    pub spray_width: u32,
    /// Skip data movement and kernel launches for shards with no active
    /// vertices or edges (Section 5.2, dynamic frontier management).
    pub frontier_management: bool,
    /// Merge adjacent surviving GAS phases into one copy-in/copy-out cycle
    /// and drop phases the program does not define (Section 5.3).
    pub phase_fusion: bool,
    /// CTA-style load balancing (ModernGPU): kernels see balanced work
    /// regardless of degree skew. Off = per-block imbalance inflates
    /// kernel time on skewed shards.
    pub cta_load_balance: bool,
    /// Gather-phase programming model (hybrid is the paper's choice).
    pub gather_mode: GatherMode,
    /// Number of shards processed concurrently (the `K` of Equation (1)).
    /// The paper derives K = 2 for the K20c.
    pub concurrent_shards: u32,
    /// Override the shard count `P`; `None` derives the minimal P that
    /// satisfies Equation (1) for the device's memory.
    pub num_shards: Option<usize>,
    /// Keep shard buffers resident on the device when the whole working
    /// set fits (in-GPU-memory mode — how GR competes in Table 4).
    pub cache_resident: bool,
    /// Partition logic plug-in (Section 4.2's Partition Logic Table);
    /// defaults to the paper's load-balanced even-edge intervals.
    pub partition_logic: PartitionLogicHandle,
    /// Transfer technique for streamed shard buffers.
    pub streaming_mode: StreamingMode,
    /// Deterministic fault-injection schedule armed on the device before
    /// the run. [`FaultPlan::none`] (the default) adds zero ops and zero
    /// simulated time — the fault machinery costs one branch per device op.
    pub fault_plan: FaultPlan,
    /// What the engine does about injected (or real) device faults.
    pub recovery: RecoveryPolicy,
    /// Host-side kernel implementation computing the exact results
    /// (sparse/dense selection + parallelism; results bit-identical).
    pub host_kernels: HostKernels,
    /// Cap the device's usable memory below its nominal capacity, in
    /// bytes. Planning still sizes shards for the nominal device ("plan
    /// optimistically"); the memory governor then degrades the plan —
    /// residency drop, concurrency cut, shard splits, chunked transfers,
    /// host fallback — until it fits the cap ("govern at runtime").
    /// `None` (the default) leaves the device uncapped and the governor
    /// idle.
    pub mem_cap: Option<u64>,
    /// When (and whether) rollback checkpoints are persisted to disk.
    /// [`CheckpointPolicy::InMemoryOnly`] (the default) is exactly the
    /// pre-durability behavior: zero disk traffic, zero extra cost when no
    /// fault plan is armed.
    pub checkpoint_policy: CheckpointPolicy,
    /// Out-of-host-core spill target, the rung *below* host fallback on
    /// the memory ladder. `None` (the default) keeps the blanket
    /// storage-stall model for graphs that exceed host RAM.
    pub shard_store: Option<ShardStoreHandle>,
    /// Gap + varint/ζ compression for shard topology on the PCIe and
    /// spill paths (`docs/COMPRESSION.md`). `None` (the default) ships raw
    /// `(neighbor, edge id)` buffers; `Some(codec)` ships bit-packed gap
    /// streams, charges a `decompress` kernel per shard-load, and lets the
    /// memory governor budget in compressed bytes. Results are
    /// bit-identical either way. Single-GPU path only.
    pub shard_compression: Option<CompressionCodec>,
    /// Directory behind [`Options::with_spill_dir`], remembered so a later
    /// [`Options::with_shard_compression`] can rebuild the
    /// [`FileShardStore`] with the codec regardless of builder order.
    pub spill_dir: Option<PathBuf>,
}

impl Options {
    /// Everything on: the configuration evaluated as "GR" in Tables 3-4.
    pub fn optimized() -> Self {
        Options {
            async_streams: true,
            spray: true,
            spray_width: 8,
            frontier_management: true,
            phase_fusion: true,
            cta_load_balance: true,
            gather_mode: GatherMode::Hybrid,
            concurrent_shards: 2,
            num_shards: None,
            cache_resident: true,
            partition_logic: PartitionLogicHandle::default(),
            streaming_mode: StreamingMode::Explicit,
            fault_plan: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
            host_kernels: HostKernels::Adaptive,
            mem_cap: None,
            checkpoint_policy: CheckpointPolicy::InMemoryOnly,
            shard_store: None,
            shard_compression: None,
            spill_dir: None,
        }
    }

    /// Everything off: the "unoptimized GR" baseline of Figure 15 —
    /// synchronous single-stream execution, every phase copies its shard
    /// in and out, inactive shards still move.
    pub fn unoptimized() -> Self {
        Options {
            async_streams: false,
            spray: false,
            spray_width: 1,
            frontier_management: false,
            phase_fusion: false,
            cta_load_balance: false,
            gather_mode: GatherMode::Hybrid,
            concurrent_shards: 1,
            num_shards: None,
            cache_resident: false,
            partition_logic: PartitionLogicHandle::default(),
            streaming_mode: StreamingMode::Explicit,
            fault_plan: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
            host_kernels: HostKernels::Adaptive,
            mem_cap: None,
            checkpoint_policy: CheckpointPolicy::InMemoryOnly,
            shard_store: None,
            shard_compression: None,
            spill_dir: None,
        }
    }

    /// Builder-style toggles (used heavily by the ablation benches).
    pub fn with_async_streams(mut self, on: bool) -> Self {
        self.async_streams = on;
        if !on {
            self.concurrent_shards = 1;
        }
        self
    }

    pub fn with_spray(mut self, on: bool) -> Self {
        self.spray = on;
        self
    }

    pub fn with_frontier_management(mut self, on: bool) -> Self {
        self.frontier_management = on;
        self
    }

    pub fn with_phase_fusion(mut self, on: bool) -> Self {
        self.phase_fusion = on;
        self
    }

    pub fn with_cta_load_balance(mut self, on: bool) -> Self {
        self.cta_load_balance = on;
        self
    }

    pub fn with_gather_mode(mut self, mode: GatherMode) -> Self {
        self.gather_mode = mode;
        self
    }

    pub fn with_concurrent_shards(mut self, k: u32) -> Self {
        self.concurrent_shards = k.max(1);
        self
    }

    pub fn with_num_shards(mut self, p: usize) -> Self {
        self.num_shards = Some(p.max(1));
        self
    }

    pub fn with_partition_logic<L: PartitionLogic + Send + Sync + 'static>(
        mut self,
        logic: L,
    ) -> Self {
        self.partition_logic = PartitionLogicHandle::new(logic);
        self
    }

    pub fn with_streaming_mode(mut self, mode: StreamingMode) -> Self {
        self.streaming_mode = mode;
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    pub fn with_host_kernels(mut self, kernels: HostKernels) -> Self {
        self.host_kernels = kernels;
        self
    }

    /// Cap usable device memory at `bytes` (see [`Options::mem_cap`]).
    pub fn with_mem_cap(mut self, bytes: u64) -> Self {
        self.mem_cap = Some(bytes);
        self
    }

    /// Set the checkpoint persistence policy (see
    /// [`Options::checkpoint_policy`]).
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Plug in a shard store as the out-of-host-core spill target (see
    /// [`Options::shard_store`]).
    pub fn with_shard_store<S: ShardStore + 'static>(mut self, store: S) -> Self {
        self.shard_store = Some(ShardStoreHandle::new(store));
        self
    }

    /// Convenience: spill evicted shards to checksummed files under `dir`
    /// (a [`FileShardStore`], GRS2-framed through the active codec when
    /// compression is on).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self.rebuild_spill_store();
        self
    }

    /// Compress shard topology with `codec` on the PCIe and spill paths
    /// (see [`Options::shard_compression`]).
    pub fn with_shard_compression(mut self, codec: CompressionCodec) -> Self {
        self.shard_compression = Some(codec);
        self.rebuild_spill_store();
        self
    }

    /// Re-derive the [`FileShardStore`] from `spill_dir` + the active
    /// codec, so `with_spill_dir` and `with_shard_compression` compose in
    /// either order. A custom [`Options::with_shard_store`] is left alone.
    fn rebuild_spill_store(&mut self) {
        if let Some(dir) = &self.spill_dir {
            self.shard_store = Some(ShardStoreHandle::new(FileShardStore::with_codec(
                dir.clone(),
                self.shard_compression,
            )));
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_on_every_switch() {
        let on = Options::optimized();
        let off = Options::unoptimized();
        assert!(on.async_streams && !off.async_streams);
        assert!(on.spray && !off.spray);
        assert!(on.frontier_management && !off.frontier_management);
        assert!(on.phase_fusion && !off.phase_fusion);
        assert!(on.cta_load_balance && !off.cta_load_balance);
        assert_eq!(off.concurrent_shards, 1);
        assert_eq!(on.concurrent_shards, 2);
    }

    #[test]
    fn disabling_async_forces_one_concurrent_shard() {
        let o = Options::optimized().with_async_streams(false);
        assert_eq!(o.concurrent_shards, 1);
    }

    #[test]
    fn builders_set_fields() {
        let o = Options::unoptimized()
            .with_spray(true)
            .with_concurrent_shards(0)
            .with_num_shards(0)
            .with_gather_mode(GatherMode::VertexCentric);
        assert!(o.spray);
        assert_eq!(o.concurrent_shards, 1); // clamped
        assert_eq!(o.num_shards, Some(1)); // clamped
        assert_eq!(o.gather_mode, GatherMode::VertexCentric);
    }

    #[test]
    fn durability_defaults_off_in_both_presets() {
        for o in [Options::optimized(), Options::unoptimized()] {
            assert_eq!(o.checkpoint_policy, CheckpointPolicy::InMemoryOnly);
            assert!(o.shard_store.is_none());
        }
        let o = Options::optimized()
            .with_checkpoint_policy(CheckpointPolicy::durable("/tmp/ck", 3))
            .with_spill_dir("/tmp/spill");
        assert!(matches!(
            o.checkpoint_policy,
            CheckpointPolicy::Durable { every: 3, .. }
        ));
        assert_eq!(o.shard_store.as_ref().unwrap().name(), "file");
        let o = o.with_shard_store(crate::store::MemShardStore::new());
        assert_eq!(o.shard_store.as_ref().unwrap().name(), "mem");
    }

    #[test]
    fn compression_composes_with_spill_dir_in_either_order() {
        for o in [Options::optimized(), Options::unoptimized()] {
            assert!(o.shard_compression.is_none());
            assert!(o.spill_dir.is_none());
        }
        let a = Options::optimized()
            .with_spill_dir("/tmp/gr-spill")
            .with_shard_compression(CompressionCodec::Varint);
        let b = Options::optimized()
            .with_shard_compression(CompressionCodec::Varint)
            .with_spill_dir("/tmp/gr-spill");
        for o in [a, b] {
            assert_eq!(o.shard_compression, Some(CompressionCodec::Varint));
            assert_eq!(o.shard_store.as_ref().unwrap().name(), "file");
        }
    }

    #[test]
    fn fault_injection_defaults_off() {
        let o = Options::optimized();
        assert!(o.fault_plan.is_none());
        assert_eq!(o.recovery, RecoveryPolicy::default());
        let armed = o
            .with_fault_plan(FaultPlan::none().fail_h2d(0, 1))
            .with_recovery(RecoveryPolicy::fail_fast());
        assert!(!armed.fault_plan.is_none());
        assert_eq!(armed.recovery.max_retries, 0);
    }
}

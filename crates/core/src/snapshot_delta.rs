//! Delta snapshots and the compressed snapshot container.
//!
//! A delta snapshot ("GRCD") holds only the vertices whose state changed
//! since the last *full* snapshot ("GRCK", see [`crate::snapshot`]): the
//! dirty bitmap, the dirty vertices' values and gather temps, the edge
//! values, the three frontier bitmaps, and the full iteration trace.
//! Deltas are cumulative against their base full snapshot, so a restore
//! chain is always exactly one full plus at most one delta — there is no
//! unbounded replay of delta files. Gather temps of *clean* vertices may
//! be stale after a delta restore; that is safe because the engine writes
//! a vertex's gather slot before reading it in every iteration the vertex
//! is active (see [`crate::phases`]), so stale slots are never observed.
//!
//! The compressed container ("GRCZ") optionally wraps any snapshot-family
//! file through the shard store's [`CompressionCodec`], preserving the
//! inner file's raw length and its own whole-file checksum.
//!
//! `load_newest` is the one resume entry point: it scans fulls and
//! deltas together, prefers the highest iteration boundary, unwraps
//! compression and multi-GPU ("GRCM") containers, and falls back to older
//! intact files on corruption exactly like the full-snapshot loader.

use std::fs;
use std::path::{Path, PathBuf};

use gr_graph::{Bitmap, CompressionCodec};

use crate::api::GasProgram;
use crate::snapshot::{
    check_envelope, check_fingerprint, decode_snapshot, encode_envelope_header, fnv1a, io_err,
    put_bitmap, put_values, snapshot_files, snapshot_name, Fingerprint, RestoredState,
    SnapshotError, StateBytes, SNAPSHOTS_RETAINED, TRACE_ENTRY_BYTES,
};
use crate::snapshot_multi::{unwrap_if_multi, MultiPlacement};
use crate::stats::IterationStats;
use crate::store::{codec_from_tag, codec_tag, compress_payload, decompress_payload};

/// Magic bytes opening every delta snapshot file.
pub const DELTA_MAGIC: [u8; 4] = *b"GRCD";

/// Magic bytes opening a compression-wrapped snapshot-family file.
pub const COMPRESSED_MAGIC: [u8; 4] = *b"GRCZ";

/// Where a delta restore left the incremental-write chain: the resumed
/// run's `DurableWriter` continues accumulating onto this dirty set
/// against the same base full snapshot.
#[derive(Clone, Debug)]
pub(crate) struct DeltaChain {
    /// Iteration boundary of the base full snapshot the delta applied to.
    pub(crate) base_iterations: u32,
    /// Vertices dirty since that base (cumulative).
    pub(crate) dirty: Bitmap,
}

/// Delta filename for a given completed-iteration count.
pub(crate) fn delta_name(iterations: u32) -> String {
    format!("delta-{iterations:08}.grcd")
}

fn parse_delta_name(name: &str) -> Option<u32> {
    name.strip_prefix("delta-")?
        .strip_suffix(".grcd")?
        .parse()
        .ok()
}

/// All delta files under `dir`, newest (highest iteration) first.
fn delta_files(dir: &Path) -> Result<Vec<(u32, PathBuf)>, SnapshotError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, "read directory", e))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "read directory entry", e))?;
        let name = entry.file_name();
        if let Some(iters) = name.to_str().and_then(parse_delta_name) {
            found.push((iters, entry.path()));
        }
    }
    found.sort_by_key(|&(iters, _)| std::cmp::Reverse(iters));
    Ok(found)
}

/// Prune delta files: keep the [`SNAPSHOTS_RETAINED`] newest, and drop
/// every delta at or below `obsolete_upto` (a freshly written full
/// snapshot makes all earlier deltas redundant).
pub(crate) fn prune_deltas(dir: &Path, obsolete_upto: Option<u32>) -> Result<(), SnapshotError> {
    for (i, (iters, path)) in delta_files(dir)?.into_iter().enumerate() {
        if i >= SNAPSHOTS_RETAINED || obsolete_upto.is_some_and(|upto| iters <= upto) {
            fs::remove_file(&path).map_err(|e| io_err(&path, "prune", e))?;
        }
    }
    Ok(())
}

/// Serialize one delta snapshot (checksum included) to bytes. `dirty`
/// must be cumulative since the full snapshot at `base_iterations`.
#[allow(clippy::too_many_arguments)] // mirrors the HostState fields 1:1
pub(crate) fn encode_delta<P: GasProgram>(
    fp: &Fingerprint,
    base_iterations: u32,
    dirty: &Bitmap,
    vertex_values: &[P::VertexValue],
    edge_values: &[P::EdgeValue],
    gather_temp: &[P::Gather],
    frontier: &Bitmap,
    changed: &Bitmap,
    next_frontier: &Bitmap,
    trace: &[IterationStats],
) -> Vec<u8> {
    let n = vertex_values.len() as u32;
    let m = edge_values.len() as u64;
    let words = (n as usize).div_ceil(64);
    let ndirty = dirty.count() as usize;
    let mut out = Vec::with_capacity(
        72 + fp.algorithm.len()
            + ndirty * (P::VertexValue::BYTES + P::Gather::BYTES)
            + edge_values.len() * P::EdgeValue::BYTES
            + 4 * words * 8
            + trace.len() * TRACE_ENTRY_BYTES,
    );
    encode_envelope_header(&mut out, &DELTA_MAGIC, fp);
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&m.to_le_bytes());
    out.extend_from_slice(&(trace.len() as u32).to_le_bytes());
    out.extend_from_slice(&base_iterations.to_le_bytes());
    put_bitmap(&mut out, dirty);
    let mut vbuf = vec![0u8; P::VertexValue::BYTES];
    let mut gbuf = vec![0u8; P::Gather::BYTES];
    for v in dirty.iter_set() {
        vertex_values[v as usize].write_bytes(&mut vbuf);
        out.extend_from_slice(&vbuf);
        gather_temp[v as usize].write_bytes(&mut gbuf);
        out.extend_from_slice(&gbuf);
    }
    put_values(&mut out, edge_values);
    put_bitmap(&mut out, frontier);
    put_bitmap(&mut out, changed);
    put_bitmap(&mut out, next_frontier);
    for it in trace {
        out.extend_from_slice(&it.frontier_size.to_le_bytes());
        out.extend_from_slice(&it.gathered_edges.to_le_bytes());
        out.extend_from_slice(&it.changed.to_le_bytes());
        out.extend_from_slice(&it.activated.to_le_bytes());
        out.extend_from_slice(&it.shards_processed.to_le_bytes());
        out.extend_from_slice(&it.shards_skipped.to_le_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A decoded delta, not yet applied to its base full snapshot.
struct DeltaDecoded<P: GasProgram> {
    base_iterations: u32,
    dirty: Bitmap,
    /// `(value, gather)` pairs in `dirty.iter_set()` order.
    updates: Vec<(P::VertexValue, P::Gather)>,
    edge_values: Vec<P::EdgeValue>,
    frontier: Bitmap,
    changed: Bitmap,
    next_frontier: Bitmap,
    trace: Vec<IterationStats>,
}

fn decode_delta<P: GasProgram>(
    path: &Path,
    buf: &[u8],
    fp: &Fingerprint,
) -> Result<DeltaDecoded<P>, SnapshotError> {
    let mut r = check_envelope(path, buf, &DELTA_MAGIC)?;
    check_fingerprint(&mut r, fp)?;
    let n = r.u32("vertex count")?;
    let m = r.u64("edge count")?;
    let iters = r.u32("iteration count")? as usize;
    let base_iterations = r.u32("base iteration count")?;
    if base_iterations as usize >= iters.max(1) {
        return Err(SnapshotError::Corrupt {
            path: path.to_path_buf(),
            offset: r.pos as u64 - 4,
            what: "base iteration count",
        });
    }
    let dirty = r.bitmap(n, "dirty bitmap")?;
    let mut updates = Vec::with_capacity(dirty.count() as usize);
    for _ in 0..dirty.count() {
        let v = r
            .values::<P::VertexValue>(1, "dirty vertex value")?
            .pop()
            .unwrap();
        let g = r
            .values::<P::Gather>(1, "dirty gather temp")?
            .pop()
            .unwrap();
        updates.push((v, g));
    }
    let edge_values = r.values::<P::EdgeValue>(m as usize, "edge values")?;
    let frontier = r.bitmap(n, "frontier bitmap")?;
    let changed = r.bitmap(n, "changed bitmap")?;
    let next_frontier = r.bitmap(n, "next-frontier bitmap")?;
    let mut trace = Vec::with_capacity(iters);
    for _ in 0..iters {
        trace.push(IterationStats {
            frontier_size: r.u64("trace: frontier size")?,
            gathered_edges: r.u64("trace: gathered edges")?,
            changed: r.u64("trace: changed count")?,
            activated: r.u64("trace: activated count")?,
            shards_processed: r.u32("trace: shards processed")?,
            shards_skipped: r.u32("trace: shards skipped")?,
        });
    }
    Ok(DeltaDecoded {
        base_iterations,
        dirty,
        updates,
        edge_values,
        frontier,
        changed,
        next_frontier,
        trace,
    })
}

/// Overlay a decoded delta onto its base full snapshot's state.
fn apply_delta<P: GasProgram>(
    path: &Path,
    mut base: RestoredState<P>,
    d: DeltaDecoded<P>,
) -> Result<(RestoredState<P>, DeltaChain), SnapshotError> {
    if base.trace.len() as u32 != d.base_iterations
        || base.vertex_values.len() != d.dirty.len() as usize
    {
        return Err(SnapshotError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            what: "delta base snapshot shape",
        });
    }
    for (v, (value, gather)) in d.dirty.iter_set().zip(d.updates) {
        base.vertex_values[v as usize] = value;
        base.gather_temp[v as usize] = gather;
    }
    base.edge_values = d.edge_values;
    base.frontier = d.frontier;
    base.changed = d.changed;
    base.next_frontier = d.next_frontier;
    base.trace = d.trace;
    let chain = DeltaChain {
        base_iterations: d.base_iterations,
        dirty: d.dirty,
    };
    Ok((base, chain))
}

// ---------------------------------------------------------------------------
// GRCZ: compression-wrapped snapshot container
// ---------------------------------------------------------------------------

/// Wrap encoded snapshot-family bytes in a compressed GRCZ container:
/// magic, version, codec tag, raw length, compressed payload, whole-file
/// checksum. The inner file keeps its own checksum, so corruption is
/// caught at whichever layer it hits first.
pub(crate) fn wrap_compressed(codec: CompressionCodec, inner: &[u8]) -> Vec<u8> {
    let z = compress_payload(codec, inner);
    let mut out = Vec::with_capacity(29 + z.len());
    out.extend_from_slice(&COMPRESSED_MAGIC);
    out.extend_from_slice(&crate::snapshot::SNAPSHOT_VERSION.to_le_bytes());
    out.push(codec_tag(codec));
    out.extend_from_slice(&(inner.len() as u64).to_le_bytes());
    out.extend_from_slice(&z);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// If `buf` is a GRCZ container, validate it and return the decompressed
/// inner bytes; otherwise hand `buf` back unchanged. The outer checksum
/// runs before decompression, so bit rot never reaches the bit reader.
fn unwrap_if_compressed(path: &Path, buf: Vec<u8>) -> Result<Vec<u8>, SnapshotError> {
    if buf.len() < 4 || buf[..4] != COMPRESSED_MAGIC {
        return Ok(buf);
    }
    let mut r = check_envelope(path, &buf, &COMPRESSED_MAGIC)?;
    let tag = r.take(1, "codec tag")?[0];
    let codec = codec_from_tag(tag).ok_or(SnapshotError::Corrupt {
        path: path.to_path_buf(),
        offset: 9,
        what: "codec tag",
    })?;
    let rawlen = r.u64("raw length")? as usize;
    let z = &r.buf[r.pos..];
    Ok(decompress_payload(codec, z, rawlen))
}

/// Read a snapshot-family file and strip its containers: decompress a
/// GRCZ wrapper, then unwrap a GRCM multi-GPU wrapper (returning its
/// placement map), leaving plain GRCK/GRCD bytes for the decoders.
fn read_unwrapped(path: &Path) -> Result<(Vec<u8>, u64, Option<MultiPlacement>), SnapshotError> {
    let raw = fs::read(path).map_err(|e| io_err(path, "read", e))?;
    let disk_bytes = raw.len() as u64;
    let inner = unwrap_if_compressed(path, raw)?;
    let (inner, placement) = unwrap_if_multi(path, inner)?;
    Ok((inner, disk_bytes, placement))
}

// ---------------------------------------------------------------------------
// load_newest: the one resume entry point
// ---------------------------------------------------------------------------

/// Everything a resume needs from disk: the restored host state, its
/// on-disk size (delta restores add the base full's size), the delta
/// chain to continue (if the newest file was a delta), and the multi-GPU
/// placement map (if the file was GRCM-wrapped).
pub(crate) struct RestoredFromDisk<P: GasProgram> {
    pub(crate) state: RestoredState<P>,
    pub(crate) bytes: u64,
    pub(crate) delta: Option<DeltaChain>,
    pub(crate) placement: Option<MultiPlacement>,
}

/// Load the newest intact snapshot — full or delta — under `dir` for the
/// given fingerprint. A delta needs its base full snapshot intact too;
/// corruption of either falls back to the next-older candidate, while a
/// fingerprint or version mismatch fails fast (resuming a different
/// run's checkpoint silently would be the worst possible outcome).
pub(crate) fn load_newest<P: GasProgram>(
    dir: &Path,
    fp: &Fingerprint,
) -> Result<RestoredFromDisk<P>, SnapshotError> {
    // Fulls sort before deltas at the same boundary (never written by one
    // run, but a resume could legitimately recreate one as the other).
    let mut candidates: Vec<(u32, bool, PathBuf)> = snapshot_files(dir)?
        .into_iter()
        .map(|(i, p)| (i, false, p))
        .chain(delta_files(dir)?.into_iter().map(|(i, p)| (i, true, p)))
        .collect();
    candidates.sort_by_key(|&(iters, is_delta, _)| (std::cmp::Reverse(iters), is_delta));
    let mut last_err: Option<SnapshotError> = None;
    for (_, is_delta, path) in &candidates {
        match load_one::<P>(dir, path, *is_delta, fp) {
            Ok(r) => return Ok(r),
            Err(e @ SnapshotError::FingerprintMismatch { .. })
            | Err(e @ SnapshotError::VersionMismatch { .. }) => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(SnapshotError::NoSnapshot {
        dir: dir.to_path_buf(),
    }))
}

fn load_one<P: GasProgram>(
    dir: &Path,
    path: &Path,
    is_delta: bool,
    fp: &Fingerprint,
) -> Result<RestoredFromDisk<P>, SnapshotError> {
    let (inner, mut bytes, placement) = read_unwrapped(path)?;
    if !is_delta {
        let state = decode_snapshot::<P>(path, &inner, fp)?;
        return Ok(RestoredFromDisk {
            state,
            bytes,
            delta: None,
            placement,
        });
    }
    let d = decode_delta::<P>(path, &inner, fp)?;
    let base_path = dir.join(snapshot_name(d.base_iterations));
    let (base_inner, base_bytes, _) = read_unwrapped(&base_path)?;
    let base = decode_snapshot::<P>(&base_path, &base_inner, fp)?;
    bytes += base_bytes;
    let (state, chain) = apply_delta(path, base, d)?;
    Ok(RestoredFromDisk {
        state,
        bytes,
        delta: Some(chain),
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_snapshot, fingerprint_for, write_named_atomic};
    use crate::testprog::Cc;
    use gr_graph::{gen, GraphLayout};

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::uniform(96, 400, 5).symmetrize())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-delta-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn trace_of(len: usize) -> Vec<IterationStats> {
        (0..len)
            .map(|i| IterationStats {
                frontier_size: 96 - i as u64,
                gathered_edges: 400,
                changed: 12,
                activated: 2,
                shards_processed: 2,
                shards_skipped: 0,
            })
            .collect()
    }

    fn write_full(dir: &Path, fp: &Fingerprint, iters: u32, values: &[u32]) {
        let frontier = Bitmap::full(96);
        let buf = encode_snapshot::<Cc>(
            fp,
            values,
            &[(); 800],
            &vec![u32::MAX; 96],
            &frontier,
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace_of(iters as usize),
        );
        write_named_atomic(dir, &snapshot_name(iters), &buf).unwrap();
    }

    #[test]
    fn delta_round_trips_onto_its_base() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("roundtrip");
        let base_values: Vec<u32> = (0..96).collect();
        write_full(&dir, &fp, 2, &base_values);
        // Three vertices changed since the base.
        let mut dirty = Bitmap::new(96);
        let mut values = base_values.clone();
        for v in [0u32, 40, 95] {
            dirty.set(v);
            values[v as usize] = 7;
        }
        let mut frontier = Bitmap::new(96);
        frontier.set(40);
        let buf = encode_delta::<Cc>(
            &fp,
            2,
            &dirty,
            &values,
            &[(); 800],
            &vec![u32::MAX; 96],
            &frontier,
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace_of(4),
        );
        write_named_atomic(&dir, &delta_name(4), &buf).unwrap();
        let got = load_newest::<Cc>(&dir, &fp).unwrap();
        assert_eq!(got.state.vertex_values, values);
        assert_eq!(got.state.trace.len(), 4, "delta carries the full trace");
        assert_eq!(got.state.frontier.count(), 1);
        let chain = got.delta.expect("newest file is a delta");
        assert_eq!(chain.base_iterations, 2);
        assert_eq!(chain.dirty.count(), 3);
        assert!(got.bytes > 0);
        assert!(got.placement.is_none());
        // A delta of 3 dirty vertices is far smaller than a full snapshot.
        let full = encode_snapshot::<Cc>(
            &fp,
            &values,
            &[(); 800],
            &vec![u32::MAX; 96],
            &frontier,
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace_of(4),
        );
        assert!(buf.len() < full.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_delta_falls_back_to_the_base_full() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("fallback");
        let base_values: Vec<u32> = (0..96).collect();
        write_full(&dir, &fp, 2, &base_values);
        let mut dirty = Bitmap::new(96);
        dirty.set(5);
        let mut values = base_values.clone();
        values[5] = 9;
        let buf = encode_delta::<Cc>(
            &fp,
            2,
            &dirty,
            &values,
            &[(); 800],
            &vec![u32::MAX; 96],
            &Bitmap::new(96),
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace_of(3),
        );
        write_named_atomic(&dir, &delta_name(3), &buf).unwrap();
        // Flip a byte in the delta: resume falls back to the base full.
        let dpath = dir.join(delta_name(3));
        let mut raw = fs::read(&dpath).unwrap();
        raw[60] ^= 0xff;
        fs::write(&dpath, &raw).unwrap();
        let got = load_newest::<Cc>(&dir, &fp).unwrap();
        assert_eq!(got.state.trace.len(), 2, "fell back to the iter-2 full");
        assert_eq!(got.state.vertex_values, base_values);
        assert!(got.delta.is_none());
        // Delete the base instead: a dangling intact delta is unusable.
        fs::write(
            &dpath,
            encode_delta::<Cc>(
                &fp,
                2,
                &dirty,
                &values,
                &[(); 800],
                &vec![u32::MAX; 96],
                &Bitmap::new(96),
                &Bitmap::new(96),
                &Bitmap::new(96),
                &trace_of(3),
            ),
        )
        .unwrap();
        fs::remove_file(dir.join(snapshot_name(2))).unwrap();
        assert!(load_newest::<Cc>(&dir, &fp).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_container_round_trips_and_rejects_corruption() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("grcz");
        let values: Vec<u32> = (0..96).collect();
        let inner = encode_snapshot::<Cc>(
            &fp,
            &values,
            &[(); 800],
            &vec![u32::MAX; 96],
            &Bitmap::full(96),
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace_of(1),
        );
        let wrapped = wrap_compressed(CompressionCodec::Zeta(3), &inner);
        write_named_atomic(&dir, &snapshot_name(1), &wrapped).unwrap();
        let got = load_newest::<Cc>(&dir, &fp).unwrap();
        assert_eq!(got.state.vertex_values, values);
        assert_eq!(got.bytes, wrapped.len() as u64, "reports on-disk size");
        // Corrupt the compressed payload: the outer checksum catches it
        // before the bit reader ever runs.
        let path = dir.join(snapshot_name(1));
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            load_newest::<Cc>(&dir, &fp),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_retention_prunes_old_and_obsolete() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("prune");
        let dirty = Bitmap::new(96);
        let values: Vec<u32> = (0..96).collect();
        for iters in [3u32, 5, 7, 9] {
            let buf = encode_delta::<Cc>(
                &fp,
                2,
                &dirty,
                &values,
                &[(); 800],
                &vec![u32::MAX; 96],
                &Bitmap::new(96),
                &Bitmap::new(96),
                &Bitmap::new(96),
                &trace_of(iters as usize),
            );
            write_named_atomic(&dir, &delta_name(iters), &buf).unwrap();
        }
        prune_deltas(&dir, None).unwrap();
        let kept = delta_files(&dir).unwrap();
        assert_eq!(kept.len(), SNAPSHOTS_RETAINED);
        assert_eq!(kept[0].0, 9);
        assert_eq!(kept[1].0, 7);
        // A full snapshot at 8 obsoletes the iter-7 delta.
        prune_deltas(&dir, Some(8)).unwrap();
        let kept = delta_files(&dir).unwrap();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, 9);
        fs::remove_dir_all(&dir).unwrap();
    }
}

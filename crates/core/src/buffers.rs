//! Buffer characterization (Section 3.2: "Characterization of Buffers in
//! Play").
//!
//! The paper classifies every buffer the runtime touches along three axes
//! and derives its placement and movement policy from them:
//!
//! * **movement** — *static* buffers are copied once at initialization and
//!   stay on the device for the run's lifetime; *streaming* buffers move in
//!   and out as shards are processed;
//! * **access** — read-only buffers never need a copy back to the host;
//!   read-write buffers do (when they are streaming);
//! * **locality** — buffers with random access must live in fast device
//!   memory; sequential access could tolerate zero-copy host memory, but
//!   because every GAS phase mixes both kinds, GraphReduce maps everything
//!   to explicit transfers into device memory (the Figure 4 analysis).
//!
//! This module is the typed rendering of that taxonomy: a catalog of every
//! buffer class for a given program, with the placement/copy-out decisions
//! the engine implements. Tests pin the catalog's byte totals to
//! [`crate::SizeModel`] so the documented model cannot drift from the
//! engine's actual data movement.

use crate::sizes::SizeModel;

/// Chunking policy for the memory governor's bounded staging slot: when a
/// shard's streaming footprint exceeds the per-slot budget even after
/// adaptive splitting, its sub-arrays are streamed through one reusable
/// device allocation of `bytes` in `chunks_for(total)` pieces instead of
/// landing whole. The slot is a plain streaming allocation — the same
/// RAII [`gr_sim::Allocation`] the engine holds for ordinary shards —
/// just sized to the governed budget rather than the largest shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StagingBuffer {
    bytes: u64,
}

impl StagingBuffer {
    /// Smallest slot worth chunking through: below one page of staging,
    /// per-copy latency dominates and host fallback is cheaper.
    pub const MIN_BYTES: u64 = 4096;
    /// Most pieces one transfer may be cut into; past this the copy-issue
    /// overhead swamps any benefit of staying on the device.
    pub const MAX_CHUNKS: u64 = 4096;

    pub fn new(bytes: u64) -> Self {
        StagingBuffer { bytes }
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Pieces a `total`-byte transfer splits into through this slot.
    pub fn chunks_for(&self, total: u64) -> u64 {
        total.div_ceil(self.bytes.max(1))
    }

    /// Whether a `total`-byte transfer is worth staging at all, or should
    /// escalate to the governor's next rung (host fallback).
    pub fn can_stage(&self, total: u64) -> bool {
        self.bytes >= Self::MIN_BYTES && self.chunks_for(total) <= Self::MAX_CHUNKS
    }
}

/// The five phases of Figure 12.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    GatherMap,
    GatherReduce,
    Apply,
    Scatter,
    FrontierActivate,
}

/// Temporal movement class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Movement {
    /// Copied once at initialization; device-resident for the whole run.
    Static,
    /// Moved per shard as processing progresses.
    Streaming,
}

/// Mutability class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    ReadOnly,
    ReadWrite,
}

/// Spatial locality of device-side accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Locality {
    /// Coalesced/streaming (sorted shard layouts make edge scans
    /// sequential — Section 4.2's reason for sorting).
    Sequential,
    /// Uncoalesced (e.g. source-vertex lookups during gatherMap).
    Random,
}

/// Where the buffer should live, per the Section 3.2 mapping rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Explicitly transferred into device memory (GR's choice for all
    /// buffers: random accesses to host memory are catastrophic — Fig. 4).
    DeviceExplicit,
}

/// One buffer class of the runtime.
#[derive(Clone, Debug)]
pub struct BufferClass {
    /// Name as used in trace labels.
    pub name: &'static str,
    pub movement: Movement,
    pub access: Access,
    pub locality: Locality,
    /// Phases that touch this buffer.
    pub phases: &'static [Phase],
    /// Bytes per element (vertex or edge, see `per_edge`).
    pub bytes_per_element: u64,
    /// Whether the element unit is an edge (true) or a vertex (false).
    pub per_edge: bool,
}

impl BufferClass {
    /// Section 3.2's placement rule. GR maps everything to explicit device
    /// transfers: at least one phase randomly accesses each buffer family,
    /// and random zero-copy access over PCIe is ~100x worse (Figure 4).
    pub fn placement(&self) -> Placement {
        Placement::DeviceExplicit
    }

    /// "Based on these attributes, the GR runtime makes decisions on
    /// whether or not to transfer certain buffers back to the host":
    /// only read-write *streaming* buffers copy out (static RW buffers are
    /// fetched once at finalization).
    pub fn needs_copy_out(&self) -> bool {
        self.movement == Movement::Streaming && self.access == Access::ReadWrite
    }
}

/// The complete buffer inventory for a program with the given phase set,
/// mirroring the engine's shard layout (Figure 7).
pub fn catalog(sizes: &SizeModel) -> Vec<BufferClass> {
    let mut v = Vec::new();
    // Static buffers: vertex values + gather temp + frontier bitmaps.
    v.push(BufferClass {
        name: "vertex.values",
        movement: Movement::Static,
        access: Access::ReadWrite,
        locality: Locality::Random, // gatherMap reads arbitrary sources
        phases: &[Phase::GatherMap, Phase::Apply, Phase::Scatter],
        bytes_per_element: sizes.vertex_value,
        per_edge: false,
    });
    if sizes.has_gather {
        v.push(BufferClass {
            name: "gather.temp",
            movement: Movement::Static,
            access: Access::ReadWrite,
            locality: Locality::Sequential, // one slot per interval vertex
            phases: &[Phase::GatherReduce, Phase::Apply],
            bytes_per_element: sizes.gather,
            per_edge: false,
        });
        // Streaming in-edge record: topology + per-edge update slot +
        // per-edge state (+ mutable value).
        v.push(BufferClass {
            name: "in.topo",
            movement: Movement::Streaming,
            access: Access::ReadOnly,
            locality: Locality::Sequential,
            phases: &[Phase::GatherMap],
            bytes_per_element: 12,
            per_edge: true,
        });
        v.push(BufferClass {
            name: "in.update",
            movement: Movement::Streaming,
            access: Access::ReadWrite,
            locality: Locality::Sequential, // CSC sort ⇒ consecutive slots
            phases: &[Phase::GatherMap, Phase::GatherReduce],
            bytes_per_element: sizes.gather + 4,
            per_edge: true,
        });
        v.push(BufferClass {
            name: "in.state",
            movement: Movement::Streaming,
            access: Access::ReadOnly,
            locality: Locality::Sequential,
            phases: &[Phase::GatherMap],
            bytes_per_element: 16,
            per_edge: true,
        });
        if sizes.edge_value > 0 {
            v.push(BufferClass {
                name: "in.value",
                movement: Movement::Streaming,
                access: Access::ReadOnly, // gather reads; scatter writes the OUT copy
                locality: Locality::Sequential,
                phases: &[Phase::GatherMap],
                bytes_per_element: sizes.edge_value,
                per_edge: true,
            });
        }
    }
    // Out-edge records: FrontierActivate always needs the topology.
    v.push(BufferClass {
        name: "out.topo",
        movement: Movement::Streaming,
        access: Access::ReadOnly,
        locality: Locality::Sequential,
        phases: &[Phase::Scatter, Phase::FrontierActivate],
        bytes_per_element: 12,
        per_edge: true,
    });
    v.push(BufferClass {
        name: "out.state",
        movement: Movement::Streaming,
        access: Access::ReadOnly,
        locality: Locality::Sequential,
        phases: &[Phase::FrontierActivate],
        bytes_per_element: 8,
        per_edge: true,
    });
    if sizes.has_scatter && sizes.edge_value > 0 {
        v.push(BufferClass {
            name: "out.value",
            movement: Movement::Streaming,
            access: Access::ReadWrite, // scatter mutates edge state
            locality: Locality::Sequential,
            phases: &[Phase::Scatter],
            bytes_per_element: sizes.edge_value,
            per_edge: true,
        });
    }
    v.push(BufferClass {
        name: "frontier.bits",
        movement: Movement::Static,
        access: Access::ReadWrite,
        locality: Locality::Random, // activation scatters into the bitmap
        phases: &[Phase::GatherMap, Phase::Apply, Phase::FrontierActivate],
        bytes_per_element: 1, // 3 bitmaps, ~3/8 byte per vertex; modeled coarsely
        per_edge: false,
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_chunk_math() {
        let s = StagingBuffer::new(4096);
        assert_eq!(s.chunks_for(0), 0);
        assert_eq!(s.chunks_for(1), 1);
        assert_eq!(s.chunks_for(4096), 1);
        assert_eq!(s.chunks_for(4097), 2);
        assert_eq!(s.chunks_for(40960), 10);
        assert!(s.can_stage(4096 * StagingBuffer::MAX_CHUNKS));
        assert!(!s.can_stage(4096 * StagingBuffer::MAX_CHUNKS + 1));
    }

    #[test]
    fn staging_floor_rejects_tiny_slots() {
        let tiny = StagingBuffer::new(StagingBuffer::MIN_BYTES - 1);
        assert!(!tiny.can_stage(1));
        let zero = StagingBuffer::new(0);
        // No division panic, and nothing stages through a zero slot.
        assert_eq!(zero.chunks_for(10), 10);
        assert!(!zero.can_stage(10));
    }

    fn sizes(has_gather: bool, has_scatter: bool, edge_value: u64) -> SizeModel {
        SizeModel {
            vertex_value: 8,
            gather: 4,
            edge_value,
            has_gather,
            has_scatter,
        }
    }

    /// The catalog's streaming per-edge byte totals must equal the
    /// SizeModel the engine actually moves — the documented taxonomy and
    /// the implementation cannot drift apart.
    #[test]
    fn catalog_bytes_match_size_model() {
        for (g, sc, ev) in [
            (true, false, 0u64),
            (true, true, 4),
            (false, false, 0),
            (true, false, 4),
        ] {
            let s = sizes(g, sc, ev);
            let cat = catalog(&s);
            let in_bytes: u64 = cat
                .iter()
                .filter(|b| b.per_edge && b.name.starts_with("in."))
                .map(|b| b.bytes_per_element)
                .sum();
            let out_bytes: u64 = cat
                .iter()
                .filter(|b| b.per_edge && b.name.starts_with("out."))
                .map(|b| b.bytes_per_element)
                .sum();
            assert_eq!(in_bytes, s.in_edge_bytes(), "in ({g},{sc},{ev})");
            assert_eq!(out_bytes, s.out_edge_bytes(), "out ({g},{sc},{ev})");
        }
    }

    #[test]
    fn copy_out_rule_matches_section_3_2() {
        let cat = catalog(&sizes(true, true, 4));
        // Only streaming read-write buffers copy out.
        let out: Vec<&str> = cat
            .iter()
            .filter(|b| b.needs_copy_out())
            .map(|b| b.name)
            .collect();
        assert_eq!(out, vec!["in.update", "out.value"]);
        // Static read-write buffers (vertex values) do NOT copy out per
        // iteration — they are fetched at finalization.
        let vv = cat.iter().find(|b| b.name == "vertex.values").unwrap();
        assert!(!vv.needs_copy_out());
        assert_eq!(vv.movement, Movement::Static);
    }

    #[test]
    fn every_buffer_maps_to_explicit_device_memory() {
        // Section 3.2's conclusion: explicit transfers for everything.
        for b in catalog(&sizes(true, true, 4)) {
            assert_eq!(b.placement(), Placement::DeviceExplicit);
        }
    }

    #[test]
    fn elimination_drops_in_edge_buffers() {
        let cat = catalog(&sizes(false, false, 0));
        assert!(cat.iter().all(|b| !b.name.starts_with("in.")));
        assert!(cat.iter().any(|b| b.name == "out.topo"));
    }

    #[test]
    fn random_buffers_exist_in_every_phase_mix() {
        // The reason zero-copy placement is rejected: at least one buffer
        // with random locality is touched by the gather and activate
        // phases.
        let cat = catalog(&sizes(true, false, 0));
        assert!(cat
            .iter()
            .any(|b| b.locality == Locality::Random && b.phases.contains(&Phase::GatherMap)));
        assert!(
            cat.iter()
                .any(|b| b.locality == Locality::Random
                    && b.phases.contains(&Phase::FrontierActivate))
        );
    }
}

//! The fault-hardened storage plane: every spill and durable-checkpoint
//! I/O goes through `StorageCtx`, which consumes the fault plan's
//! injectable I/O faults, retries with capped exponential backoff, and
//! degrades gracefully when retries run out instead of failing the run.
//!
//! Degradations are deliberate and bounded:
//! - a spill *write* that ultimately fails leaves the shard host-resident
//!   (nothing was evicted, nothing is lost);
//! - a spill *read* that ultimately fails re-streams the shard's topology
//!   from the source graph (always available — the store is a cache of
//!   derived bytes, never the only copy);
//! - a checkpoint write that ultimately fails is *skipped*: the run
//!   continues covered by the previous durable snapshot.
//!
//! Every injected fault produces exactly one decision-log entry — a
//! [`Decision::StorageRetry`] if a remaining retry absorbed it, or the
//! degradation decision if it exhausted them — so chaos tests can audit
//! fault handling one-for-one. Backoffs are recorded in the decision but
//! never slept and never charged to the virtual device timelines: they
//! model host-side wall time, which the simulation prices elsewhere.
//!
//! With no I/O faults armed the context is one branch per call and the
//! run's outputs are byte-identical to a build without this module.

use std::path::Path;

use gr_observe::{Decision, Observer};
use gr_sim::{FaultPlan, IoFault, IoFaultState, IoOp};

use crate::recovery::{EngineError, RecoveryPolicy};
use crate::snapshot::write_named_atomic;
use crate::store::ShardStoreHandle;

/// Counters the storage plane accumulates for [`crate::RunStats`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StorageCounters {
    /// Storage-op retries that absorbed an injected fault.
    pub(crate) retries: u64,
    /// Spill reads degraded to re-streaming from the source graph.
    pub(crate) restreams: u64,
    /// Durable checkpoint writes skipped after retry exhaustion.
    pub(crate) skipped: u64,
}

/// Fault-injection, retry, and degradation wrapper for spill and
/// checkpoint I/O. One per run; all state is deterministic.
pub(crate) struct StorageCtx {
    io: IoFaultState,
    policy: RecoveryPolicy,
    observer: Observer,
    pub(crate) counters: StorageCounters,
}

impl StorageCtx {
    pub(crate) fn new(plan: &FaultPlan, policy: RecoveryPolicy, observer: Observer) -> Self {
        StorageCtx {
            io: IoFaultState::new(plan),
            policy,
            observer,
            counters: StorageCounters::default(),
        }
    }

    /// Injected storage faults consumed so far (chaos tests assert this
    /// equals the count of storage decisions).
    #[cfg(test)]
    pub(crate) fn injected(&self) -> u64 {
        self.io.injected()
    }

    /// Run one attempt sequence for `op`: returns `Ok(true)` when an
    /// attempt came up fault-free (the caller may now perform the real
    /// I/O), `Ok(false)` when retries were exhausted (the caller
    /// degrades). Emits exactly one decision per injected fault.
    fn attempt(&mut self, op: IoOp, iteration: u32, shard: u32) -> Result<bool, EngineError> {
        for attempt in 0..=self.policy.max_retries {
            let Some(fault) = self.io.next(op) else {
                return Ok(true);
            };
            if attempt < self.policy.max_retries {
                self.counters.retries += 1;
                let backoff_ns = self.policy.backoff(attempt + 1).as_nanos();
                self.observer.decision(|| Decision::StorageRetry {
                    iteration,
                    op: op.name(),
                    fault: fault.name(op),
                    shard,
                    attempt: attempt + 1,
                    backoff_ns,
                });
            } else {
                return Ok(false);
            }
        }
        unreachable!("the final attempt always returns")
    }

    /// Spill a shard payload to the store. `Ok(None)` means the write was
    /// abandoned after retries: the shard stays host-resident and the
    /// caller must not mark it spilled.
    pub(crate) fn spill_put(
        &mut self,
        store: &ShardStoreHandle,
        shard: u32,
        payload: &[u8],
        iteration: u32,
    ) -> Result<Option<u64>, EngineError> {
        if self.attempt(IoOp::SpillWrite, iteration, shard)? {
            return Ok(Some(store.put(shard, payload)?));
        }
        self.observer.decision(|| Decision::StorageDegraded {
            iteration,
            op: IoOp::SpillWrite.name(),
            shard,
            rationale: "shard stays host-resident",
        });
        Ok(None)
    }

    /// Read a spilled shard payload back. `Ok(None)` means retries were
    /// exhausted: the caller re-streams the shard from the source graph.
    pub(crate) fn spill_get(
        &mut self,
        store: &ShardStoreHandle,
        shard: u32,
        iteration: u32,
    ) -> Result<Option<Vec<u8>>, EngineError> {
        if self.attempt(IoOp::SpillRead, iteration, shard)? {
            return Ok(Some(store.get(shard)?));
        }
        self.counters.restreams += 1;
        self.observer.decision(|| Decision::StorageDegraded {
            iteration,
            op: IoOp::SpillRead.name(),
            shard,
            rationale: "re-stream from source graph",
        });
        Ok(None)
    }

    /// Write a durable snapshot file atomically, absorbing injected
    /// checkpoint-write faults. A torn fault deposits a truncated `.tmp`
    /// file (which the resume scanner never considers — the suffix
    /// excludes it) before the retry, modelling a crash mid-write behind
    /// the rename barrier. `Ok(None)` means the write was skipped after
    /// exhaustion; the run continues on the previous snapshot.
    pub(crate) fn snapshot_write(
        &mut self,
        dir: &Path,
        name: &str,
        boundary: u32,
        bytes: &[u8],
    ) -> Result<Option<u64>, EngineError> {
        for attempt in 0..=self.policy.max_retries {
            let Some(fault) = self.io.next(IoOp::CheckpointWrite) else {
                return Ok(Some(write_named_atomic(dir, name, bytes)?));
            };
            if matches!(fault, IoFault::Torn) {
                // The torn write got as far as a partial temp file.
                let torn = &bytes[..bytes.len() / 2];
                let tmp = dir.join(format!("{name}.tmp"));
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(&tmp, torn);
            }
            if attempt < self.policy.max_retries {
                self.counters.retries += 1;
                let backoff_ns = self.policy.backoff(attempt + 1).as_nanos();
                self.observer.decision(|| Decision::StorageRetry {
                    iteration: boundary,
                    op: IoOp::CheckpointWrite.name(),
                    fault: fault.name(IoOp::CheckpointWrite),
                    shard: 0,
                    attempt: attempt + 1,
                    backoff_ns,
                });
            } else {
                self.counters.skipped += 1;
                self.observer.decision(|| Decision::CheckpointSkipped {
                    iteration: boundary,
                    rationale: fault.name(IoOp::CheckpointWrite),
                });
                return Ok(None);
            }
        }
        unreachable!("the final attempt always returns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemShardStore;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-storage-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disarmed_context_is_pass_through_with_zero_decisions() {
        let (obs, rec) = Observer::recording();
        let mut ctx = StorageCtx::new(&FaultPlan::none(), RecoveryPolicy::default(), obs);
        let store = ShardStoreHandle::new(MemShardStore::new());
        let b = ctx.spill_put(&store, 0, b"payload", 1).unwrap();
        assert_eq!(b, Some(7));
        let back = ctx.spill_get(&store, 0, 1).unwrap();
        assert_eq!(back.as_deref(), Some(&b"payload"[..]));
        assert_eq!(ctx.injected(), 0);
        assert_eq!(ctx.counters.retries, 0);
        assert_eq!(rec.recorded().storage_decisions(), 0);
    }

    #[test]
    fn transient_spill_faults_are_retried_one_decision_each() {
        let (obs, rec) = Observer::recording();
        let plan = FaultPlan::none()
            .fail_spill_read(0, 2)
            .fail_spill_write(0, 1);
        let mut ctx = StorageCtx::new(&plan, RecoveryPolicy::default(), obs);
        let store = ShardStoreHandle::new(MemShardStore::new());
        assert!(ctx.spill_put(&store, 3, b"xyz", 0).unwrap().is_some());
        assert!(ctx.spill_get(&store, 3, 1).unwrap().is_some());
        assert_eq!(ctx.injected(), 3);
        assert_eq!(ctx.counters.retries, 3);
        assert_eq!(ctx.counters.restreams, 0);
        let got = rec.recorded();
        assert_eq!(got.storage_decisions() as u64, ctx.injected());
        assert!(got
            .decisions
            .iter()
            .all(|d| matches!(d, Decision::StorageRetry { .. })));
    }

    #[test]
    fn exhausted_spill_read_degrades_to_restream() {
        let (obs, rec) = Observer::recording();
        // More consecutive faults than retries: the 4th exhausts.
        let plan = FaultPlan::none().fail_spill_read(0, 4);
        let mut ctx = StorageCtx::new(&plan, RecoveryPolicy::default(), obs);
        let store = ShardStoreHandle::new(MemShardStore::new());
        store.put(9, b"blob").unwrap();
        assert!(ctx.spill_get(&store, 9, 2).unwrap().is_none());
        assert_eq!(ctx.counters.restreams, 1);
        assert_eq!(ctx.injected(), 4);
        let got = rec.recorded();
        assert_eq!(got.storage_decisions() as u64, ctx.injected());
        assert!(matches!(
            got.decisions.last(),
            Some(Decision::StorageDegraded {
                rationale: "re-stream from source graph",
                ..
            })
        ));
    }

    #[test]
    fn torn_checkpoint_write_retries_and_never_installs_a_half_file() {
        let (obs, rec) = Observer::recording();
        let plan = FaultPlan::none().torn_checkpoint_write(0, 1);
        let mut ctx = StorageCtx::new(&plan, RecoveryPolicy::default(), obs);
        let dir = tmpdir("torn");
        let bytes = vec![0x5au8; 256];
        let written = ctx
            .snapshot_write(&dir, "ckpt-00000001.grck", 1, &bytes)
            .unwrap();
        assert_eq!(written, Some(256));
        let finalb = std::fs::read(dir.join("ckpt-00000001.grck")).unwrap();
        assert_eq!(finalb, bytes, "retry installed the complete file");
        assert_eq!(ctx.counters.retries, 1);
        let got = rec.recorded();
        assert_eq!(got.storage_decisions() as u64, ctx.injected());
        assert!(matches!(
            got.decisions[0],
            Decision::StorageRetry {
                fault: "torn.checkpoint.write",
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_checkpoint_write_is_skipped_not_fatal() {
        let (obs, rec) = Observer::recording();
        let plan = FaultPlan::none().fail_checkpoint_write(0, 10);
        let mut ctx = StorageCtx::new(&plan, RecoveryPolicy::default(), obs);
        let dir = tmpdir("skip");
        let out = ctx
            .snapshot_write(&dir, "ckpt-00000002.grck", 2, &[1, 2, 3])
            .unwrap();
        assert!(out.is_none());
        assert_eq!(ctx.counters.skipped, 1);
        assert!(!dir.join("ckpt-00000002.grck").exists());
        let got = rec.recorded();
        assert_eq!(got.storage_decisions(), 4, "3 retries + 1 skip");
        assert!(matches!(
            got.decisions.last(),
            Some(Decision::CheckpointSkipped { iteration: 2, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_fast_policy_degrades_on_the_first_fault() {
        let (obs, rec) = Observer::recording();
        let plan = FaultPlan::none().fail_spill_write(0, 1);
        let mut ctx = StorageCtx::new(&plan, RecoveryPolicy::fail_fast(), obs);
        let store = ShardStoreHandle::new(MemShardStore::new());
        assert!(ctx.spill_put(&store, 0, b"p", 0).unwrap().is_none());
        assert_eq!(ctx.counters.retries, 0);
        assert_eq!(rec.recorded().storage_decisions(), 1);
    }
}

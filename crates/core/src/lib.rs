//! # graphreduce — out-of-core GPU graph processing (SC '15)
//!
//! A faithful reproduction of *GraphReduce: Processing Large-Scale Graphs on
//! Accelerator-Based Systems* (Sengupta, Song, Agarwal, Schwan; SC 2015) on
//! top of the [`gr_sim`] virtual accelerator.
//!
//! Users implement [`GasProgram`] — the paper's `gatherMap` / `gatherReduce`
//! / `apply` / `scatter` device functions plus state types — and hand it to
//! [`GraphReduce`] together with a [`gr_graph::GraphLayout`] and a
//! [`gr_sim::Platform`]. The runtime:
//!
//! 1. partitions the graph into load-balanced shards sized by Equations
//!    (1)–(2) ([`sizes`]);
//! 2. streams shards over PCIe on asynchronous streams with double
//!    buffering and spray copies ([`engine`], Section 5.1);
//! 3. skips shards with no active vertices (dynamic frontier management,
//!    Section 5.2);
//! 4. fuses/eliminates phases the program doesn't define (Section 5.3);
//! 5. reports the statistics behind every figure of the paper's evaluation
//!    ([`stats`]).
//!
//! ```
//! use graphreduce::{GasProgram, GraphReduce, InitialFrontier, Options};
//! use gr_graph::{gen, GraphLayout};
//! use gr_sim::Platform;
//!
//! /// Connected components (Figure 6 of the paper).
//! struct Cc;
//! impl GasProgram for Cc {
//!     type VertexValue = u32;
//!     type EdgeValue = ();
//!     type Gather = u32;
//!     fn name(&self) -> &'static str { "cc" }
//!     fn init_vertex(&self, v: u32, _d: u32) -> u32 { v }
//!     fn initial_frontier(&self) -> InitialFrontier { InitialFrontier::All }
//!     fn gather_identity(&self) -> u32 { u32::MAX }
//!     fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 { *src }
//!     fn gather_reduce(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
//!         if r < *v { *v = r; true } else { false }
//!     }
//!     fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
//! }
//!
//! let layout = GraphLayout::build(&gen::uniform(256, 2048, 7).symmetrize());
//! let gr = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized());
//! let out = gr.run().unwrap();
//! assert_eq!(out.vertex_values.len(), 256);
//! assert!(out.stats.iterations > 0);
//! ```

pub mod api;
pub mod buffers;
pub mod checkpoint;
pub mod engine;
pub mod exec;
pub mod multi;
pub mod options;
pub mod phases;
pub mod recovery;
pub mod report;
pub mod session;
pub mod sizes;
pub mod snapshot;
pub mod snapshot_delta;
pub mod snapshot_multi;
pub mod stats;
pub mod storage;
pub mod store;
#[cfg(any(test, feature = "test-support"))]
pub mod testprog;

pub use api::{GasProgram, InitialFrontier};
pub use buffers::StagingBuffer;
pub use checkpoint::Checkpoint;
pub use engine::{GraphReduce, RunResult, WarmStart};
pub use gr_observe::{WallProfile, WallProfiler, WallSummary};
pub use gr_sim::{DeviceFault, DeviceHealth, FaultPlan, IoFault, IoOp};
pub use multi::{MultiGraphReduce, MultiRunResult, MultiRunStats};
pub use options::{GatherMode, HostKernels, Options, PartitionLogicHandle, StreamingMode};
pub use recovery::{EngineError, RecoveryPolicy};
pub use session::{GraphSession, Query};
pub use sizes::{
    optimal_concurrent_shards, pcie_saturating_bytes, plan_partition, plan_partition_with,
    PartitionPlan, PlanError, SizeModel,
};
pub use snapshot::{CheckpointPolicy, SnapshotError, StateBytes};
pub use stats::{IterationStats, RunStats};
pub use store::{FileShardStore, MemShardStore, ShardStore, ShardStoreHandle, StoreError};

//! Host-side execution of the five GAS phases (Figure 12).
//!
//! The virtual accelerator charges *time*; the *results* are computed here,
//! eagerly, with exactly the Bulk-Synchronous semantics the paper specifies
//! ("the next phase will not start until the previous phase has been
//! completed"): gather for every shard reads pre-iteration vertex values,
//! apply then updates them, scatter reads applied values, and
//! FrontierActivate marks the one-hop out-neighborhood of changed vertices.
//!
//! # Sparse/dense kernel selection
//!
//! Each phase runs in one of two shapes, mirroring frontier-aware kernel
//! selection on GPUs (Gunrock's sparse/dense advance, the paper's dynamic
//! frontier management lifted down to the host kernels):
//!
//! - **dense**: scan the shard's whole interval contiguously — O(interval),
//!   parallel across host threads when the input is large and threads are
//!   available;
//! - **sparse**: iterate only the set bits of the frontier/changed bitmap
//!   with word-skipping ([`Bitmap::iter_set_range`]) — O(active), exactly
//!   what a BFS tail or SSSP wave needs.
//!
//! [`HostKernels::Adaptive`] picks per shard per phase by comparing the
//! interval's active population against its length (threshold
//! [`SPARSE_DENSITY_DENOM`]). All variants produce **bit-identical**
//! results and identical [`ShardWork`] counts — asserted by the
//! differential tests in `tests/host_kernels.rs`.
//!
//! Work statistics are recorded per shard; the engine turns them into
//! kernel cost specs, so the simulated timeline never depends on which
//! host variant computed the results.

use gr_graph::{Bitmap, Shard, TopoView};
use rayon::prelude::*;

use crate::api::GasProgram;
use crate::options::HostKernels;

/// Adaptive mode goes sparse when fewer than 1/8 of the interval's
/// vertices are active: below that, word-skipping over the bitmap beats a
/// contiguous scan; above it, the scan's locality wins.
pub const SPARSE_DENSITY_DENOM: u64 = 8;

/// Concrete shape a phase executes after [`HostKernels`] resolution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    Serial,
    Dense,
    Sparse,
}

/// Resolve the configured kernel mode against an interval's population.
/// `active` is the number of set bits in `[lo, hi)` of the driving bitmap.
fn resolve(mode: HostKernels, active: u64, interval_len: u64) -> Shape {
    match mode {
        HostKernels::Serial => Shape::Serial,
        HostKernels::Dense => Shape::Dense,
        HostKernels::Sparse => Shape::Sparse,
        HostKernels::Adaptive => {
            if active.saturating_mul(SPARSE_DENSITY_DENOM) < interval_len {
                Shape::Sparse
            } else {
                Shape::Dense
            }
        }
    }
}

/// Name of the concrete shape the phase kernels will execute for these
/// inputs — the same resolution `resolve` performs inside
/// [`gather_shard`]/[`apply_shard`]/[`scatter_shard`]/[`activate_shard`],
/// exposed so wall-clock instrumentation (`gr_observe::profiler`) can
/// attribute real time to the shape that actually ran. `active` is the
/// set-bit count of the phase's driving bitmap over the interval
/// (frontier for gather/apply, changed for scatter/activate).
pub fn shape_name(mode: HostKernels, active: u64, interval_len: u64) -> &'static str {
    match resolve(mode, active, interval_len) {
        Shape::Serial => "serial",
        Shape::Dense => "dense",
        Shape::Sparse => "sparse",
    }
}

/// Per-shard, per-iteration work counts (feed the kernel cost model and the
/// frontier statistics of Figures 3/16/17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardWork {
    /// Vertices of the interval active this iteration.
    pub active_vertices: u64,
    /// In-edges of active vertices (gatherMap work items).
    pub active_in_edges: u64,
    /// Vertices whose apply reported a change.
    pub changed_vertices: u64,
    /// Out-edges of changed vertices (scatter / FrontierActivate items).
    pub out_edges_of_changed: u64,
}

impl ShardWork {
    /// Whether this shard has anything at all to do this iteration.
    pub fn is_active(&self) -> bool {
        self.active_vertices > 0
    }
}

/// Shared mutable slice for provably disjoint index writes from parallel
/// workers (scatter: each edge's canonical id appears exactly once in the
/// CSR, so out-edges of distinct vertices never alias).
struct SharedSliceMut<T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    len: usize,
}

unsafe impl<T: Send> Sync for SharedSliceMut<T> {}

impl<T> SharedSliceMut<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: slice.len(),
        }
    }

    /// # Safety
    /// Callers must never pass the same `i` from two concurrent workers.
    #[allow(clippy::mut_from_ref)] // the disjointness contract is the point
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

// ---------------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------------

/// Gather phase for one shard: edge-centric map + vertex-centric reduce,
/// computed per destination vertex (the reduction is associative and
/// commutative, so folding in CSC order is equivalent).
///
/// Topology is read through `view` — raw CSC slices or lazily decoded
/// compressed rows; both yield entries in identical order.
///
/// `gather_out` is the interval's slice of the gather-temp array; only the
/// slots of active vertices are written, in every mode.
#[allow(clippy::too_many_arguments)] // mirrors the phase's real data flow
pub fn gather_shard<P: GasProgram>(
    program: &P,
    view: TopoView<'_>,
    shard: &Shard,
    vertex_values: &[P::VertexValue],
    edge_values: &[P::EdgeValue],
    weights: &[f32],
    frontier: &Bitmap,
    gather_out: &mut [P::Gather],
    mode: HostKernels,
) -> (u64, u64) {
    let start = shard.interval.start;
    let end = shard.interval.end;
    debug_assert_eq!(gather_out.len(), shard.interval.len() as usize);

    let gather_one = |v: u32| -> (P::Gather, u64) {
        let mut acc = program.gather_identity();
        let dst_val = vertex_values[v as usize];
        let mut edges = 0u64;
        for (src, eid) in view.csc_entries(v) {
            let eid = eid as usize;
            edges += 1;
            acc = program.gather_reduce(
                acc,
                program.gather_map(
                    &dst_val,
                    &vertex_values[src as usize],
                    &edge_values[eid],
                    weights[eid],
                ),
            );
        }
        (acc, edges)
    };

    match resolve(mode, frontier.count_range(start, end), (end - start) as u64) {
        Shape::Serial => {
            let mut active = 0;
            let mut in_edges = 0;
            for (i, out) in gather_out.iter_mut().enumerate() {
                let v = start + i as u32;
                if !frontier.get(v) {
                    continue;
                }
                let (acc, edges) = gather_one(v);
                *out = acc;
                active += 1;
                in_edges += edges;
            }
            (active, in_edges)
        }
        Shape::Sparse => {
            let mut active = 0;
            let mut in_edges = 0;
            for v in frontier.iter_set_range(start, end) {
                let (acc, edges) = gather_one(v);
                gather_out[(v - start) as usize] = acc;
                active += 1;
                in_edges += edges;
            }
            (active, in_edges)
        }
        Shape::Dense => gather_out
            .par_iter_mut()
            .enumerate()
            .map(|(i, out)| {
                let v = start + i as u32;
                if !frontier.get(v) {
                    return (0u64, 0u64);
                }
                let (acc, edges) = gather_one(v);
                *out = acc;
                (1u64, edges)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1)),
    }
}

// ---------------------------------------------------------------------------
// Apply
// ---------------------------------------------------------------------------

/// Apply phase for one shard: vertex-centric update over the interval's
/// active vertices. Returns the ids (global, ascending) of changed
/// vertices; the engine sets them in the `changed` bitmap.
pub fn apply_shard<P: GasProgram>(
    program: &P,
    shard: &Shard,
    vertex_values: &mut [P::VertexValue],
    gather_temp: &[P::Gather],
    frontier: &Bitmap,
    iteration: u32,
    mode: HostKernels,
) -> Vec<u32> {
    let start = shard.interval.start;
    let end = shard.interval.end;
    debug_assert_eq!(vertex_values.len(), shard.interval.len() as usize);
    match resolve(mode, frontier.count_range(start, end), (end - start) as u64) {
        Shape::Serial => {
            let mut changed = Vec::new();
            for (i, val) in vertex_values.iter_mut().enumerate() {
                let v = start + i as u32;
                if frontier.get(v) && program.apply(val, gather_temp[i], iteration) {
                    changed.push(v);
                }
            }
            changed
        }
        Shape::Sparse => {
            let mut changed = Vec::new();
            for v in frontier.iter_set_range(start, end) {
                let i = (v - start) as usize;
                if program.apply(&mut vertex_values[i], gather_temp[i], iteration) {
                    changed.push(v);
                }
            }
            changed
        }
        // The parallel collect preserves index order (chunk outputs are
        // concatenated in chunk order), so the ids come out ascending —
        // identical to the serial paths.
        Shape::Dense => vertex_values
            .par_iter_mut()
            .enumerate()
            .filter_map(|(i, val)| {
                let v = start + i as u32;
                if !frontier.get(v) {
                    return None;
                }
                program.apply(val, gather_temp[i], iteration).then_some(v)
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Scatter
// ---------------------------------------------------------------------------

/// Scatter phase for one shard: edge-centric over out-edges of changed
/// vertices, updating mutable edge state through the canonical edge ids.
/// Returns the number of edges scattered.
///
/// The dense shape parallelizes over the interval: every edge's canonical
/// id appears exactly once in the CSR, so writes from distinct source
/// vertices land on disjoint `edge_values` slots.
pub fn scatter_shard<P: GasProgram>(
    program: &P,
    view: TopoView<'_>,
    shard: &Shard,
    vertex_values: &[P::VertexValue],
    edge_values: &mut [P::EdgeValue],
    changed: &Bitmap,
    mode: HostKernels,
) -> u64 {
    let start = shard.interval.start;
    let end = shard.interval.end;

    match resolve(mode, changed.count_range(start, end), (end - start) as u64) {
        Shape::Serial => {
            let mut n = 0;
            for v in start..end {
                if !changed.get(v) {
                    continue;
                }
                let src_val = &vertex_values[v as usize];
                for (dst, eid) in view.csr_entries(v) {
                    let dst_val = vertex_values[dst as usize];
                    program.scatter(src_val, &dst_val, &mut edge_values[eid as usize]);
                    n += 1;
                }
            }
            n
        }
        Shape::Sparse => {
            let mut n = 0;
            for v in changed.iter_set_range(start, end) {
                let src_val = &vertex_values[v as usize];
                for (dst, eid) in view.csr_entries(v) {
                    let dst_val = vertex_values[dst as usize];
                    program.scatter(src_val, &dst_val, &mut edge_values[eid as usize]);
                    n += 1;
                }
            }
            n
        }
        Shape::Dense => {
            let shared = SharedSliceMut::new(edge_values);
            (start..end)
                .into_par_iter()
                .map(|v| {
                    let v = v as u32;
                    if !changed.get(v) {
                        return 0u64;
                    }
                    let src_val = &vertex_values[v as usize];
                    let mut n = 0u64;
                    for (dst, eid) in view.csr_entries(v) {
                        let dst_val = vertex_values[dst as usize];
                        // SAFETY: canonical edge ids of distinct source
                        // vertices are disjoint (each edge appears once in
                        // the CSR), and each `v` is visited exactly once.
                        program.scatter(src_val, &dst_val, unsafe { shared.get_mut(eid as usize) });
                        n += 1;
                    }
                    n
                })
                .sum()
        }
    }
}

// ---------------------------------------------------------------------------
// FrontierActivate
// ---------------------------------------------------------------------------

/// FrontierActivate for one shard (framework-generated, Section 4.4): mark
/// the out-neighbors of changed vertices active for the next iteration.
/// Returns `(out_edges_walked, vertices_newly_activated)`.
///
/// The dense shape walks interval chunks on parallel workers, each into a
/// private [`Bitmap`], then merges them with [`Bitmap::or_assign`] in chunk
/// order; `activated` falls out as the merge's popcount delta, identical to
/// the serial count of newly set bits.
pub fn activate_shard(
    view: TopoView<'_>,
    shard: &Shard,
    changed: &Bitmap,
    next_frontier: &mut Bitmap,
    mode: HostKernels,
) -> (u64, u64) {
    let start = shard.interval.start;
    let end = shard.interval.end;
    let shape = resolve(mode, changed.count_range(start, end), (end - start) as u64);

    // Serially marking into `next_frontier` — shared by the serial and
    // sparse shapes (and the dense shape on a single worker, where private
    // bitmaps would only cost allocations).
    let mark = |vertices: &mut dyn Iterator<Item = u32>, next: &mut Bitmap| -> (u64, u64) {
        let mut walked = 0;
        let mut activated = 0;
        for v in vertices {
            for (dst, _eid) in view.csr_entries(v) {
                walked += 1;
                // Branch instead of `+= u64::from(..)`: see Bitmap::set for
                // the rustc 1.95 release-mode miscompile this avoids.
                if next.set(dst) {
                    activated += 1;
                }
            }
        }
        (walked, activated)
    };

    match shape {
        Shape::Serial => mark(&mut (start..end).filter(|&v| changed.get(v)), next_frontier),
        Shape::Sparse => mark(&mut changed.iter_set_range(start, end), next_frontier),
        Shape::Dense => {
            if rayon::current_num_threads() <= 1 || (end - start) < 4096 {
                return mark(&mut (start..end).filter(|&v| changed.get(v)), next_frontier);
            }
            let n = next_frontier.len();
            let workers = rayon::current_num_threads().min(((end - start) / 2048) as usize + 1);
            let chunk = (end - start).div_ceil(workers as u32).max(1);
            let ranges: Vec<(u32, u32)> = (0..workers as u32)
                .map(|c| {
                    let lo = start + c * chunk;
                    (lo.min(end), (lo.saturating_add(chunk)).min(end))
                })
                .collect();
            let mut parts: Vec<(u64, Bitmap)> =
                ranges.iter().map(|_| (0u64, Bitmap::new(n))).collect();
            rayon::scope(|s| {
                for (&(lo, hi), part) in ranges.iter().zip(parts.iter_mut()) {
                    s.spawn(move |_| {
                        let mut walked = 0u64;
                        for v in lo..hi {
                            if !changed.get(v) {
                                continue;
                            }
                            for (dst, _eid) in view.csr_entries(v) {
                                walked += 1;
                                part.1.set(dst);
                            }
                        }
                        part.0 = walked;
                    });
                }
            });
            let mut walked = 0;
            let mut activated = 0;
            for (w, local) in &parts {
                walked += w;
                let before = next_frontier.count();
                next_frontier.or_assign(local);
                activated += next_frontier.count() - before;
            }
            (walked, activated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::InitialFrontier;
    use gr_graph::{build_shards, EdgeList, GraphLayout, Interval, VertexId};

    /// Min-label propagation (Connected Components core).
    struct MinLabel;

    impl GasProgram for MinLabel {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "min-label"
        }

        fn init_vertex(&self, v: VertexId, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _dst: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    fn path_graph() -> (GraphLayout, Vec<Shard>) {
        // 0 <-> 1 <-> 2 <-> 3
        let el = EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).symmetrize();
        let layout = GraphLayout::build(&el);
        let shards = build_shards(
            &layout,
            &[Interval { start: 0, end: 2 }, Interval { start: 2, end: 4 }],
        );
        (layout, shards)
    }

    const ALL_MODES: [HostKernels; 4] = [
        HostKernels::Adaptive,
        HostKernels::Dense,
        HostKernels::Sparse,
        HostKernels::Serial,
    ];

    #[test]
    fn gather_apply_roundtrip() {
        for mode in ALL_MODES {
            let (layout, shards) = path_graph();
            let p = MinLabel;
            let mut values: Vec<u32> = (0..4).collect();
            let edge_vals = vec![(); layout.num_edges() as usize];
            let weights = vec![1.0; layout.num_edges() as usize];
            let frontier = Bitmap::full(4);
            let mut temp = vec![u32::MAX; 4];

            let mut total_active = 0;
            let mut total_edges = 0;
            for sh in &shards {
                let iv = sh.interval;
                let (a, e) = gather_shard(
                    &p,
                    TopoView::raw(&layout),
                    sh,
                    &values,
                    &edge_vals,
                    &weights,
                    &frontier,
                    &mut temp[iv.start as usize..iv.end as usize],
                    mode,
                );
                total_active += a;
                total_edges += e;
            }
            assert_eq!(total_active, 4, "{mode:?}");
            assert_eq!(total_edges, 6, "{mode:?}");
            // Gather of vertex 1 saw min(label(0), label(2)) = 0.
            assert_eq!(temp, vec![1, 0, 1, 2], "{mode:?}");

            let mut changed_ids = Vec::new();
            for sh in &shards {
                let iv = sh.interval;
                changed_ids.extend(apply_shard(
                    &p,
                    sh,
                    &mut values[iv.start as usize..iv.end as usize],
                    &temp[iv.start as usize..iv.end as usize],
                    &frontier,
                    0,
                    mode,
                ));
            }
            changed_ids.sort_unstable();
            assert_eq!(changed_ids, vec![1, 2, 3], "{mode:?}"); // vertex 0 kept label 0
            assert_eq!(values, vec![0, 0, 1, 2], "{mode:?}");
        }
    }

    #[test]
    fn gather_skips_inactive_vertices() {
        for mode in ALL_MODES {
            let (layout, shards) = path_graph();
            let p = MinLabel;
            let values: Vec<u32> = (0..4).collect();
            let edge_vals = vec![(); 6];
            let weights = vec![1.0; 6];
            let mut frontier = Bitmap::new(4);
            frontier.set(2);
            let mut temp = vec![99u32; 4];
            let mut active = 0;
            for sh in &shards {
                let iv = sh.interval;
                let (a, _) = gather_shard(
                    &p,
                    TopoView::raw(&layout),
                    sh,
                    &values,
                    &edge_vals,
                    &weights,
                    &frontier,
                    &mut temp[iv.start as usize..iv.end as usize],
                    mode,
                );
                active += a;
            }
            assert_eq!(active, 1, "{mode:?}");
            assert_eq!(temp, vec![99, 99, 1, 99], "{mode:?}"); // only slot 2 written
        }
    }

    #[test]
    fn activate_marks_one_hop_neighborhood() {
        for mode in ALL_MODES {
            let (layout, shards) = path_graph();
            let mut changed = Bitmap::new(4);
            changed.set(1);
            let mut next = Bitmap::new(4);
            let mut walked = 0;
            let mut activated = 0;
            for sh in &shards {
                let (w, a) = activate_shard(TopoView::raw(&layout), sh, &changed, &mut next, mode);
                walked += w;
                activated += a;
            }
            assert_eq!(walked, 2, "{mode:?}"); // 1 -> 0 and 1 -> 2
            assert_eq!(activated, 2, "{mode:?}");
            assert_eq!(next.iter_set().collect::<Vec<_>>(), vec![0, 2], "{mode:?}");
        }
    }

    /// Program with mutable edge state: scatter writes src value into edges.
    struct EdgeStamp;

    impl GasProgram for EdgeStamp {
        type VertexValue = u32;
        type EdgeValue = u32;
        type Gather = u32;

        fn name(&self) -> &'static str {
            "edge-stamp"
        }

        fn init_vertex(&self, v: VertexId, _d: u32) -> u32 {
            v + 10
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            0
        }

        fn gather_map(&self, _d: &u32, _s: &u32, e: &u32, _w: f32) -> u32 {
            *e
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a + b
        }

        fn apply(&self, _v: &mut u32, _r: u32, _i: u32) -> bool {
            true
        }

        fn scatter(&self, s: &u32, _d: &u32, e: &mut u32) {
            *e = *s;
        }

        fn has_scatter(&self) -> bool {
            true
        }
    }

    #[test]
    fn scatter_writes_through_canonical_ids() {
        for mode in ALL_MODES {
            let (layout, shards) = path_graph();
            let p = EdgeStamp;
            let values: Vec<u32> = (0..4).map(|v| v + 10).collect();
            let mut edge_vals = vec![0u32; 6];
            let changed = Bitmap::full(4);
            let mut n = 0;
            for sh in &shards {
                n += scatter_shard(
                    &p,
                    TopoView::raw(&layout),
                    sh,
                    &values,
                    &mut edge_vals,
                    &changed,
                    mode,
                );
            }
            assert_eq!(n, 6, "{mode:?}");
            // Every edge now stamped with its source's value; verify via CSC.
            for v in 0..4u32 {
                for (src, eid) in layout.csc.entries(v) {
                    assert_eq!(
                        edge_vals[eid as usize],
                        src + 10,
                        "edge {src}->{v} ({mode:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_resolution_tracks_density() {
        // Empty → sparse; full → dense; the threshold sits at 1/8.
        assert_eq!(resolve(HostKernels::Adaptive, 0, 1000), Shape::Sparse);
        assert_eq!(resolve(HostKernels::Adaptive, 1000, 1000), Shape::Dense);
        assert_eq!(resolve(HostKernels::Adaptive, 124, 1000), Shape::Sparse);
        assert_eq!(resolve(HostKernels::Adaptive, 125, 1000), Shape::Dense);
        // Forced modes ignore the population.
        assert_eq!(resolve(HostKernels::Dense, 0, 1000), Shape::Dense);
        assert_eq!(resolve(HostKernels::Sparse, 1000, 1000), Shape::Sparse);
        assert_eq!(resolve(HostKernels::Serial, 0, 1000), Shape::Serial);
    }
}

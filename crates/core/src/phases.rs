//! Host-side execution of the five GAS phases (Figure 12).
//!
//! The virtual accelerator charges *time*; the *results* are computed here,
//! eagerly, with exactly the Bulk-Synchronous semantics the paper specifies
//! ("the next phase will not start until the previous phase has been
//! completed"): gather for every shard reads pre-iteration vertex values,
//! apply then updates them, scatter reads applied values, and
//! FrontierActivate marks the one-hop out-neighborhood of changed vertices.
//!
//! Gather is data-parallel over each shard's interval (every vertex owns
//! its accumulator slot — the gatherReduce layout property that consecutive
//! CSC updates land in consecutive memory). Work statistics are recorded
//! per shard; the engine turns them into kernel cost specs.

use gr_graph::{Bitmap, GraphLayout, Shard};
use rayon::prelude::*;

use crate::api::GasProgram;

/// Per-shard, per-iteration work counts (feed the kernel cost model and the
/// frontier statistics of Figures 3/16/17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardWork {
    /// Vertices of the interval active this iteration.
    pub active_vertices: u64,
    /// In-edges of active vertices (gatherMap work items).
    pub active_in_edges: u64,
    /// Vertices whose apply reported a change.
    pub changed_vertices: u64,
    /// Out-edges of changed vertices (scatter / FrontierActivate items).
    pub out_edges_of_changed: u64,
}

impl ShardWork {
    /// Whether this shard has anything at all to do this iteration.
    pub fn is_active(&self) -> bool {
        self.active_vertices > 0
    }
}

/// Gather phase for one shard: edge-centric map + vertex-centric reduce,
/// computed per destination vertex (the reduction is associative and
/// commutative, so folding in CSC order is equivalent).
///
/// `gather_out` is the interval's slice of the gather-temp array.
#[allow(clippy::too_many_arguments)] // mirrors the phase's real data flow
pub fn gather_shard<P: GasProgram>(
    program: &P,
    layout: &GraphLayout,
    shard: &Shard,
    vertex_values: &[P::VertexValue],
    edge_values: &[P::EdgeValue],
    weights: &[f32],
    frontier: &Bitmap,
    gather_out: &mut [P::Gather],
) -> (u64, u64) {
    let start = shard.interval.start;
    debug_assert_eq!(gather_out.len(), shard.interval.len() as usize);
    let (active, in_edges) = gather_out
        .par_iter_mut()
        .enumerate()
        .map(|(i, out)| {
            let v = start + i as u32;
            if !frontier.get(v) {
                return (0u64, 0u64);
            }
            let mut acc = program.gather_identity();
            let dst_val = vertex_values[v as usize];
            let range = layout.csc.range(v);
            let edges = range.len() as u64;
            for eid in range {
                let src = layout.csc.neighbors[eid];
                acc = program.gather_reduce(
                    acc,
                    program.gather_map(
                        &dst_val,
                        &vertex_values[src as usize],
                        &edge_values[eid],
                        weights[eid],
                    ),
                );
            }
            *out = acc;
            (1u64, edges)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    (active, in_edges)
}

/// Apply phase for one shard: vertex-centric update over the interval's
/// active vertices. Returns the ids (global) of changed vertices; the
/// engine sets them in the `changed` bitmap.
pub fn apply_shard<P: GasProgram>(
    program: &P,
    shard: &Shard,
    vertex_values: &mut [P::VertexValue],
    gather_temp: &[P::Gather],
    frontier: &Bitmap,
    iteration: u32,
) -> Vec<u32> {
    let start = shard.interval.start;
    debug_assert_eq!(vertex_values.len(), shard.interval.len() as usize);
    vertex_values
        .par_iter_mut()
        .enumerate()
        .filter_map(|(i, val)| {
            let v = start + i as u32;
            if !frontier.get(v) {
                return None;
            }
            program.apply(val, gather_temp[i], iteration).then_some(v)
        })
        .collect()
}

/// Scatter phase for one shard: edge-centric over out-edges of changed
/// vertices, updating mutable edge state through the canonical edge ids.
/// Returns the number of edges scattered.
pub fn scatter_shard<P: GasProgram>(
    program: &P,
    layout: &GraphLayout,
    shard: &Shard,
    vertex_values: &[P::VertexValue],
    edge_values: &mut [P::EdgeValue],
    changed: &Bitmap,
) -> u64 {
    let mut n = 0;
    for v in shard.interval.start..shard.interval.end {
        if !changed.get(v) {
            continue;
        }
        let src_val = &vertex_values[v as usize];
        for (dst, eid) in layout.csr.entries(v) {
            let dst_val = vertex_values[dst as usize];
            program.scatter(src_val, &dst_val, &mut edge_values[eid as usize]);
            n += 1;
        }
    }
    n
}

/// FrontierActivate for one shard (framework-generated, Section 4.4): mark
/// the out-neighbors of changed vertices active for the next iteration.
/// Returns `(out_edges_walked, vertices_newly_activated)`.
pub fn activate_shard(
    layout: &GraphLayout,
    shard: &Shard,
    changed: &Bitmap,
    next_frontier: &mut Bitmap,
) -> (u64, u64) {
    let mut walked = 0;
    let mut activated = 0;
    for v in shard.interval.start..shard.interval.end {
        if !changed.get(v) {
            continue;
        }
        for (dst, _eid) in layout.csr.entries(v) {
            walked += 1;
            // Branch instead of `+= u64::from(..)`: see Bitmap::set for the
            // rustc 1.95 release-mode miscompile this avoids.
            if next_frontier.set(dst) {
                activated += 1;
            }
        }
    }
    (walked, activated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::InitialFrontier;
    use gr_graph::{build_shards, EdgeList, Interval, VertexId};

    /// Min-label propagation (Connected Components core).
    struct MinLabel;

    impl GasProgram for MinLabel {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "min-label"
        }

        fn init_vertex(&self, v: VertexId, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _dst: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    fn path_graph() -> (GraphLayout, Vec<Shard>) {
        // 0 <-> 1 <-> 2 <-> 3
        let el = EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).symmetrize();
        let layout = GraphLayout::build(&el);
        let shards = build_shards(
            &layout,
            &[Interval { start: 0, end: 2 }, Interval { start: 2, end: 4 }],
        );
        (layout, shards)
    }

    #[test]
    fn gather_apply_roundtrip() {
        let (layout, shards) = path_graph();
        let p = MinLabel;
        let mut values: Vec<u32> = (0..4).collect();
        let edge_vals = vec![(); layout.num_edges() as usize];
        let weights = vec![1.0; layout.num_edges() as usize];
        let frontier = Bitmap::full(4);
        let mut temp = vec![u32::MAX; 4];

        let mut total_active = 0;
        let mut total_edges = 0;
        for sh in &shards {
            let iv = sh.interval;
            let (a, e) = gather_shard(
                &p,
                &layout,
                sh,
                &values,
                &edge_vals,
                &weights,
                &frontier,
                &mut temp[iv.start as usize..iv.end as usize],
            );
            total_active += a;
            total_edges += e;
        }
        assert_eq!(total_active, 4);
        assert_eq!(total_edges, 6);
        // Gather of vertex 1 saw min(label(0), label(2)) = 0.
        assert_eq!(temp, vec![1, 0, 1, 2]);

        let mut changed_ids = Vec::new();
        for sh in &shards {
            let iv = sh.interval;
            changed_ids.extend(apply_shard(
                &p,
                sh,
                &mut values[iv.start as usize..iv.end as usize],
                &temp[iv.start as usize..iv.end as usize],
                &frontier,
                0,
            ));
        }
        changed_ids.sort_unstable();
        assert_eq!(changed_ids, vec![1, 2, 3]); // vertex 0 kept label 0
        assert_eq!(values, vec![0, 0, 1, 2]);
    }

    #[test]
    fn gather_skips_inactive_vertices() {
        let (layout, shards) = path_graph();
        let p = MinLabel;
        let values: Vec<u32> = (0..4).collect();
        let edge_vals = vec![(); 6];
        let weights = vec![1.0; 6];
        let mut frontier = Bitmap::new(4);
        frontier.set(2);
        let mut temp = vec![99u32; 4];
        let mut active = 0;
        for sh in &shards {
            let iv = sh.interval;
            let (a, _) = gather_shard(
                &p,
                &layout,
                sh,
                &values,
                &edge_vals,
                &weights,
                &frontier,
                &mut temp[iv.start as usize..iv.end as usize],
            );
            active += a;
        }
        assert_eq!(active, 1);
        assert_eq!(temp, vec![99, 99, 1, 99]); // only slot 2 written
    }

    #[test]
    fn activate_marks_one_hop_neighborhood() {
        let (layout, shards) = path_graph();
        let mut changed = Bitmap::new(4);
        changed.set(1);
        let mut next = Bitmap::new(4);
        let mut walked = 0;
        let mut activated = 0;
        for sh in &shards {
            let (w, a) = activate_shard(&layout, sh, &changed, &mut next);
            walked += w;
            activated += a;
        }
        assert_eq!(walked, 2); // 1 -> 0 and 1 -> 2
        assert_eq!(activated, 2);
        assert_eq!(next.iter_set().collect::<Vec<_>>(), vec![0, 2]);
    }

    /// Program with mutable edge state: scatter writes src value into edges.
    struct EdgeStamp;

    impl GasProgram for EdgeStamp {
        type VertexValue = u32;
        type EdgeValue = u32;
        type Gather = u32;

        fn name(&self) -> &'static str {
            "edge-stamp"
        }

        fn init_vertex(&self, v: VertexId, _d: u32) -> u32 {
            v + 10
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            0
        }

        fn gather_map(&self, _d: &u32, _s: &u32, e: &u32, _w: f32) -> u32 {
            *e
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a + b
        }

        fn apply(&self, _v: &mut u32, _r: u32, _i: u32) -> bool {
            true
        }

        fn scatter(&self, s: &u32, _d: &u32, e: &mut u32) {
            *e = *s;
        }

        fn has_scatter(&self) -> bool {
            true
        }
    }

    #[test]
    fn scatter_writes_through_canonical_ids() {
        let (layout, shards) = path_graph();
        let p = EdgeStamp;
        let values: Vec<u32> = (0..4).map(|v| v + 10).collect();
        let mut edge_vals = vec![0u32; 6];
        let changed = Bitmap::full(4);
        let mut n = 0;
        for sh in &shards {
            n += scatter_shard(&p, &layout, sh, &values, &mut edge_vals, &changed);
        }
        assert_eq!(n, 6);
        // Every edge now stamped with its source's value; verify via CSC.
        for v in 0..4u32 {
            for (src, eid) in layout.csc.entries(v) {
                assert_eq!(edge_vals[eid as usize], src + 10, "edge {src}->{v}");
            }
        }
    }
}

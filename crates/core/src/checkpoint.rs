//! Iteration-boundary checkpoints of the engine's host-resident master
//! state.
//!
//! GraphReduce computes exact results eagerly on the host while the device
//! timeline is simulated, so a consistent checkpoint is just a copy of the
//! host master state taken at the BSP iteration boundary. Rollback restores
//! that copy and replays the iteration: the host recomputation is
//! deterministic, so a replayed run converges to bit-identical final vertex
//! state, and the fault plan's monotone per-op counters guarantee a finite
//! plan eventually stops faulting the replayed ops.

use gr_graph::Bitmap;

use crate::api::GasProgram;

/// Snapshot of everything `compute_iteration` mutates, plus the iteration
/// trace length, captured before each iteration when a fault plan is armed.
pub struct Checkpoint<P: GasProgram> {
    pub(crate) vertex_values: Vec<P::VertexValue>,
    pub(crate) edge_values: Vec<P::EdgeValue>,
    pub(crate) gather_temp: Vec<P::Gather>,
    pub(crate) frontier: Bitmap,
    pub(crate) changed: Bitmap,
    pub(crate) next_frontier: Bitmap,
    pub(crate) iterations_len: usize,
}

impl<P: GasProgram> Checkpoint<P> {
    /// Number of completed iterations at capture time.
    pub fn iterations_completed(&self) -> usize {
        self.iterations_len
    }

    /// Vertex count covered by this checkpoint.
    pub fn num_vertices(&self) -> usize {
        self.vertex_values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::InitialFrontier;

    struct Flood;

    impl GasProgram for Flood {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "flood"
        }

        fn init_vertex(&self, _v: u32, _d: u32) -> u32 {
            0
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            0
        }

        fn gather_map(&self, _d: &u32, s: &u32, _e: &(), _w: f32) -> u32 {
            *s
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, _v: &mut u32, _r: u32, _i: u32) -> bool {
            false
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    #[test]
    fn checkpoint_reports_its_shape() {
        let mut frontier = Bitmap::new(4);
        frontier.set(2);
        let c: Checkpoint<Flood> = Checkpoint {
            vertex_values: vec![7, 8, 9, 10],
            edge_values: vec![(); 6],
            gather_temp: vec![0; 4],
            frontier,
            changed: Bitmap::new(4),
            next_frontier: Bitmap::new(4),
            iterations_len: 3,
        };
        assert_eq!(c.iterations_completed(), 3);
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.frontier.count(), 1);
    }
}

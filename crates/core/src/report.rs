//! Machine-readable run artifacts: a versioned JSON run report and the
//! CSV tables behind the paper's figures.
//!
//! The report is a superset of [`RunStats`]: everything the `Display`
//! impl prints, plus the per-iteration trace, a summary of the
//! engine's recorded [`Decision`]s, and the end-of-run metrics
//! snapshots — one self-describing JSON document per run, stable under
//! `report_version`. The CSV exporters produce exactly the series the
//! paper's evaluation figures plot (Figure 15's memcpy table, Figure
//! 16/17's frontier dynamics), so regenerating a figure is a run plus
//! a plot script, not a parse of log text.

use gr_observe::export::snapshot_body;
use gr_observe::{json, Decision, Recorded};

use crate::stats::RunStats;

/// Format version stamped into every report. Bump when a field changes
/// meaning or disappears; adding fields is compatible.
pub const REPORT_VERSION: u32 = 1;

/// The versioned run report: `RunStats` and its derived metrics, the
/// per-iteration trace, decision summary, and every non-per-iteration
/// metrics snapshot the observer captured (scopes like `"run"`,
/// `"engine"`, `"gpu0"`).
pub fn run_report(stats: &RunStats, rec: &Recorded) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"report_version\": {REPORT_VERSION},\n"));
    out.push_str(&format!(
        "  \"algorithm\": {},\n",
        json::string(stats.algorithm)
    ));
    out.push_str(&format!("  \"iterations\": {},\n", stats.iterations));
    out.push_str(&format!(
        "  \"elapsed_ns\": {},\n",
        stats.elapsed.as_nanos()
    ));
    out.push_str(&format!(
        "  \"memcpy_time_ns\": {},\n",
        stats.memcpy_time.as_nanos()
    ));
    out.push_str(&format!(
        "  \"kernel_time_ns\": {},\n",
        stats.kernel_time.as_nanos()
    ));
    out.push_str(&format!("  \"bytes_h2d\": {},\n", stats.bytes_h2d));
    out.push_str(&format!("  \"bytes_d2h\": {},\n", stats.bytes_d2h));
    out.push_str(&format!("  \"copy_ops\": {},\n", stats.copy_ops));
    out.push_str(&format!(
        "  \"kernel_launches\": {},\n",
        stats.kernel_launches
    ));
    out.push_str(&format!(
        "  \"skipped_shard_copies\": {},\n",
        stats.skipped_shard_copies
    ));
    out.push_str(&format!(
        "  \"skipped_kernel_launches\": {},\n",
        stats.skipped_kernel_launches
    ));
    out.push_str(&format!("  \"num_shards\": {},\n", stats.num_shards));
    out.push_str(&format!(
        "  \"concurrent_shards\": {},\n",
        stats.concurrent_shards
    ));
    out.push_str(&format!("  \"all_resident\": {},\n", stats.all_resident));
    out.push_str(&format!(
        "  \"faults_injected\": {},\n",
        stats.faults_injected
    ));
    out.push_str(&format!(
        "  \"recovered_retries\": {},\n",
        stats.recovered_retries
    ));
    out.push_str(&format!("  \"rollbacks\": {},\n", stats.rollbacks));
    out.push_str(&format!("  \"checkpoints\": {},\n", stats.checkpoints));
    out.push_str(&format!("  \"host_fallback\": {},\n", stats.host_fallback));
    out.push_str(&format!(
        "  \"mem_pressure_events\": {},\n",
        stats.mem_pressure_events
    ));
    out.push_str(&format!("  \"shard_splits\": {},\n", stats.shard_splits));
    out.push_str(&format!(
        "  \"chunked_shards\": {},\n",
        stats.chunked_shards
    ));
    out.push_str(&format!(
        "  \"chunked_copies\": {},\n",
        stats.chunked_copies
    ));
    out.push_str(&format!("  \"host_shards\": {},\n", stats.host_shards));
    out.push_str(&format!("  \"mem_peak\": {},\n", stats.mem_peak));
    out.push_str(&format!(
        "  \"mem_min_headroom\": {},\n",
        stats.mem_min_headroom
    ));
    // Durability section: present only when durable checkpoints, a
    // resume, or the spill store actually did work (same compatibility
    // rule as the wall section — absent means byte-identical to pre-
    // durability reports).
    if stats.checkpoint_writes > 0
        || stats.checkpoint_restores > 0
        || stats.spilled_shards > 0
        || stats.checkpoints_skipped > 0
        || stats.storage_retries > 0
    {
        out.push_str(&format!(
            "  \"durability\": {{\"checkpoint_writes\": {}, \"checkpoint_bytes_written\": {}, \
             \"checkpoint_full_bytes\": {}, \"checkpoint_delta_writes\": {}, \
             \"checkpoint_delta_bytes\": {}, \"checkpoint_raw_bytes\": {}, \
             \"checkpoint_restores\": {}, \"checkpoints_skipped\": {}, \
             \"spilled_shards\": {}, \"spilled_bytes\": {}, \
             \"spill_loads\": {}, \"spill_load_bytes\": {}, \
             \"storage_retries\": {}, \"spill_restreams\": {}}},\n",
            stats.checkpoint_writes,
            stats.checkpoint_bytes_written,
            stats.checkpoint_full_bytes,
            stats.checkpoint_delta_writes,
            stats.checkpoint_delta_bytes,
            stats.checkpoint_raw_bytes,
            stats.checkpoint_restores,
            stats.checkpoints_skipped,
            stats.spilled_shards,
            stats.spilled_bytes,
            stats.spill_loads,
            stats.spill_load_bytes,
            stats.storage_retries,
            stats.spill_restreams
        ));
    }
    // Compression section: present only when a shard codec was armed
    // (uncompressed runs emit the byte-identical report they always did).
    if let Some(codec) = stats.compression_codec {
        out.push_str(&format!(
            "  \"compression\": {{\"codec\": {}, \"compressed_bytes\": {}, \
             \"raw_bytes\": {}, \"ratio\": {}, \"decompress_launches\": {}}},\n",
            json::string(codec),
            stats.compressed_bytes,
            stats.compressed_raw_bytes,
            json::number(stats.compression_ratio().unwrap_or(0.0)),
            stats.decompress_launches
        ));
    }
    if let Some(fp) = stats.state_fingerprint {
        out.push_str(&format!("  \"state_fingerprint\": \"{fp:#018x}\",\n"));
    }
    out.push_str(&format!("  \"max_frontier\": {},\n", stats.max_frontier()));
    out.push_str(&format!(
        "  \"pct_iterations_below_half_max\": {},\n",
        json::number(stats.pct_iterations_below_half_max())
    ));
    out.push_str(&format!(
        "  \"memcpy_share\": {},\n",
        json::number(stats.memcpy_share())
    ));

    // Real wall-clock section: present only when a profiler was armed
    // (adding a field is compatible under `report_version` 1; disarmed
    // runs emit the byte-identical report they always did).
    if let Some(w) = &stats.wall {
        let phases: Vec<String> = w
            .phases
            .iter()
            .map(|(p, ns)| format!("{{\"phase\":{},\"self_ns\":{ns}}}", json::string(p)))
            .collect();
        out.push_str(&format!(
            "  \"wall\": {{\"total_ns\": {}, \"kernel_ns\": {}, \"threads\": {}, \
             \"imbalance\": {}, \"phases\": [{}]}},\n",
            w.total_ns,
            w.kernel_ns,
            w.threads,
            json::number(w.imbalance),
            phases.join(",")
        ));
    }

    let iters: Vec<String> = stats
        .per_iteration
        .iter()
        .enumerate()
        .map(|(i, it)| {
            format!(
                "    {{\"iteration\":{i},\"frontier_size\":{},\"gathered_edges\":{},\
                 \"changed\":{},\"activated\":{},\"shards_processed\":{},\"shards_skipped\":{}}}",
                it.frontier_size,
                it.gathered_edges,
                it.changed,
                it.activated,
                it.shards_processed,
                it.shards_skipped
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"per_iteration\": [\n{}\n  ],\n",
        iters.join(",\n")
    ));

    let plan: Vec<String> = rec
        .decisions
        .iter()
        .filter_map(|d| match d {
            Decision::PhaseFusion { phases, rationale } => Some(format!(
                "      {{\"kind\":\"phase_fusion\",\"phases\":{},\"rationale\":{}}}",
                json::string(phases),
                json::string(rationale)
            )),
            Decision::PhaseElimination { phase, rationale } => Some(format!(
                "      {{\"kind\":\"phase_elimination\",\"phase\":{},\"rationale\":{}}}",
                json::string(phase),
                json::string(rationale)
            )),
            // Per-event decisions are summarized by count here (the full
            // stream lives in the JSONL decision log).
            Decision::ShardSkip { .. }
            | Decision::FaultRetry { .. }
            | Decision::Rollback { .. }
            | Decision::DeviceEvict { .. }
            | Decision::HostFallback { .. }
            | Decision::MemoryPressure { .. }
            | Decision::ShardSplit { .. }
            | Decision::ChunkedXfer { .. }
            | Decision::ShardSpill { .. }
            | Decision::ShardLoad { .. }
            | Decision::CheckpointWrite { .. }
            | Decision::CheckpointRestore { .. }
            | Decision::CompressShard { .. }
            | Decision::DecompressShard { .. }
            | Decision::StorageRetry { .. }
            | Decision::StorageDegraded { .. }
            | Decision::CheckpointSkipped { .. }
            | Decision::QueryAdmit { .. }
            | Decision::QueryReject { .. }
            | Decision::BatchFormed { .. }
            | Decision::QueryDone { .. } => None,
        })
        .collect();
    // Durability decisions appear in the summary only when any were made
    // (keeps durability-off reports byte-identical).
    let durability = rec.durability_decisions();
    let durability_field = if durability > 0 {
        format!("\"durability_decisions\": {durability}, ")
    } else {
        String::new()
    };
    // Same rule for compression: counted only when a codec was armed.
    let compression = rec.compression_decisions();
    let compression_field = if compression > 0 {
        format!("\"compression_decisions\": {compression}, ")
    } else {
        String::new()
    };
    // And for storage faults: counted only when I/O faults did fire.
    let storage = rec.storage_decisions();
    let storage_field = if storage > 0 {
        format!("\"storage_decisions\": {storage}, ")
    } else {
        String::new()
    };
    out.push_str(&format!(
        "  \"decisions\": {{\"shard_skips\": {}, \"recovery_decisions\": {}, \
         \"memory_decisions\": {}, {}{}{}\"plan\": [\n{}\n    ]}},\n",
        rec.shard_skips(),
        rec.recovery_decisions(),
        rec.memory_decisions(),
        durability_field,
        compression_field,
        storage_field,
        plan.join(",\n")
    ));

    let snaps: Vec<String> = rec
        .snapshots
        .iter()
        .filter(|(scope, _)| !scope.starts_with("iteration"))
        .map(|(scope, snap)| format!("    {}: {{{}}}", json::string(scope), snapshot_body(snap)))
        .collect();
    out.push_str(&format!(
        "  \"snapshots\": {{\n{}\n  }}\n",
        snaps.join(",\n")
    ));
    out.push_str("}\n");
    out
}

/// Figure 16/17 series: one row per iteration of one run.
pub fn frontier_csv(stats: &RunStats) -> String {
    let mut out = String::from(
        "iteration,frontier_size,gathered_edges,changed,activated,shards_processed,shards_skipped\n",
    );
    for (i, it) in stats.per_iteration.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{},{},{}\n",
            it.frontier_size,
            it.gathered_edges,
            it.changed,
            it.activated,
            it.shards_processed,
            it.shards_skipped
        ));
    }
    out
}

/// Figure 15 table: one row per `(graph, algorithm, variant)` run, with
/// the memcpy/kernel split and transfer volumes the figure compares.
pub fn memcpy_csv<'a>(rows: impl IntoIterator<Item = (&'a str, &'a str, &'a RunStats)>) -> String {
    let mut out = String::from(
        "graph,algo,variant,elapsed_ms,memcpy_ms,kernel_ms,memcpy_share,bytes_h2d,bytes_d2h\n",
    );
    for (graph, variant, s) in rows {
        out.push_str(&format!(
            "{graph},{},{variant},{:.3},{:.3},{:.3},{:.4},{},{}\n",
            s.algorithm,
            s.elapsed.as_millis_f64(),
            s.memcpy_time.as_millis_f64(),
            s.kernel_time.as_millis_f64(),
            s.memcpy_share(),
            s.bytes_h2d,
            s.bytes_d2h
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IterationStats;
    use gr_observe::{MetricsRegistry, Observer};
    use gr_sim::SimDuration;

    fn stats() -> RunStats {
        RunStats {
            algorithm: "bfs",
            iterations: 2,
            elapsed: SimDuration::from_micros(10),
            memcpy_time: SimDuration::from_micros(6),
            kernel_time: SimDuration::from_micros(3),
            bytes_h2d: 1000,
            bytes_d2h: 200,
            copy_ops: 4,
            kernel_launches: 6,
            skipped_shard_copies: 1,
            skipped_kernel_launches: 2,
            num_shards: 2,
            concurrent_shards: 2,
            all_resident: false,
            faults_injected: 1,
            recovered_retries: 1,
            rollbacks: 0,
            checkpoints: 2,
            host_fallback: false,
            mem_pressure_events: 1,
            shard_splits: 2,
            chunked_shards: 0,
            chunked_copies: 0,
            host_shards: 0,
            mem_peak: 900,
            mem_min_headroom: 100,
            wall: None,
            per_iteration: vec![
                IterationStats {
                    frontier_size: 1,
                    gathered_edges: 3,
                    changed: 2,
                    activated: 2,
                    shards_processed: 1,
                    shards_skipped: 1,
                },
                IterationStats {
                    frontier_size: 2,
                    gathered_edges: 5,
                    changed: 0,
                    activated: 0,
                    shards_processed: 2,
                    shards_skipped: 0,
                },
            ],
            ..Default::default()
        }
    }

    fn recorded() -> Recorded {
        let (obs, sink) = Observer::recording();
        obs.decision(|| Decision::ShardSkip {
            iteration: 0,
            shard: 1,
            interval_bits: 64,
            active_bits: 0,
        });
        obs.decision(|| Decision::PhaseElimination {
            phase: "scatter",
            rationale: "program defines no scatter",
        });
        obs.decision(|| Decision::FaultRetry {
            iteration: 0,
            device: 0,
            op: "in.topo",
            fault: "transient.h2d",
            attempt: 1,
            backoff_ns: 50_000,
        });
        obs.decision(|| Decision::ShardSplit {
            shard: 0,
            vertices: 8,
            bytes: 512,
        });
        let mut m = MetricsRegistry::new();
        m.inc("h2d.bytes", 1000);
        obs.snapshot("run", || m.snapshot());
        obs.snapshot("iteration 0", || m.snapshot());
        sink.recorded()
    }

    #[test]
    fn report_is_versioned_and_complete() {
        let rep = run_report(&stats(), &recorded());
        assert!(rep.contains("\"report_version\": 1"));
        assert!(rep.contains("\"algorithm\": \"bfs\""));
        assert!(rep.contains("\"elapsed_ns\": 10000"));
        assert!(rep.contains("\"shard_skips\": 1"));
        assert!(rep.contains("\"phase_elimination\""));
        assert!(rep.contains("\"frontier_size\":1"));
        // Recovery: counted in the summary, not expanded in the plan list.
        assert!(rep.contains("\"recovery_decisions\": 1"));
        assert!(rep.contains("\"faults_injected\": 1"));
        assert!(rep.contains("\"recovered_retries\": 1"));
        assert!(rep.contains("\"host_fallback\": false"));
        assert!(!rep.contains("\"fault_retry\""));
        // Governor: counted in the summary and the flat fields, not
        // expanded in the plan list.
        assert!(rep.contains("\"memory_decisions\": 1"));
        assert!(rep.contains("\"mem_pressure_events\": 1"));
        assert!(rep.contains("\"shard_splits\": 2"));
        assert!(rep.contains("\"mem_min_headroom\": 100"));
        assert!(!rep.contains("\"shard_split\""));
        // Snapshots: run-level in, per-iteration filtered out.
        assert!(rep.contains("\"run\": {\"counters\":{\"h2d.bytes\":1000}"));
        assert!(!rep.contains("\"iteration 0\""));
    }

    #[test]
    fn wall_section_only_appears_when_a_profiler_was_armed() {
        let rec = recorded();
        let clean = run_report(&stats(), &rec);
        assert!(!clean.contains("\"wall\""), "disarmed report unchanged");
        let mut s = stats();
        s.wall = Some(gr_observe::WallSummary {
            total_ns: 5_000_000,
            kernel_ns: 4_000_000,
            phases: vec![("gather", 3_000_000), ("apply", 1_000_000)],
            threads: 2,
            imbalance: 1.5,
        });
        let rep = run_report(&s, &rec);
        assert!(rep.contains("\"wall\": {\"total_ns\": 5000000, \"kernel_ns\": 4000000"));
        assert!(rep.contains("\"threads\": 2"));
        assert!(rep.contains("\"imbalance\": 1.5"));
        assert!(rep.contains("{\"phase\":\"gather\",\"self_ns\":3000000}"));
        assert_eq!(rep.matches('{').count(), rep.matches('}').count());
    }

    #[test]
    fn compression_section_only_appears_when_a_codec_was_armed() {
        let rec = recorded();
        let clean = run_report(&stats(), &rec);
        assert!(!clean.contains("\"compression\""), "uncompressed unchanged");
        let mut s = stats();
        s.compression_codec = Some("zeta3");
        s.compressed_bytes = 250;
        s.compressed_raw_bytes = 1000;
        s.decompress_launches = 8;
        let rep = run_report(&s, &rec);
        assert!(rep.contains(
            "\"compression\": {\"codec\": \"zeta3\", \"compressed_bytes\": 250, \
             \"raw_bytes\": 1000, \"ratio\": 4.0, \"decompress_launches\": 8}"
        ));
        assert_eq!(rep.matches('{').count(), rep.matches('}').count());
    }

    #[test]
    fn report_is_valid_json() {
        // Reuse the exporter's escaping; validate with a quick paren/
        // brace balance plus a parse through the jsonl test helper is
        // not available here, so check structural invariants instead.
        let rep = run_report(&stats(), &recorded());
        assert_eq!(
            rep.matches('{').count(),
            rep.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(rep.matches('[').count(), rep.matches(']').count());
        assert!(!rep.contains(",]") && !rep.contains(",}"));
    }

    #[test]
    fn frontier_csv_has_one_row_per_iteration() {
        let csv = frontier_csv(&stats());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "0,1,3,2,2,1,1");
        assert_eq!(lines[2], "1,2,5,0,0,2,0");
    }

    #[test]
    fn memcpy_csv_rows() {
        let s = stats();
        let csv = memcpy_csv([("cage15", "optimized", &s), ("cage15", "unoptimized", &s)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("cage15,bfs,optimized,"));
        assert!(lines[1].contains(",0.6000,1000,200"));
    }
}

//! Shared [`GasProgram`] implementations for tests and benchmarks.
//!
//! These used to be copy-pasted into `engine.rs` tests, `multi.rs` tests,
//! and the integration suites; they now exist once, available to unit
//! tests via `cfg(test)` and to integration tests/benches through the
//! `test-support` cargo feature.

use crate::api::{GasProgram, InitialFrontier};

/// Connected components (min-label flooding): touches every phase the
/// engine has — gather, apply, activate — so faults can land anywhere.
#[derive(Clone, Copy)]
pub struct Cc;

impl GasProgram for Cc {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn init_vertex(&self, v: u32, _d: u32) -> u32 {
        v
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
        *src
    }

    fn gather_reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
}

/// BFS depth labelling from a source vertex, with no gather phase (the
/// paper's phase-elimination showcase).
#[derive(Clone, Copy)]
pub struct Bfs(pub u32);

impl GasProgram for Bfs {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = ();

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_vertex(&self, _v: u32, _d: u32) -> u32 {
        u32::MAX
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::Single(self.0)
    }

    fn gather_identity(&self) {}

    fn gather_map(&self, _d: &u32, _s: &u32, _e: &(), _w: f32) {}

    fn gather_reduce(&self, _a: (), _b: ()) {}

    fn apply(&self, v: &mut u32, _r: (), iter: u32) -> bool {
        if *v == u32::MAX {
            *v = iter;
            true
        } else {
            false
        }
    }

    fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}

    fn has_gather(&self) -> bool {
        false
    }
}

/// SSSP: Bellman-Ford relaxation over static edge weights, from a source.
#[derive(Clone, Copy)]
pub struct Sssp(pub u32);

impl GasProgram for Sssp {
    type VertexValue = f32;
    type EdgeValue = ();
    type Gather = f32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_vertex(&self, v: u32, _d: u32) -> f32 {
        if v == self.0 {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::Single(self.0)
    }

    fn gather_identity(&self) -> f32 {
        f32::INFINITY
    }

    fn gather_map(&self, _d: &f32, src: &f32, _e: &(), w: f32) -> f32 {
        src + w
    }

    fn gather_reduce(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, v: &mut f32, r: f32, iter: u32) -> bool {
        if r < *v {
            *v = r;
            true
        } else {
            iter == 0 && *v == 0.0
        }
    }

    fn scatter(&self, _s: &f32, _d: &f32, _e: &mut ()) {}
}

/// PageRank state: rank + out-degree (folded into the gather contribution).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrValue {
    /// Current rank.
    pub rank: f32,
    /// Out-degree, captured at init so gather can normalize contributions.
    pub out_degree: u32,
}

crate::impl_state_bytes!(PrValue {
    rank: f32,
    out_degree: u32
});

/// PageRank with frontier-based convergence (damping 0.85).
#[derive(Clone, Copy)]
pub struct Pr;

impl GasProgram for Pr {
    type VertexValue = PrValue;
    type EdgeValue = ();
    type Gather = f32;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init_vertex(&self, _v: u32, out_degree: u32) -> PrValue {
        PrValue {
            rank: 0.15,
            out_degree,
        }
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> f32 {
        0.0
    }

    fn gather_map(&self, _d: &PrValue, src: &PrValue, _e: &(), _w: f32) -> f32 {
        if src.out_degree == 0 {
            0.0
        } else {
            src.rank / src.out_degree as f32
        }
    }

    fn gather_reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, v: &mut PrValue, r: f32, _i: u32) -> bool {
        let new_rank = 0.15 + 0.85 * r;
        let changed = (new_rank - v.rank).abs() > 1e-4;
        v.rank = new_rank;
        changed
    }

    fn scatter(&self, _s: &PrValue, _d: &PrValue, _e: &mut ()) {}

    fn max_iterations(&self) -> u32 {
        100
    }
}
